#!/usr/bin/env python3
"""Append a paper-profile appendix to EXPERIMENTS.md from a saved JSON run.

Usage::

    python -m repro.cli fig5 --profile paper --json paper.json   # etc.
    python scripts/append_paper_appendix.py paper.json EXPERIMENTS.md
"""

import json
import sys

sys.path.insert(0, "src")

from repro.analysis import FigureResult, render_table, render_verdicts
from repro.analysis.verdicts import verify_results


def load_results(path: str):
    payload = json.load(open(path))
    results = {}
    for name, panels in payload.items():
        out = []
        for p in panels:
            fr = FigureResult(
                figure_id=p["figure_id"],
                title=p["title"],
                x_label=p["x_label"],
                xs=p["xs"],
                metadata=p["metadata"],
            )
            for s in p["series"]:
                fr.add_series(s["label"], s["values"])
            out.append(fr)
        results[name] = out
    return results


def main() -> int:
    source, target = sys.argv[1], sys.argv[2]
    results = load_results(source)
    lines = [
        "",
        "---",
        "",
        "# Appendix: paper-profile runs (full 50–250 sweep)",
        "",
        "The figures below repeat the experiments at the paper's full "
        "network sizes (50–250 switches, 30 requests per offline point, "
        "300 per online run).  Shapes match the fast profile.",
        "",
    ]
    for name in ("fig5", "fig6", "fig8", "fig9"):
        if name not in results:
            continue
        lines.append(f"## {name} (paper profile)")
        lines.append("")
        for panel in results[name]:
            lines.append("```")
            lines.append(render_table(panel))
            lines.append("```")
            lines.append("")
    lines.append("```")
    lines.append(render_verdicts(verify_results(results)))
    lines.append("```")
    lines.append("")
    with open(target, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
    print(f"appended paper-profile appendix to {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
