"""Bench: regenerate Fig. 7 (Appro_Multi_Cap under capacity constraints)."""

from repro.analysis import render_table, run_fig7


def test_fig7(benchmark, bench_profile):
    panels = benchmark.pedantic(
        run_fig7, args=(bench_profile,), rounds=1, iterations=1
    )
    for panel in panels:
        print()
        print(render_table(panel))

    cost_panel = panels[0]
    cap = cost_panel.series_by_label("Appro_Multi_Cap").values
    uncap = cost_panel.series_by_label("Appro_Multi (uncapacitated)").values
    # Paper: capacity pruning can only make the trees costlier
    assert all(c >= u - 1e-9 for c, u in zip(cap, uncap))
    # and under sustained load it really does, somewhere in the sweep
    assert any(c > u + 1e-9 for c, u in zip(cap, uncap))

    benchmark.extra_info["max_cost_inflation"] = round(
        max(c / u for c, u in zip(cap, uncap)), 3
    )
