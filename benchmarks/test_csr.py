"""Bench: compiled CSR Dijkstra engine vs the dict engine.

The tentpole claim of the CSR backend (``repro.graph.csr``): compiling a
topology once into flat integer-indexed arrays makes every subsequent
single-source Dijkstra at least **2×** faster than the dict-of-dict engine,
while decoding to bit-identical :class:`ShortestPathTree` results.  Two
cases: the GÉANT figure-series topology and a reweighted 500-node
Erdős–Rényi scaling graph.  Results land in ``BENCH_csr.json`` next to
``BENCH_spcache.json``, so the speedup is recorded, not just asserted.

Timing is best-of-rounds with the two engines interleaved inside each
round (dict sweep, then CSR sweep), so both sample the same machine noise;
the minimum round per engine is the standard robust estimator for "how
fast can this code go" under scheduler noise.

Run as a module for the JSON artifact without pytest::

    PYTHONPATH=src python benchmarks/test_csr.py
"""

import json
import os

from repro.obs.bench import MIN_CSR_SPEEDUP, run_csr_benchmark

_HERE = os.path.dirname(os.path.abspath(__file__))
RESULT_PATH = os.path.join(_HERE, "..", "BENCH_csr.json")


def run_benchmark():
    """Time both engines on both cases and write the artifact."""
    return run_csr_benchmark(output_path=RESULT_PATH)


def test_csr_speedup():
    payload = run_benchmark()
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))
    for case in payload["cases"]:
        assert case["tree_mismatches"] == 0, (
            f"{case['name']}: CSR trees diverged from the dict engine"
        )
        assert case["speedup"] >= MIN_CSR_SPEEDUP, (
            f"{case['name']}: CSR engine only {case['speedup']:.2f}x faster "
            f"than the dict engine (need >= {MIN_CSR_SPEEDUP}x); see "
            "BENCH_csr.json"
        )


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2, sort_keys=True))
    worst = min(case["speedup"] for case in result["cases"])
    clean = all(case["tree_mismatches"] == 0 for case in result["cases"])
    status = "PASS" if worst >= MIN_CSR_SPEEDUP and clean else "FAIL"
    print(f"{status}: worst case {worst:.2f}x (need >= {MIN_CSR_SPEEDUP}x)")
