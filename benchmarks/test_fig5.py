"""Bench: regenerate Fig. 5 (Appro_Multi vs Alg_One_Server, random SDNs)."""

from repro.analysis import render_table, run_fig5


def test_fig5(benchmark, bench_profile):
    panels = benchmark.pedantic(
        run_fig5, args=(bench_profile,), rounds=1, iterations=1
    )
    for panel in panels:
        print()
        print(render_table(panel))

    # Paper shape: Appro_Multi strictly cheaper at every point, and the
    # absolute gap grows with network size; Appro_Multi is slower.
    for panel in panels:
        if panel.figure_id.startswith("fig5-cost"):
            appro = panel.series_by_label("Appro_Multi").values
            base = panel.series_by_label("Alg_One_Server").values
            assert all(a < b for a, b in zip(appro, base))
            gaps = [b - a for a, b in zip(appro, base)]
            assert gaps[-1] > gaps[0]
        else:
            appro = panel.series_by_label("Appro_Multi").values
            base = panel.series_by_label("Alg_One_Server").values
            assert all(a > b for a, b in zip(appro, base))

    benchmark.extra_info["panels"] = len(panels)
    cost_panel = panels[0]
    benchmark.extra_info["cost_ratio_largest_network"] = round(
        cost_panel.series_by_label("Appro_Multi").values[-1]
        / cost_panel.series_by_label("Alg_One_Server").values[-1],
        3,
    )
