"""Bench: regenerate Fig. 6 (real topologies: GÉANT, AS1755, AS4755)."""

from repro.analysis import render_table, run_fig6


def test_fig6(benchmark, bench_profile):
    panels = benchmark.pedantic(
        run_fig6, args=(bench_profile,), rounds=1, iterations=1
    )
    for panel in panels:
        print()
        print(render_table(panel))

    for panel in panels:
        appro = panel.series_by_label("Appro_Multi").values
        base = panel.series_by_label("Alg_One_Server").values
        if panel.figure_id.startswith("fig6-cost"):
            # Paper: clearly cheaper in the real networks at every ratio
            assert all(a < b for a, b in zip(appro, base))
            # costs rise with the destination ratio
            assert appro[-1] > appro[0]
        else:
            assert all(a >= b for a, b in zip(appro, base))

    geant_cost = panels[0]
    benchmark.extra_info["geant_cost_ratio_at_0.15"] = round(
        geant_cost.series_by_label("Appro_Multi").values[2]
        / geant_cost.series_by_label("Alg_One_Server").values[2],
        3,
    )
