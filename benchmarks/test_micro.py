"""Micro-benchmarks of the algorithmic building blocks.

These are the per-request latencies behind the figures: a single
``Appro_Multi`` solve at each K, one baseline solve, one online decision,
and the raw KMB Steiner-tree kernel.
"""

import pytest

from repro.core import (
    OnlineCP,
    SPOnline,
    alg_one_server,
    appro_multi,
)
from repro.graph import kmb_steiner_tree
from repro.network import build_sdn
from repro.topology import gt_itm_flat
from repro.workload import generate_workload


def make_instance(size, seed=42):
    graph = gt_itm_flat(size, seed=seed)
    network = build_sdn(graph, seed=seed)
    request = generate_workload(graph, 1, dmax_ratio=0.1, seed=seed + 1)[0]
    return network, request


@pytest.mark.parametrize("k", [1, 2, 3])
def test_appro_multi_single_request_n100(benchmark, k):
    network, request = make_instance(100)
    tree = benchmark(appro_multi, network, request, k)
    assert tree.total_cost > 0
    benchmark.extra_info["K"] = k


@pytest.mark.parametrize("size", [50, 150])
def test_appro_multi_scaling(benchmark, size):
    network, request = make_instance(size)
    tree = benchmark(appro_multi, network, request, 3)
    assert tree.total_cost > 0
    benchmark.extra_info["network_size"] = size


def test_alg_one_server_single_request(benchmark):
    network, request = make_instance(100)
    tree = benchmark(alg_one_server, network, request)
    assert tree.total_cost > 0


def test_online_cp_decision(benchmark):
    network, request = make_instance(100)

    def decide():
        algorithm = OnlineCP(network)
        decision = algorithm.process(request)
        if decision.admitted:
            algorithm.depart(request.request_id)
        return decision

    decision = benchmark(decide)
    assert decision.admitted


def test_sp_decision(benchmark):
    network, request = make_instance(100)

    def decide():
        algorithm = SPOnline(network)
        decision = algorithm.process(request)
        if decision.admitted:
            algorithm.depart(request.request_id)
        return decision

    decision = benchmark(decide)
    assert decision.admitted


def test_kmb_kernel_n150(benchmark):
    graph = gt_itm_flat(150, seed=4)
    terminals = sorted(graph.nodes())[::10][:12]
    tree = benchmark(kmb_steiner_tree, graph, terminals)
    assert tree.num_nodes >= len(terminals)


def test_online_cpk_decision(benchmark):
    from repro.core import OnlineCPK, ExponentialCostModel

    network, request = make_instance(100)

    def decide():
        algorithm = OnlineCPK(
            network, max_servers=2,
            cost_model=ExponentialCostModel(alpha=8.0, beta=8.0),
        )
        decision = algorithm.process(request)
        if decision.admitted:
            algorithm.depart(request.request_id)
        return decision

    decision = benchmark(decide)
    assert decision.admitted


def test_delay_aware_solve(benchmark):
    from repro.core import delay_aware_multicast

    network, request = make_instance(100)
    solution = benchmark(delay_aware_multicast, network, request, 40.0)
    assert solution.worst_delay_ms <= 40.0


def test_larac_kernel(benchmark):
    from repro.graph import larac_path, proportional_delays

    graph = gt_itm_flat(150, seed=4)
    delays = proportional_delays(graph)
    nodes = sorted(graph.nodes())
    path = benchmark(larac_path, graph, delays, nodes[0], nodes[-1], 25.0)
    assert path[0] == nodes[0]
