"""Bench: regenerate Fig. 9 (Online_CP vs SP as the request count grows)."""

from repro.analysis import render_table, run_fig9


def test_fig9(benchmark, bench_profile):
    panels = benchmark.pedantic(
        run_fig9, args=(bench_profile,), rounds=1, iterations=1
    )
    for panel in panels:
        print()
        print(render_table(panel))

    for panel in panels:
        cp = panel.series_by_label("Online_CP").values
        sp = panel.series_by_label("SP").values
        # light load: both admit nearly everything
        assert cp[0] >= 0.8 * panel.xs[0]
        # full load: Online_CP ahead (or tied), and the gap does not shrink
        assert cp[-1] >= sp[-1]
        assert (cp[-1] - sp[-1]) >= (cp[0] - sp[0]) - 2.0

    benchmark.extra_info["final_gap_geant"] = (
        panels[0].series_by_label("Online_CP").values[-1]
        - panels[0].series_by_label("SP").values[-1]
    )
