"""Bench: CSR-native ``Appro_Multi`` core vs the dict path, end to end.

The tentpole claim of the CSR-native solver core: compiling the request's
auxiliary graph into one epoch-stamped CSR view — virtual source as one
appended row, only the virtual-edge block varying across the ``V_S^i``
combination sweep — makes the end-to-end ``Appro_Multi`` per-request
latency at least **5×** faster than the dict path, while decoding
bit-identical trees (dict insertion order included).

The dict path is ``appro_multi_reference`` under the ``dict`` backend: the
seed engine that round-trips through dict ``Graph`` objects for
auxiliary-graph construction, metric closure, KMB, and MST on every server
combination.  Timing is best-of-rounds with the two engines interleaved
inside each round, cold caches per round; tree identity is verified outside
the timed region.  Results merge into ``BENCH_csr.json`` under ``"appro"``,
next to the raw Dijkstra sweep cases.

Run as a module for the JSON artifact without pytest::

    PYTHONPATH=src python benchmarks/test_appro_csr.py
"""

import json
import os

from repro.obs.bench import MIN_APPRO_SPEEDUP, run_appro_benchmark

_HERE = os.path.dirname(os.path.abspath(__file__))
RESULT_PATH = os.path.join(_HERE, "..", "BENCH_csr.json")


def run_benchmark():
    """Time both engines end to end and merge the artifact."""
    return run_appro_benchmark(output_path=RESULT_PATH)


def test_appro_csr_speedup():
    payload = run_benchmark()
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))
    assert payload["tree_mismatches"] == 0, (
        "CSR-native Appro_Multi trees diverged from the dict path"
    )
    assert payload["speedup"] >= MIN_APPRO_SPEEDUP, (
        f"CSR-native core only {payload['speedup']:.2f}x faster than the "
        f"dict path (need >= {MIN_APPRO_SPEEDUP}x); see BENCH_csr.json"
    )


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2, sort_keys=True))
    clean = result["tree_mismatches"] == 0
    status = (
        "PASS" if result["speedup"] >= MIN_APPRO_SPEEDUP and clean else "FAIL"
    )
    print(
        f"{status}: {result['speedup']:.2f}x "
        f"(need >= {MIN_APPRO_SPEEDUP}x, mismatches "
        f"{result['tree_mismatches']})"
    )
