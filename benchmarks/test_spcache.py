"""Bench: cached vs uncached ``Appro_Multi`` on GÉANT.

The tentpole claim of the shortest-path cache: a request batch on a fixed
topology reuses Dijkstra trees across combinations and requests, so the
cached engine (``appro_multi``) must beat the seed engine
(``appro_multi_reference`` — explicit scaled copy, fresh Dijkstra per
origin, every combination evaluated from scratch) by **at least 3×** on the
GÉANT batch below.  Results land in ``BENCH_spcache.json`` next to this
file, so the speedup is recorded, not just asserted.

Timing uses best-of-``ROUNDS`` per engine: the minimum is the standard
robust estimator for "how fast can this code go" under scheduler noise.

Run as a module for the JSON artifact without pytest::

    PYTHONPATH=src python benchmarks/test_spcache.py
"""

import json
import os
import time

from repro.analysis.common import build_real_network, make_requests
from repro.core import appro_multi, appro_multi_reference

#: Batch size: enough requests that tree reuse across requests matters.
REQUESTS = 40

#: Timing rounds per engine; the minimum round is reported.
ROUNDS = 3

#: Required speedup of the cached engine over the seed engine.
MIN_SPEEDUP = 3.0

SEED = 20170605  # ICDCS 2017

_HERE = os.path.dirname(os.path.abspath(__file__))
RESULT_PATH = os.path.join(_HERE, "..", "BENCH_spcache.json")


def _batch():
    network = build_real_network("GEANT", SEED)
    requests = make_requests(network.graph, REQUESTS, 0.2, SEED + 1)
    return network, requests


def _time_engine(solver, network, requests):
    """Best-of-ROUNDS wall time for solving the whole batch, plus costs."""
    best = float("inf")
    costs = []
    for _ in range(ROUNDS):
        round_costs = []
        start = time.perf_counter()
        for request in requests:
            tree = solver(network, request, max_servers=3)
            round_costs.append(tree.total_cost)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        costs = round_costs
    return best, costs


def run_benchmark():
    """Time both engines, check identity + speedup, write the artifact."""
    network, requests = _batch()
    reference_time, reference_costs = _time_engine(
        appro_multi_reference, network, requests
    )
    cached_time, cached_costs = _time_engine(appro_multi, network, requests)

    # Identity first: a fast wrong answer is not a speedup.
    mismatches = sum(
        1
        for a, b in zip(cached_costs, reference_costs)
        if abs(a - b) > 1e-9 * max(abs(a), abs(b), 1.0)
    )
    speedup = reference_time / cached_time if cached_time > 0 else float("inf")
    payload = {
        "topology": "GEANT",
        "requests": REQUESTS,
        "max_servers": 3,
        "seed": SEED,
        "rounds": ROUNDS,
        "timing": "best-of-rounds, whole batch, seconds",
        "reference_seconds": reference_time,
        "cached_seconds": cached_time,
        "speedup": speedup,
        "min_speedup_required": MIN_SPEEDUP,
        "cost_mismatches": mismatches,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def test_spcache_speedup():
    payload = run_benchmark()
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))
    assert payload["cost_mismatches"] == 0
    assert payload["speedup"] >= MIN_SPEEDUP, (
        f"cached engine only {payload['speedup']:.2f}x faster than the seed "
        f"engine (need >= {MIN_SPEEDUP}x); see BENCH_spcache.json"
    )


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2, sort_keys=True))
    status = (
        "PASS"
        if result["speedup"] >= MIN_SPEEDUP and result["cost_mismatches"] == 0
        else "FAIL"
    )
    print(f"{status}: {result['speedup']:.2f}x (need >= {MIN_SPEEDUP}x)")
