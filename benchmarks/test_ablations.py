"""Bench: the ablation studies DESIGN.md calls out."""

from repro.analysis import render_table, run_ablations


def test_ablations(benchmark, bench_profile):
    panels = benchmark.pedantic(
        run_ablations, args=(bench_profile,), rounds=1, iterations=1
    )
    for panel in panels:
        print()
        print(render_table(panel))

    by_id = {panel.figure_id: panel for panel in panels}

    # K: cost monotone non-increasing, search effort strictly growing
    k_panel = by_id["ablation-k"]
    costs = k_panel.series_by_label("mean cost").values
    combos = k_panel.series_by_label("combinations/request").values
    assert all(b <= a + 1e-9 for a, b in zip(costs, costs[1:]))
    assert combos == sorted(combos) and combos[-1] > combos[0]

    # cost models: congestion pricing beats the static-linear strawman
    model_panel = by_id["ablation-cost-model"]
    exponential = model_panel.series[0].values
    strawman = model_panel.series_by_label("static linear (strawman)").values
    assert sum(exponential) >= sum(strawman)

    # thresholds: the literal 2|V| calibration pays for its guarantee
    sigma_panel = by_id["ablation-thresholds"]
    strict = sigma_panel.series_by_label("2|V| base, σ=|V|−1").values
    loose = sigma_panel.series_by_label("2|V| base, σ=∞").values
    assert sum(loose) >= sum(strict)

    # KMB: empirical ratio within its factor-2 guarantee
    kmb_panel = by_id["ablation-kmb"]
    ratios = kmb_panel.series_by_label("cost ratio").values
    assert all(1.0 - 1e-9 <= r <= 2.0 + 1e-9 for r in ratios)

    benchmark.extra_info["kmb_worst_ratio"] = round(max(ratios), 4)
