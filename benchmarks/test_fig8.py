"""Bench: regenerate Fig. 8 (Online_CP vs SP over network sizes)."""

from repro.analysis import render_table, run_fig8


def test_fig8(benchmark, bench_profile):
    panels = benchmark.pedantic(
        run_fig8, args=(bench_profile,), rounds=1, iterations=1
    )
    for panel in panels:
        print()
        print(render_table(panel))

    admitted = panels[0]
    cp = admitted.series_by_label("Online_CP").values
    sp = admitted.series_by_label("SP").values
    # Paper: Online_CP admits more requests at every size
    assert all(c >= s for c, s in zip(cp, sp))
    assert sum(cp) > sum(sp)
    # Paper: the admitted count is not monotone in the network size
    assert cp != sorted(cp) or cp != sorted(cp, reverse=True)

    benchmark.extra_info["cp_over_sp"] = round(sum(cp) / sum(sp), 3)
