"""Bench: empirical competitive ratio vs an offline oracle (extension)."""

from repro.analysis import render_table, run_competitive


def test_competitive(benchmark, bench_profile):
    panels = benchmark.pedantic(
        run_competitive, args=(bench_profile,), rounds=1, iterations=1
    )
    for panel in panels:
        print()
        print(render_table(panel))

    ratio_panel = panels[1]
    cp_ratios = ratio_panel.series_by_label("Online_CP / oracle").values
    sp_ratios = ratio_panel.series_by_label("SP / oracle").values
    # the theoretical guarantee is Ω(1/log|V|); empirically Online_CP should
    # track the oracle closely and never fall below SP
    assert all(r > 0.5 for r in cp_ratios)
    assert sum(cp_ratios) >= sum(sp_ratios)

    benchmark.extra_info["min_cp_ratio"] = round(min(cp_ratios), 3)
