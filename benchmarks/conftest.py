"""Benchmark-suite configuration.

Each ``test_fig*.py`` file regenerates one figure of the paper: the
benchmark times the full driver, prints the same series the paper plots
(run with ``-s`` to see the tables), and asserts the qualitative shape the
paper reports.  ``benchmarks/test_micro.py`` additionally times the
individual algorithm building blocks.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import os
import sys

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.analysis import get_profile


@pytest.fixture(scope="session")
def bench_profile():
    """The ``fast`` profile: the paper's shapes at benchmarkable pace."""
    return get_profile("fast")
