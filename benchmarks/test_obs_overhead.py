"""Overhead guard: disabled telemetry must stay within 5% of the baseline.

The observability contract (docs/OBSERVABILITY.md) promises that the span
and counter instrumentation threaded through ``Appro_Multi`` is free when
recording is off: every hot-path call site reduces to one module-global
boolean check.  This bench holds the code to that promise.

``repro bench`` (``repro.obs.bench.run_obs_benchmark``) records
``disabled_baseline_seconds`` — the best-of-rounds batch time for the
GÉANT workload with telemetry disabled — into ``BENCH_obs.json``.  This
test re-measures the same quantity on the same machine, immediately after
the artifact is written, and asserts the fresh measurement is within
``MAX_OVERHEAD`` (5%) of the recorded baseline.  Record-then-assert on one
runner keeps the check about *instrumentation drift*, not machine speed.

Like the other wall-clock benches, CI runs this in the non-blocking
benchmark job — timing noise must never block a merge.

The streaming extension of the same contract: a full online run with
recording *enabled*, the engine histograms live, and a ``SnapshotEmitter``
flushing JSONL deltas every N requests must cost at most 5% over the same
run with telemetry disabled.  ``repro bench --target stream-obs``
(``repro.obs.bench.run_stream_benchmark``) measures both sides on one
machine and records them under the ``"stream"`` key of ``BENCH_obs.json``;
:func:`check_stream_overhead` re-runs the measurement fresh and asserts
the ratio.

Run without pytest::

    PYTHONPATH=src python -m repro.cli bench --output BENCH_obs.json
    PYTHONPATH=src python benchmarks/test_obs_overhead.py
"""

import json
import os

from repro.obs.bench import (
    DEFAULT_REQUESTS,
    DEFAULT_SEED,
    measure_disabled_seconds,
    run_obs_benchmark,
    run_stream_benchmark,
)

#: Fresh disabled-mode measurement may exceed the recorded baseline by
#: at most this fraction (the "within 5%" overhead contract).
MAX_OVERHEAD = 0.05

#: More rounds than the bench default: the guard's estimate should be the
#: more robust of the two, since it is the one that can fail a job.
GUARD_ROUNDS = 5

_HERE = os.path.dirname(os.path.abspath(__file__))
RESULT_PATH = os.path.join(_HERE, "..", "BENCH_obs.json")


def _baseline_seconds():
    """Read the recorded baseline, producing the artifact if absent."""
    if not os.path.exists(RESULT_PATH):
        run_obs_benchmark(output_path=RESULT_PATH)
    with open(RESULT_PATH, encoding="utf-8") as handle:
        return json.load(handle)["disabled_baseline_seconds"]


def check_overhead():
    """Measure disabled-mode time and compare against the artifact."""
    baseline = _baseline_seconds()
    fresh = measure_disabled_seconds(
        requests=DEFAULT_REQUESTS, rounds=GUARD_ROUNDS, seed=DEFAULT_SEED
    )
    ratio = fresh / baseline if baseline > 0 else float("inf")
    return {
        "recorded_baseline_seconds": baseline,
        "fresh_disabled_seconds": fresh,
        "ratio": ratio,
        "max_allowed_ratio": 1.0 + MAX_OVERHEAD,
    }


def check_stream_overhead():
    """Measure the enabled-emitter stream run against its disabled twin.

    Re-measures rather than trusting the committed artifact so the check
    is about *this* tree's instrumentation, then rewrites the ``"stream"``
    section of ``BENCH_obs.json`` with the fresh numbers (record-then-
    assert, like the disabled-mode guard above).  Runs at the full
    default stream size: the emitter's fixed costs (sink setup, first
    flush) amortize over the stream, and a short run would measure those
    instead of the steady-state per-request overhead the contract is
    about.
    """
    payload = run_stream_benchmark(output_path=RESULT_PATH, rounds=GUARD_ROUNDS)
    return {
        "disabled_seconds": payload["disabled_seconds"],
        "enabled_seconds": payload["enabled_seconds"],
        "ratio": payload["overhead_ratio"],
        "flushes": payload["flushes"],
        "max_allowed_ratio": 1.0 + MAX_OVERHEAD,
    }


def test_disabled_overhead_within_contract():
    result = check_overhead()
    print()
    print(json.dumps(result, indent=2, sort_keys=True))
    assert result["ratio"] <= result["max_allowed_ratio"], (
        f"disabled-mode run took {result['ratio']:.3f}x the recorded "
        f"baseline (limit {result['max_allowed_ratio']:.2f}x) — the "
        "instrumentation is no longer free when recording is off; "
        "see BENCH_obs.json and docs/OBSERVABILITY.md"
    )


def test_stream_overhead_within_contract():
    result = check_stream_overhead()
    print()
    print(json.dumps(result, indent=2, sort_keys=True))
    assert result["ratio"] <= result["max_allowed_ratio"], (
        f"enabled stream run (histograms + emitter, {result['flushes']} "
        f"flushes) took {result['ratio']:.3f}x the disabled run "
        f"(limit {result['max_allowed_ratio']:.2f}x) — the streaming "
        "telemetry is no longer within the 5% contract; see the 'stream' "
        "section of BENCH_obs.json and docs/OBSERVABILITY.md"
    )


if __name__ == "__main__":
    for label, outcome in (
        ("disabled", check_overhead()),
        ("stream", check_stream_overhead()),
    ):
        print(json.dumps(outcome, indent=2, sort_keys=True))
        status = (
            "PASS"
            if outcome["ratio"] <= outcome["max_allowed_ratio"]
            else "FAIL"
        )
        print(
            f"{status} ({label}): {outcome['ratio']:.3f}x "
            f"(limit {outcome['max_allowed_ratio']:.2f}x)"
        )
