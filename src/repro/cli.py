"""Command-line interface: reproduce any figure from a terminal.

Examples::

    python -m repro.cli list
    python -m repro.cli fig5 --profile fast
    python -m repro.cli all --profile paper --output EXPERIMENTS.md
    python -m repro.cli fig5 --profile --metrics-out metrics.json
    python -m repro.cli bench
    python -m repro.cli bench --target csr --quick
    python -m repro.cli demo
    python -m repro.cli fig5 --graph-backend dict
    python -m repro.cli stream --requests 10000 --out run.jsonl \
        --trace run.trace.json --dashboard
    python -m repro.cli watch run.jsonl
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.profiles import get_profile
from repro.analysis.report import (
    EXPERIMENTS,
    build_experiments_markdown,
    run_all,
)

#: ``--profile`` with no value: keep the default experiment scale but turn
#: on phase profiling (print the span-hierarchy table after the run).
_PROFILE_BARE = "::phases::"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nfv-multicast",
        description=(
            "Reproduce the evaluation of 'Approximation and Online "
            "Algorithms for NFV-Enabled Multicasting in SDNs' (ICDCS 2017)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    lint = subparsers.add_parser(
        "lint",
        help="run the AST-based invariant linter (see docs/STATIC_ANALYSIS.md)",
    )
    from repro.lint.cli import build_parser as _build_lint_parser

    _build_lint_parser(lint)

    def _add_graph_backend(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--graph-backend",
            choices=("dict", "csr"),
            default=None,
            metavar="NAME",
            help=(
                "shortest-path engine: 'csr' (default; compiled adjacency) "
                "or 'dict' (reference engine); overrides the "
                "REPRO_GRAPH_BACKEND env var, results are identical"
            ),
        )

    demo = subparsers.add_parser(
        "demo", help="run a 30-second end-to-end demonstration"
    )
    demo.add_argument("--size", type=int, default=50, help="network size")
    demo.add_argument("--seed", type=int, default=7, help="RNG seed")
    _add_graph_backend(demo)

    bench = subparsers.add_parser(
        "bench",
        help="micro-benchmarks (telemetry overhead, spcache, CSR engine)",
    )
    bench.add_argument(
        "--target",
        choices=("obs", "spcache", "csr", "appro", "stream-obs", "stream"),
        default="obs",
        help=(
            "what to measure: 'obs' telemetry overhead (default), "
            "'spcache' cached vs uncached solver, 'csr' compiled vs dict "
            "Dijkstra engine, 'appro' end-to-end dict-path vs CSR-native "
            "Appro_Multi (merges into BENCH_csr.json), 'stream-obs' the "
            "streaming run with histograms + emitter enabled (merges into "
            "BENCH_obs.json), 'stream' the StreamEngine scale run "
            "(throughput, RSS flatness, resume + shard differentials)"
        ),
    )
    bench.add_argument(
        "--output",
        default=None,
        help="artifact path (default: BENCH_<target>.json)",
    )
    bench.add_argument(
        "--requests", type=int, default=None,
        help=(
            "batch size for obs/spcache/appro targets (default 40) or "
            "stream length for stream-obs (default 2000)"
        ),
    )
    bench.add_argument(
        "--rounds", type=int, default=None,
        help="timing rounds (default: 3, or 7 for --target csr)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads for CI smoke runs (noisier numbers)",
    )
    _add_graph_backend(bench)

    stream = subparsers.add_parser(
        "stream",
        help=(
            "online run with the streaming telemetry emitter: JSONL delta "
            "snapshots, optional Chrome trace and live dashboard"
        ),
    )
    stream.add_argument(
        "--topology", default="GEANT",
        choices=("GEANT", "AS1755", "AS4755"),
        help="real topology to provision (default GEANT)",
    )
    stream.add_argument(
        "--requests", type=int, default=10_000,
        help="arrival count (default 10000)",
    )
    stream.add_argument(
        "--seed", type=int, default=20170605, help="workload seed"
    )
    stream.add_argument(
        "--every", type=int, default=1000,
        help="flush a delta snapshot every N requests (default 1000)",
    )
    stream.add_argument(
        "--every-seconds", type=float, default=None,
        help="also flush every T wall seconds",
    )
    stream.add_argument(
        "--out", default="stream.jsonl",
        help="JSONL delta-snapshot path (default stream.jsonl)",
    )
    stream.add_argument(
        "--prom", default=None, metavar="PATH",
        help="also keep a Prometheus scrape file refreshed per flush",
    )
    stream.add_argument(
        "--trace", default=None, metavar="PATH",
        help=(
            "record per-request spans and write a Chrome trace_event "
            "JSON file loadable in chrome://tracing / Perfetto"
        ),
    )
    stream.add_argument(
        "--dashboard", action="store_true",
        help="render the live ASCII dashboard after each flush",
    )
    stream.add_argument(
        "--workload", default=None, metavar="FAMILY",
        choices=("poisson", "diurnal", "flash-crowd", "pareto", "figure"),
        help=(
            "drive the StreamEngine with a generated arrival stream "
            "(poisson/diurnal/flash-crowd/pareto churn or the unit-spaced "
            "'figure' series) instead of the materialized replay; "
            "enables --checkpoint-every/--resume/--shards"
        ),
    )
    stream.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help=(
            "write a resume checkpoint every N arrivals "
            "(to --checkpoint, default <out>.ckpt)"
        ),
    )
    stream.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="checkpoint path for --checkpoint-every",
    )
    stream.add_argument(
        "--resume", default=None, metavar="PATH",
        help=(
            "resume a killed run from a checkpoint file (topology, "
            "workload and seed come from the checkpoint)"
        ),
    )
    stream.add_argument(
        "--shards", type=int, default=None, metavar="S",
        help=(
            "split the workload into S independent substreams (each its "
            "own network replica + derived seed) and merge in shard order"
        ),
    )
    stream.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help=(
            "process count for --shards (default: REPRO_WORKERS env var, "
            "else the CPU count); the merged result is identical for "
            "every value"
        ),
    )
    _add_graph_backend(stream)

    watch = subparsers.add_parser(
        "watch",
        help="live ASCII dashboard over an emitter JSONL snapshot stream",
    )
    watch.add_argument("path", help="emitter JSONL file to tail")
    watch.add_argument(
        "--follow", action="store_true",
        help="keep polling for new payloads (Ctrl-C to stop)",
    )
    watch.add_argument(
        "--poll", type=float, default=0.5,
        help="poll interval in seconds with --follow (default 0.5)",
    )

    for name in list(EXPERIMENTS) + ["all"]:
        sub = subparsers.add_parser(
            name,
            help=(
                "run every experiment" if name == "all"
                else f"reproduce {name}"
            ),
        )
        sub.add_argument(
            "--profile",
            nargs="?",
            const=_PROFILE_BARE,
            default="fast",
            metavar="SCALE",
            help=(
                "with a value: experiment scale, 'fast' (default) or "
                "'paper'; with no value: keep the default scale and print "
                "a solver phase-breakdown table after the run"
            ),
        )
        sub.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help=(
                "write the telemetry snapshot as JSON to PATH and as "
                "Prometheus text format to PATH with a .prom extension"
            ),
        )
        sub.add_argument(
            "--output",
            default=None,
            help="also write results as markdown to this path",
        )
        sub.add_argument(
            "--json",
            default=None,
            help="also write results as JSON to this path",
        )
        sub.add_argument(
            "--chart",
            action="store_true",
            help="render each panel as an ASCII chart after its table",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help=(
                "process count for independent data points (default: "
                "REPRO_WORKERS env var, else the CPU count); results are "
                "identical for every value"
            ),
        )
        _add_graph_backend(sub)
    return parser


def _run_demo(size: int, seed: int) -> None:
    from repro import (
        OnlineCP,
        SPOnline,
        alg_one_server,
        appro_multi,
        build_sdn,
        generate_workload,
        gt_itm_flat,
        run_online,
    )

    graph = gt_itm_flat(size, seed=seed)
    network = build_sdn(graph, seed=seed)
    print(f"network: {network}")

    request = generate_workload(graph, count=1, dmax_ratio=0.1, seed=seed)[0]
    print(f"request: {request.describe()}")
    tree = appro_multi(network, request, max_servers=3)
    print(tree.describe())
    baseline = alg_one_server(network, request)
    print(
        f"Alg_One_Server cost: {baseline.total_cost:.3f} "
        f"(Appro_Multi saves "
        f"{100 * (1 - tree.total_cost / baseline.total_cost):.1f}%)"
    )

    requests = generate_workload(graph, count=100, seed=seed + 1)
    cp_stats = run_online(OnlineCP(build_sdn(graph, seed=seed)), requests)
    sp_stats = run_online(SPOnline(build_sdn(graph, seed=seed)), requests)
    print(
        f"online over {len(requests)} requests: "
        f"Online_CP admitted {cp_stats.admitted}, "
        f"SP admitted {sp_stats.admitted}"
    )


class _DashboardSink:
    """An emitter sink that redraws the live dashboard on every flush."""

    def __init__(self) -> None:
        from repro.obs.dashboard import DashboardState

        self.state = DashboardState()

    def emit(self, delta, cumulative) -> None:
        from repro.obs.dashboard import render

        self.state.consume(delta)
        print()
        print(render(self.state))


def _run_stream_engine(args) -> int:
    """``repro stream --workload …``: the StreamEngine pipeline.

    Generated arrival streams (no materialized request list), optional
    periodic checkpoints, kill-and-resume, and sharded execution.  The
    plain ``repro stream`` replay path is untouched.
    """
    from repro import obs
    from repro.stream import (
        StreamRunConfig,
        build_engine,
        load_checkpoint,
        restore_into,
        run_sharded,
        save_checkpoint,
    )

    workload = args.workload or "poisson"
    if args.shards is not None and (
        args.resume is not None or args.checkpoint_every is not None
    ):
        print(
            "error: --shards cannot be combined with "
            "--checkpoint-every/--resume (shards are independent "
            "substreams; checkpoint each shard's run separately)",
            file=sys.stderr,
        )
        return 2

    obs.enable()
    obs.reset()
    try:
        if args.shards is not None:
            config = StreamRunConfig(
                topology=args.topology.lower(),
                workload=workload,
                seed=args.seed,
                requests=args.requests,
            )
            result = run_sharded(
                config, shards=args.shards, workers=args.workers
            )
            merged = result.merged
            print(
                f"stream {args.topology} [{workload}]: "
                f"{merged['processed']} requests across {args.shards} "
                f"shards, admitted {merged['admitted']}, "
                f"rejected {merged['rejected']}, "
                f"departed {merged['departed']}"
            )
            print(f"merged digest {merged['digest']}")
            return 0

        if args.resume is not None:
            document = load_checkpoint(args.resume)
            config = StreamRunConfig.from_dict(document.get("meta") or {})
        else:
            document = None
            config = StreamRunConfig(
                topology=args.topology.lower(),
                workload=workload,
                seed=args.seed,
                requests=args.requests,
            )

        checkpoint_path = args.checkpoint or (args.out + ".ckpt")

        def _checkpoint_sink(engine) -> None:
            save_checkpoint(checkpoint_path, engine, meta=config.as_dict())

        sinks = [obs.JsonlSink(args.out)]
        if args.prom:
            sinks.append(obs.PrometheusSink(args.prom))
        if args.dashboard:
            sinks.append(_DashboardSink())
        emitter = obs.SnapshotEmitter(
            every_requests=args.every,
            every_seconds=args.every_seconds,
            sinks=sinks,
            crash_dump_path=args.out + ".crash",
        )
        engine = build_engine(
            config,
            checkpoint_every=args.checkpoint_every,
            checkpoint_sink=(
                _checkpoint_sink
                if args.checkpoint_every is not None
                else None
            ),
            emitter=emitter,
        )
        if document is not None:
            restore_into(engine, document)
        log = obs.start_trace() if args.trace else None
        try:
            with emitter:
                stats = engine.run()
        finally:
            if log is not None:
                obs.stop_trace()
        if args.trace:
            obs.write_chrome_trace(log, args.trace)

        print(
            f"stream {config.topology} [{config.workload}]: "
            f"{stats.processed} requests, admitted {stats.admitted}, "
            f"rejected {stats.rejected}, departed {stats.departed}, "
            f"peak active {stats.peak_active}, {emitter.seq} snapshots"
        )
        print(f"digest {stats.digest}")
        print(f"wrote {args.out}")
        if args.prom:
            print(f"wrote {args.prom}")
        if args.trace:
            print(f"wrote {args.trace}")
        if args.checkpoint_every is not None:
            print(
                f"checkpointed to {checkpoint_path} "
                f"every {args.checkpoint_every} requests"
            )
        return 0
    finally:
        obs.disable()
        obs.reset()


def _run_stream(args) -> int:
    """``repro stream``: an emitter-instrumented online run."""
    if (
        args.workload is not None
        or args.resume is not None
        or args.shards is not None
        or args.checkpoint_every is not None
    ):
        return _run_stream_engine(args)

    from repro import obs
    from repro.analysis.common import (
        build_real_network,
        calibrated_online_cp,
        make_requests,
    )
    from repro.simulation.engine import run_online

    network = build_real_network(args.topology, args.seed)
    requests = make_requests(
        network.graph, args.requests, 0.2, args.seed + 1
    )
    algorithm = calibrated_online_cp(network)

    obs.enable()
    obs.reset()
    sinks = [obs.JsonlSink(args.out)]
    if args.prom:
        sinks.append(obs.PrometheusSink(args.prom))
    if args.dashboard:
        sinks.append(_DashboardSink())
    log = obs.start_trace() if args.trace else None
    try:
        with obs.SnapshotEmitter(
            every_requests=args.every,
            every_seconds=args.every_seconds,
            sinks=sinks,
            crash_dump_path=args.out + ".crash",
        ) as emitter:
            stats = run_online(algorithm, requests, emitter=emitter)
    finally:
        if log is not None:
            obs.stop_trace()
    if args.trace:
        obs.write_chrome_trace(log, args.trace)
    obs.disable()
    obs.reset()

    print(
        f"stream {args.topology}: {len(requests)} requests, "
        f"admitted {stats.admitted}, rejected {stats.rejected}, "
        f"{emitter.seq} snapshots"
    )
    print(f"wrote {args.out}")
    if args.prom:
        print(f"wrote {args.prom}")
    if args.trace:
        print(f"wrote {args.trace}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        print("all")
        return 0

    if args.command == "lint":
        from repro.lint.cli import run as run_lint

        return run_lint(args)

    if getattr(args, "graph_backend", None) is not None:
        from repro.graph import set_graph_backend

        set_graph_backend(args.graph_backend)

    if args.command == "demo":
        _run_demo(args.size, args.seed)
        return 0

    if args.command == "bench":
        from repro.obs import bench

        output = args.output or {
            "appro": "BENCH_csr.json",
            "stream-obs": "BENCH_obs.json",
        }.get(args.target, f"BENCH_{args.target}.json")
        batch = args.requests or bench.DEFAULT_REQUESTS
        if args.target == "obs":
            payload = bench.run_obs_benchmark(
                output_path=output,
                requests=batch,
                rounds=args.rounds or bench.DEFAULT_ROUNDS,
            )
            lines = bench.render_bench_summary(payload)
        elif args.target == "spcache":
            payload = bench.run_spcache_benchmark(
                output_path=output,
                requests=batch,
                rounds=args.rounds or bench.DEFAULT_ROUNDS,
                quick=args.quick,
            )
            lines = bench.render_speedup_summary(payload)
        elif args.target == "appro":
            payload = bench.run_appro_benchmark(
                output_path=output,
                requests=batch,
                rounds=args.rounds or bench.DEFAULT_APPRO_ROUNDS,
                quick=args.quick,
            )
            lines = bench.render_speedup_summary(payload)
        elif args.target == "stream":
            from repro.stream import bench as stream_bench

            payload = stream_bench.run_stream_scale_benchmark(
                output_path=output,
                requests=args.requests,
                quick=args.quick,
            )
            lines = stream_bench.render_stream_scale_summary(payload)
        elif args.target == "stream-obs":
            payload = bench.run_stream_benchmark(
                output_path=output,
                requests=args.requests or bench.DEFAULT_STREAM_REQUESTS,
                rounds=args.rounds or bench.DEFAULT_ROUNDS,
                quick=args.quick,
            )
            lines = bench.render_stream_summary(payload)
        else:
            payload = bench.run_csr_benchmark(
                output_path=output,
                rounds=args.rounds or bench.DEFAULT_CSR_ROUNDS,
                quick=args.quick,
            )
            lines = bench.render_speedup_summary(payload)
        for line in lines:
            print(line)
        print(f"wrote {output}")
        return 0

    if args.command == "stream":
        return _run_stream(args)

    if args.command == "watch":
        from repro.obs.dashboard import watch as watch_stream

        watch_stream(args.path, follow=args.follow, poll_seconds=args.poll)
        return 0

    if getattr(args, "workers", None) is not None:
        from repro.simulation import set_default_workers

        try:
            set_default_workers(args.workers)
        except ValueError as exc:
            print(f"error: --workers: {exc}", file=sys.stderr)
            return 2

    profile_arg = getattr(args, "profile", "fast")
    show_phases = profile_arg == _PROFILE_BARE
    metrics_out = getattr(args, "metrics_out", None)
    collect_metrics = show_phases or metrics_out is not None
    if collect_metrics:
        from repro import obs

        obs.enable()
        obs.reset()

    profile = get_profile("fast" if show_phases else profile_arg)
    names = None if args.command == "all" else [args.command]
    results = run_all(profile, names=names)

    from repro.analysis.verdicts import render_verdicts, verify_results

    print(render_verdicts(verify_results(results)))
    print()
    if args.chart:
        from repro.analysis.ascii_plot import render_chart

        for panels in results.values():
            for panel in panels:
                print(render_chart(panel))
                print()
    if args.output:
        markdown = build_experiments_markdown(results, profile)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"wrote {args.output}")
    if args.json:
        from repro.analysis.export import write_json

        write_json(results, args.json)
        print(f"wrote {args.json}")
    if collect_metrics:
        from repro import obs
        from repro.obs.export import (
            render_phase_table,
            write_json as write_metrics_json,
            write_prometheus,
        )

        snap = obs.snapshot()
        if show_phases:
            print()
            print(render_phase_table(snap))
        if metrics_out:
            write_metrics_json(snap, metrics_out)
            prom_path = os.path.splitext(metrics_out)[0] + ".prom"
            write_prometheus(snap, prom_path)
            print(f"wrote {metrics_out}")
            print(f"wrote {prom_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
