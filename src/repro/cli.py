"""Command-line interface: reproduce any figure from a terminal.

Examples::

    python -m repro.cli list
    python -m repro.cli fig5 --profile fast
    python -m repro.cli all --profile paper --output EXPERIMENTS.md
    python -m repro.cli fig5 --profile --metrics-out metrics.json
    python -m repro.cli bench
    python -m repro.cli bench --target csr --quick
    python -m repro.cli demo
    python -m repro.cli fig5 --graph-backend dict
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.profiles import get_profile
from repro.analysis.report import (
    EXPERIMENTS,
    build_experiments_markdown,
    run_all,
)

#: ``--profile`` with no value: keep the default experiment scale but turn
#: on phase profiling (print the span-hierarchy table after the run).
_PROFILE_BARE = "::phases::"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nfv-multicast",
        description=(
            "Reproduce the evaluation of 'Approximation and Online "
            "Algorithms for NFV-Enabled Multicasting in SDNs' (ICDCS 2017)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    lint = subparsers.add_parser(
        "lint",
        help="run the AST-based invariant linter (see docs/STATIC_ANALYSIS.md)",
    )
    from repro.lint.cli import build_parser as _build_lint_parser

    _build_lint_parser(lint)

    def _add_graph_backend(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--graph-backend",
            choices=("dict", "csr"),
            default=None,
            metavar="NAME",
            help=(
                "shortest-path engine: 'csr' (default; compiled adjacency) "
                "or 'dict' (reference engine); overrides the "
                "REPRO_GRAPH_BACKEND env var, results are identical"
            ),
        )

    demo = subparsers.add_parser(
        "demo", help="run a 30-second end-to-end demonstration"
    )
    demo.add_argument("--size", type=int, default=50, help="network size")
    demo.add_argument("--seed", type=int, default=7, help="RNG seed")
    _add_graph_backend(demo)

    bench = subparsers.add_parser(
        "bench",
        help="micro-benchmarks (telemetry overhead, spcache, CSR engine)",
    )
    bench.add_argument(
        "--target",
        choices=("obs", "spcache", "csr", "appro"),
        default="obs",
        help=(
            "what to measure: 'obs' telemetry overhead (default), "
            "'spcache' cached vs uncached solver, 'csr' compiled vs dict "
            "Dijkstra engine, 'appro' end-to-end dict-path vs CSR-native "
            "Appro_Multi (merges into BENCH_csr.json)"
        ),
    )
    bench.add_argument(
        "--output",
        default=None,
        help="artifact path (default: BENCH_<target>.json)",
    )
    bench.add_argument(
        "--requests", type=int, default=40,
        help="batch size for obs/spcache targets (default 40)",
    )
    bench.add_argument(
        "--rounds", type=int, default=None,
        help="timing rounds (default: 3, or 7 for --target csr)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads for CI smoke runs (noisier numbers)",
    )
    _add_graph_backend(bench)

    for name in list(EXPERIMENTS) + ["all"]:
        sub = subparsers.add_parser(
            name,
            help=(
                "run every experiment" if name == "all"
                else f"reproduce {name}"
            ),
        )
        sub.add_argument(
            "--profile",
            nargs="?",
            const=_PROFILE_BARE,
            default="fast",
            metavar="SCALE",
            help=(
                "with a value: experiment scale, 'fast' (default) or "
                "'paper'; with no value: keep the default scale and print "
                "a solver phase-breakdown table after the run"
            ),
        )
        sub.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help=(
                "write the telemetry snapshot as JSON to PATH and as "
                "Prometheus text format to PATH with a .prom extension"
            ),
        )
        sub.add_argument(
            "--output",
            default=None,
            help="also write results as markdown to this path",
        )
        sub.add_argument(
            "--json",
            default=None,
            help="also write results as JSON to this path",
        )
        sub.add_argument(
            "--chart",
            action="store_true",
            help="render each panel as an ASCII chart after its table",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help=(
                "process count for independent data points (default: "
                "REPRO_WORKERS env var, else the CPU count); results are "
                "identical for every value"
            ),
        )
        _add_graph_backend(sub)
    return parser


def _run_demo(size: int, seed: int) -> None:
    from repro import (
        OnlineCP,
        SPOnline,
        alg_one_server,
        appro_multi,
        build_sdn,
        generate_workload,
        gt_itm_flat,
        run_online,
    )

    graph = gt_itm_flat(size, seed=seed)
    network = build_sdn(graph, seed=seed)
    print(f"network: {network}")

    request = generate_workload(graph, count=1, dmax_ratio=0.1, seed=seed)[0]
    print(f"request: {request.describe()}")
    tree = appro_multi(network, request, max_servers=3)
    print(tree.describe())
    baseline = alg_one_server(network, request)
    print(
        f"Alg_One_Server cost: {baseline.total_cost:.3f} "
        f"(Appro_Multi saves "
        f"{100 * (1 - tree.total_cost / baseline.total_cost):.1f}%)"
    )

    requests = generate_workload(graph, count=100, seed=seed + 1)
    cp_stats = run_online(OnlineCP(build_sdn(graph, seed=seed)), requests)
    sp_stats = run_online(SPOnline(build_sdn(graph, seed=seed)), requests)
    print(
        f"online over {len(requests)} requests: "
        f"Online_CP admitted {cp_stats.admitted}, "
        f"SP admitted {sp_stats.admitted}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        print("all")
        return 0

    if args.command == "lint":
        from repro.lint.cli import run as run_lint

        return run_lint(args)

    if getattr(args, "graph_backend", None) is not None:
        from repro.graph import set_graph_backend

        set_graph_backend(args.graph_backend)

    if args.command == "demo":
        _run_demo(args.size, args.seed)
        return 0

    if args.command == "bench":
        from repro.obs import bench

        output = args.output or (
            "BENCH_csr.json"
            if args.target == "appro"
            else f"BENCH_{args.target}.json"
        )
        if args.target == "obs":
            payload = bench.run_obs_benchmark(
                output_path=output,
                requests=args.requests,
                rounds=args.rounds or bench.DEFAULT_ROUNDS,
            )
            lines = bench.render_bench_summary(payload)
        elif args.target == "spcache":
            payload = bench.run_spcache_benchmark(
                output_path=output,
                requests=args.requests,
                rounds=args.rounds or bench.DEFAULT_ROUNDS,
                quick=args.quick,
            )
            lines = bench.render_speedup_summary(payload)
        elif args.target == "appro":
            payload = bench.run_appro_benchmark(
                output_path=output,
                requests=args.requests,
                rounds=args.rounds or bench.DEFAULT_APPRO_ROUNDS,
                quick=args.quick,
            )
            lines = bench.render_speedup_summary(payload)
        else:
            payload = bench.run_csr_benchmark(
                output_path=output,
                rounds=args.rounds or bench.DEFAULT_CSR_ROUNDS,
                quick=args.quick,
            )
            lines = bench.render_speedup_summary(payload)
        for line in lines:
            print(line)
        print(f"wrote {output}")
        return 0

    if getattr(args, "workers", None) is not None:
        from repro.simulation import set_default_workers

        try:
            set_default_workers(args.workers)
        except ValueError as exc:
            print(f"error: --workers: {exc}", file=sys.stderr)
            return 2

    profile_arg = getattr(args, "profile", "fast")
    show_phases = profile_arg == _PROFILE_BARE
    metrics_out = getattr(args, "metrics_out", None)
    collect_metrics = show_phases or metrics_out is not None
    if collect_metrics:
        from repro import obs

        obs.enable()
        obs.reset()

    profile = get_profile("fast" if show_phases else profile_arg)
    names = None if args.command == "all" else [args.command]
    results = run_all(profile, names=names)

    from repro.analysis.verdicts import render_verdicts, verify_results

    print(render_verdicts(verify_results(results)))
    print()
    if args.chart:
        from repro.analysis.ascii_plot import render_chart

        for panels in results.values():
            for panel in panels:
                print(render_chart(panel))
                print()
    if args.output:
        markdown = build_experiments_markdown(results, profile)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"wrote {args.output}")
    if args.json:
        from repro.analysis.export import write_json

        write_json(results, args.json)
        print(f"wrote {args.json}")
    if collect_metrics:
        from repro import obs
        from repro.obs.export import (
            render_phase_table,
            write_json as write_metrics_json,
            write_prometheus,
        )

        snap = obs.snapshot()
        if show_phases:
            print()
            print(render_phase_table(snap))
        if metrics_out:
            write_metrics_json(snap, metrics_out)
            prom_path = os.path.splitext(metrics_out)[0] + ".prom"
            write_prometheus(snap, prom_path)
            print(f"wrote {metrics_out}")
            print(f"wrote {prom_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
