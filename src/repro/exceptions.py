"""Exception hierarchy for the NFV-multicast reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for errors raised by the graph substrate."""


class NodeNotFoundError(GraphError, KeyError):
    """A node referenced by an operation does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by an operation does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class DisconnectedGraphError(GraphError):
    """An operation required connectivity that the graph does not provide.

    Raised, for example, when a Steiner tree is requested for terminals that
    lie in different connected components.
    """


class NotATreeError(GraphError):
    """A graph expected to be a tree contains a cycle or is disconnected."""


class TopologyError(ReproError):
    """A topology generator was given inconsistent parameters."""


class ServiceChainError(ReproError):
    """A service chain definition is invalid (unknown function, empty chain)."""


class NetworkModelError(ReproError):
    """Base class for SDN substrate errors."""


class CapacityExceededError(NetworkModelError):
    """An allocation would drive a link or server below zero residual capacity."""

    def __init__(self, resource: str, requested: float, available: float) -> None:
        super().__init__(
            f"cannot allocate {requested:g} on {resource}: "
            f"only {available:g} available"
        )
        self.resource = resource
        self.requested = requested
        self.available = available


class AllocationError(NetworkModelError):
    """A release or commit did not match an outstanding allocation."""


class RequestError(ReproError):
    """A multicast request is malformed (e.g. source among destinations)."""


class InfeasibleRequestError(ReproError):
    """No feasible pseudo-multicast tree exists for a request.

    Raised by the single-request solvers when the (possibly pruned) network
    cannot connect the source, a server, and every destination.
    """


class SimulationError(ReproError):
    """The online simulation engine was driven into an invalid state."""


class ExperimentError(ReproError):
    """An analysis driver was configured with invalid parameters."""
