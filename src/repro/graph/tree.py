"""Rooted-tree utilities: parents, depths, LCA, tree paths, leaf pruning.

The online algorithm ``Online_CP`` roots each candidate Steiner tree at the
request source and needs the lowest common ancestor of the chosen server and
all destinations to price the "send the processed packet back up" detour of a
pseudo-multicast tree (Algorithm 2, line 10).  LCA is implemented with binary
lifting so repeated queries on the same tree are ``O(log n)``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.exceptions import NodeNotFoundError, NotATreeError
from repro.graph.graph import Graph, Node


def is_tree(graph: Graph) -> bool:
    """Return whether ``graph`` is a tree (connected and acyclic).

    The empty graph is not a tree; a single node is.
    """
    n = graph.num_nodes
    if n == 0:
        return False
    if graph.num_edges != n - 1:
        return False
    # with n-1 edges, connectivity implies acyclicity
    seen = {next(iter(graph.nodes()))}
    frontier = deque(seen)
    while frontier:
        node = frontier.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == n


def prune_leaves(tree: Graph, keep: Iterable[Node]) -> Graph:
    """Repeatedly strip leaves not in ``keep`` and return the pruned copy.

    This is the final step of the KMB Steiner heuristic: after expanding MST
    edges into shortest paths, any dangling non-terminal branches must go.
    """
    protected = set(keep)
    pruned = tree.copy()
    candidates = deque(
        node
        for node in pruned.nodes()
        if pruned.degree(node) <= 1 and node not in protected
    )
    while candidates:
        leaf = candidates.popleft()
        if not pruned.has_node(leaf) or leaf in protected:
            continue
        if pruned.degree(leaf) > 1:
            continue
        neighbors = list(pruned.neighbors(leaf))
        pruned.remove_node(leaf)
        for neighbor in neighbors:
            if pruned.degree(neighbor) <= 1 and neighbor not in protected:
                candidates.append(neighbor)
    return pruned


class RootedTree:
    """A tree rooted at a designated node with fast LCA queries.

    Args:
        tree: a graph that must be a tree.
        root: the node to root it at.

    Raises:
        NotATreeError: if ``tree`` is not a tree.
        NodeNotFoundError: if ``root`` is not in ``tree``.
    """

    def __init__(self, tree: Graph, root: Node) -> None:
        if not tree.has_node(root):
            raise NodeNotFoundError(root)
        if not is_tree(tree):
            raise NotATreeError(
                f"graph with {tree.num_nodes} nodes and {tree.num_edges} "
                "edges is not a tree"
            )
        self._tree = tree
        self._root = root
        self._parent: Dict[Node, Optional[Node]] = {root: None}
        self._depth: Dict[Node, int] = {root: 0}
        order: List[Node] = [root]
        frontier = deque([root])
        while frontier:
            node = frontier.popleft()
            for neighbor in tree.neighbors(node):
                if neighbor not in self._depth:
                    self._parent[neighbor] = node
                    self._depth[neighbor] = self._depth[node] + 1
                    order.append(neighbor)
                    frontier.append(neighbor)
        self._order = order
        self._build_lifting_table()

    def _build_lifting_table(self) -> None:
        max_depth = max(self._depth.values(), default=0)
        levels = max(1, max_depth.bit_length())
        up: List[Dict[Node, Optional[Node]]] = [dict(self._parent)]
        for level in range(1, levels):
            previous = up[level - 1]
            current: Dict[Node, Optional[Node]] = {}
            for node in self._order:
                halfway = previous[node]
                current[node] = previous[halfway] if halfway is not None else None
            up.append(current)
        self._up = up

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> Node:
        """The root node."""
        return self._root

    @property
    def graph(self) -> Graph:
        """The underlying (unrooted) tree graph."""
        return self._tree

    def nodes(self) -> Iterable[Node]:
        """Iterate over nodes in BFS order from the root."""
        return iter(self._order)

    def parent(self, node: Node) -> Optional[Node]:
        """Return the parent of ``node`` (``None`` for the root)."""
        try:
            return self._parent[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def depth(self, node: Node) -> int:
        """Return the number of edges between ``node`` and the root."""
        try:
            return self._depth[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def children(self, node: Node) -> List[Node]:
        """Return the children of ``node``."""
        return [
            neighbor
            for neighbor in self._tree.neighbors(node)
            if self._parent.get(neighbor) == node
        ]

    def subtree_nodes(self, node: Node) -> Set[Node]:
        """Return every node in the subtree rooted at ``node``."""
        result = {node}
        frontier = deque([node])
        while frontier:
            current = frontier.popleft()
            for child in self.children(current):
                result.add(child)
                frontier.append(child)
        return result

    # ------------------------------------------------------------------
    # LCA and paths
    # ------------------------------------------------------------------
    def _ancestor(self, node: Node, steps: int) -> Node:
        level = 0
        while steps:
            if steps & 1:
                lifted = self._up[level][node]
                assert lifted is not None, "jumped above the root"
                node = lifted
            steps >>= 1
            level += 1
        return node

    def lca(self, a: Node, b: Node) -> Node:
        """Return the lowest common ancestor of ``a`` and ``b``."""
        if a not in self._depth:
            raise NodeNotFoundError(a)
        if b not in self._depth:
            raise NodeNotFoundError(b)
        if self._depth[a] < self._depth[b]:
            a, b = b, a
        a = self._ancestor(a, self._depth[a] - self._depth[b])
        if a == b:
            return a
        for level in range(len(self._up) - 1, -1, -1):
            ancestor_a = self._up[level][a]
            ancestor_b = self._up[level][b]
            if ancestor_a != ancestor_b:
                assert ancestor_a is not None and ancestor_b is not None
                a, b = ancestor_a, ancestor_b
        result = self._parent[a]
        assert result is not None
        return result

    def lca_of_set(self, nodes: Sequence[Node]) -> Node:
        """Return the LCA of a non-empty set of nodes.

        Mirrors the paper's ``LCA(x1, …, xn) = LCA(LCA(x1, …, x(n-1)), xn)``.
        """
        if not nodes:
            raise ValueError("lca_of_set needs at least one node")
        result = nodes[0]
        for node in nodes[1:]:
            result = self.lca(result, node)
        return result

    def path_to_ancestor(self, node: Node, ancestor: Node) -> List[Node]:
        """Return the path ``[node, ..., ancestor]`` walking up the tree.

        Raises:
            ValueError: if ``ancestor`` is not actually an ancestor of ``node``.
        """
        path = [node]
        current = node
        while current != ancestor:
            parent = self._parent.get(current)
            if parent is None:
                raise ValueError(f"{ancestor!r} is not an ancestor of {node!r}")
            current = parent
            path.append(current)
        return path

    def path_between(self, a: Node, b: Node) -> List[Node]:
        """Return the unique tree path from ``a`` to ``b``."""
        meet = self.lca(a, b)
        up_leg = self.path_to_ancestor(a, meet)
        down_leg = self.path_to_ancestor(b, meet)
        return up_leg + down_leg[-2::-1]

    def path_weight(self, a: Node, b: Node) -> float:
        """Return the weight of the unique tree path from ``a`` to ``b``."""
        path = self.path_between(a, b)
        return sum(
            self._tree.weight(u, v) for u, v in zip(path, path[1:])
        )

    def on_path_to_root(self, node: Node, query: Node) -> bool:
        """Return whether ``query`` lies on the path from ``node`` to the root."""
        if query not in self._depth:
            raise NodeNotFoundError(query)
        return self.lca(node, query) == query
