"""Connectivity queries: BFS reachability and connected components.

``Appro_Multi_Cap`` must reject a request when, after pruning exhausted
resources, no connected component contains the source, every destination, and
at least one candidate server (Section IV-C of the paper).  These helpers
answer that question without running a full shortest-path computation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set

from repro.exceptions import NodeNotFoundError
from repro.graph.graph import Graph, Node


def bfs_reachable(graph: Graph, source: Node) -> Set[Node]:
    """Return the set of nodes reachable from ``source`` (including it)."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    seen = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen


def connected_components(graph: Graph) -> List[Set[Node]]:
    """Return the connected components of ``graph`` as a list of node sets."""
    remaining = set(graph.nodes())
    components: List[Set[Node]] = []
    while remaining:
        start = next(iter(remaining))
        component = bfs_reachable(graph, start)
        components.append(component)
        remaining -= component
    return components


def is_connected(graph: Graph) -> bool:
    """Return whether the graph is connected (vacuously true when empty)."""
    if graph.num_nodes == 0:
        return True
    start = next(iter(graph.nodes()))
    return len(bfs_reachable(graph, start)) == graph.num_nodes


def same_component(graph: Graph, nodes: Iterable[Node]) -> bool:
    """Return whether all ``nodes`` lie in one connected component.

    Nodes absent from the graph make the answer ``False`` (they were pruned,
    so they cannot be reached), which is the semantics the capacitated solver
    needs.
    """
    wanted = list(nodes)
    if not wanted:
        return True
    first = wanted[0]
    if not graph.has_node(first):
        return False
    if any(not graph.has_node(node) for node in wanted[1:]):
        return False
    reachable = bfs_reachable(graph, first)
    return all(node in reachable for node in wanted[1:])


def component_containing(graph: Graph, node: Node) -> Set[Node]:
    """Return the connected component containing ``node``."""
    return bfs_reachable(graph, node)


def component_index(graph: Graph) -> Dict[Node, int]:
    """Return a map from each node to the index of its component."""
    index: Dict[Node, int] = {}
    for i, component in enumerate(connected_components(graph)):
        for node in component:
            index[node] = i
    return index
