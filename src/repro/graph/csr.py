"""Flat CSR graph kernel: integer-indexed Dijkstra, bit-identical to dict.

Every algorithm in the paper bottoms out in single-source Dijkstra over the
dict-of-dict :class:`~repro.graph.graph.Graph`.  That engine pays a hash
lookup and a method call per edge relaxation; this module compiles a
topology once into flat arrays and runs the same search over integer
indices:

- :func:`compile_csr` interns nodes (stable ``node -> int`` in insertion
  order) and lays the adjacency out in CSR form — ``indptr``/``indices`` as
  ``array('q')`` and ``weights`` as ``array('d')``, with zero-copy numpy
  views (:meth:`CSRGraph.as_numpy`) when numpy is importable;
- :func:`dijkstra_csr` runs single-source Dijkstra over the compiled view
  with flat distance/parent arrays and an inlined flat binary heap,
  supporting the same ``targets=`` early exit as the dict engine;
- :func:`dijkstra_many` sweeps many sources over one shared workspace —
  the batched entry point for the multi-terminal fills in
  :func:`~repro.graph.steiner.metric_closure` and the per-request origin
  warm-up of :meth:`~repro.graph.spcache.ShortestPathCache.warm`.

**Bit-identity contract.**  The kernel is a faithful replica of the dict
engine, not merely an equivalent one: nodes are interned in
``graph.nodes()`` order and neighbors laid out in ``neighbor_items()``
order, distances accumulate in the same float order (``settled + weight``),
and the heap reproduces :class:`~repro.graph.heap.IndexedHeap` comparison
for comparison (``<=`` on sift-up, strict ``<`` child selection and ``>=``
stop on sift-down, last-entry-to-root on pop).  Equal-priority pops
therefore resolve in exactly the order the dict engine resolves them —
which is what pins parent choice among cost ties — and the decoded
:class:`~repro.graph.shortest_paths.ShortestPathTree` matches the dict
engine's **including dict insertion order** of ``distance`` (settle order)
and ``parent`` (first-relaxation order).  A d-ary heap would be faster per
pop but reorders equal-priority pops, so a binary layout is load-bearing
here; the differential harness and the hypothesis suite in
``tests/graph/test_csr.py`` hold the replica to the original.

The kernel is deliberately pure Python (the repo runs dependency-free);
numpy, when present, is exposed as zero-copy views for vectorized
*consumers* of the arrays, not used inside the search loop, where list
indexing is faster than numpy scalar access.

**Finite-weight precondition.**  The engine uses ``dist[i] == inf`` as the
"not yet improved" sentinel, which folds the settled-node check into the
relaxation comparison: a settled node's distance is already minimal, so
``candidate < dist[neighbor]`` is false exactly when the dict engine's
``neighbor in distance`` guard would skip.  That equivalence needs every
edge weight to be finite (an infinite weight would make an unseen node
indistinguishable from the sentinel), so :func:`compile_csr` rejects
non-finite and negative weights at compile time — the same domain the
paper's cost model uses and Dijkstra requires anyway.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graph.graph import Node
from repro.graph.shortest_paths import ShortestPathTree
from repro.obs import inc as _obs_inc, span as _obs_span

try:  # optional fast path for bulk consumers of the compiled arrays
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a test dependency
    _np = None  # type: ignore[assignment]

_INF = float("inf")


class CSRGraph:
    """A compiled, immutable CSR view of a graph.

    Attributes:
        nodes: interned node objects; ``nodes[i]`` is the node with index
            ``i`` (insertion order of the source graph).
        index: the inverse map ``node -> int``.
        indptr: ``array('q')`` of length ``n + 1``; the neighbors of node
            ``i`` occupy ``indices[indptr[i]:indptr[i+1]]``.
        indices: ``array('q')`` of neighbor indices (each undirected edge
            appears twice, once per endpoint).
        weights: ``array('d')`` of edge weights, parallel to ``indices``.
        epoch: optional caller-supplied version tag (e.g. the
            :class:`~repro.network.sdn.SDNetwork` epoch the source graph
            was derived at); purely informational.
    """

    __slots__ = ("nodes", "index", "indptr", "indices", "weights", "epoch", "_engine")

    def __init__(
        self,
        nodes: List[Node],
        index: Dict[Node, int],
        indptr: "array[int]",
        indices: "array[int]",
        weights: "array[float]",
        epoch: Optional[int] = None,
    ) -> None:
        self.nodes = nodes
        self.index = index
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.epoch = epoch
        self._engine: Optional[_CSRDijkstra] = None

    @property
    def num_nodes(self) -> int:
        """The number of interned nodes."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """The number of undirected edges."""
        return len(self.indices) // 2

    def as_numpy(self) -> Tuple["_np.ndarray", "_np.ndarray", "_np.ndarray"]:
        """Return zero-copy numpy views ``(indptr, indices, weights)``.

        Raises:
            RuntimeError: if numpy is not installed.
        """
        if _np is None:  # pragma: no cover - numpy is a test dependency
            raise RuntimeError("numpy is not available")
        return (
            _np.frombuffer(self.indptr, dtype=_np.int64),
            _np.frombuffer(self.indices, dtype=_np.int64),
            _np.frombuffer(self.weights, dtype=_np.float64),
        )

    def engine(self) -> "_CSRDijkstra":
        """Return the (lazily created) shared search engine for this view.

        The engine owns the reusable workspace arrays; sharing it across
        calls is what makes :func:`dijkstra_many` allocation-free per
        source.  Searches are sequential throughout this codebase, so a
        single engine per view suffices.
        """
        engine = self._engine
        if engine is None:
            engine = self._engine = _CSRDijkstra(self)
        return engine

    def adjacency(self) -> List[Tuple[Tuple[int, float], ...]]:
        """Per-node adjacency as tuples of ``(neighbor index, weight)``.

        This is the engine's own pre-paired layout (one tuple per node, in
        ``neighbor_items()`` order), shared — not copied — so flat solver
        cores can walk the topology without re-deriving it from
        ``indptr``/``indices``.  Treat it as read-only.
        """
        return self.engine()._adj

    def __repr__(self) -> str:
        return f"CSRGraph(nodes={self.num_nodes}, edges={self.num_edges})"


def compile_csr(graph, epoch: Optional[int] = None) -> CSRGraph:
    """Compile a graph into a :class:`CSRGraph`.

    ``graph`` may be a :class:`~repro.graph.graph.Graph` or any object with
    the same ``nodes()`` / ``neighbor_items()`` iteration surface (e.g. a
    :class:`~repro.graph.spcache.ScaledGraphView`).  Interning follows
    ``nodes()`` order and the adjacency follows ``neighbor_items()`` order,
    which is what makes the kernel bit-identical to the dict engine.

    Args:
        graph: the topology to compile.
        epoch: optional version tag stored on the view (informational).
    """
    with _obs_span("csr.compile"):
        _obs_inc("csr.compiles")
        nodes: List[Node] = list(graph.nodes())
        index: Dict[Node, int] = {node: i for i, node in enumerate(nodes)}
        indptr = array("q", [0])
        indices = array("q")
        weights = array("d")
        for node in nodes:
            for neighbor, weight in graph.neighbor_items(node):
                if not 0.0 <= weight < _INF:  # also rejects NaN
                    raise ValueError(
                        f"edge ({node!r}, {neighbor!r}) has weight "
                        f"{weight!r}; the CSR kernel requires finite "
                        "non-negative weights (see module docstring)"
                    )
                indices.append(index[neighbor])
                weights.append(weight)
            indptr.append(len(indices))
        return CSRGraph(
            nodes=nodes,
            index=index,
            indptr=indptr,
            indices=indices,
            weights=weights,
            epoch=epoch,
        )


class _CSRDijkstra:
    """Reusable single-source Dijkstra engine over one compiled view.

    Owns a flat workspace sized once at construction and restored after
    every run, so a batch of searches allocates nothing per source beyond
    the result dicts.  Workspace invariants between runs:

    - ``_dist[i] == inf`` — the not-yet-improved sentinel (see the module
      docstring; this is what replaces the dict engine's settled check);
    - ``_pos[i] == -1`` — node ``i`` is not in the heap.  During a run,
      ``_pos`` is only meaningful for queued nodes: a settled node's slot
      goes stale rather than being written back, because nothing reads it
      (a settled node can never win the relaxation comparison).

    The adjacency is held as one tuple of ``(neighbor, weight)`` pairs per
    node — iterating pre-paired tuples beats ``indptr`` range walks with
    double indexing, and plain Python lists/tuples index faster from the
    interpreter loop than ``array('q')``/``array('d')``, which re-box every
    element on read.
    """

    __slots__ = (
        "_nodes",
        "_index",
        "_adj",
        "_dist",
        "_pos",
        "_dist_template",
        "_pos_template",
        "_hprio",
        "_hkey",
    )

    def __init__(self, csr: CSRGraph) -> None:
        indptr = list(csr.indptr)
        indices = list(csr.indices)
        weights = list(csr.weights)
        n = len(csr.nodes)
        self._nodes: List[Node] = list(csr.nodes)
        self._index: Dict[Node, int] = csr.index
        self._adj: List[Tuple[Tuple[int, float], ...]] = [
            tuple(zip(indices[indptr[i] : indptr[i + 1]],
                      weights[indptr[i] : indptr[i + 1]]))
            for i in range(n)
        ]
        self._dist: List[float] = [_INF] * n
        self._pos: List[int] = [-1] * n
        # Pristine copies for the O(n) slice-assignment reset (a C-level
        # copy, cheaper than a Python loop once most nodes were touched).
        self._dist_template: List[float] = [_INF] * n
        self._pos_template: List[int] = [-1] * n
        self._hprio: List[float] = []
        self._hkey: List[int] = []

    def run(
        self, source: Node, targets: Optional[Set[Node]] = None
    ) -> ShortestPathTree:
        """Run Dijkstra from ``source``; decode to a :class:`ShortestPathTree`.

        Mirrors :func:`repro.graph.shortest_paths.dijkstra` exactly,
        including the ``targets=`` early exit (the search stops once every
        target has been settled; a target absent from the graph can never
        settle, so it disables the early exit exactly as an unreachable
        pending node does in the dict engine; an empty target set stops
        after the source itself settles).

        Raises:
            NodeNotFoundError: if ``source`` is not in the compiled graph.
        """
        return self.run_resolved(source, self.resolve_targets(targets))

    def resolve_targets(
        self, targets: Optional[Set[Node]] = None
    ) -> Optional[frozenset]:
        """Intern a target set once, for reuse across a batch of sources.

        Returns ``None`` for "settle the whole component": either no
        targets were given, or some target is absent from the compiled
        graph — the dict engine's pending set could then never empty, so
        there is no early exit and the result equals an untargeted run.
        Otherwise returns the frozen set of target *indices* (possibly
        empty: the search stops right after the source settles).
        """
        if targets is None:
            return None
        index_get = self._index.get
        pending = set()
        for target in targets:
            target_idx = index_get(target)
            if target_idx is None:
                return None
            pending.add(target_idx)
        return frozenset(pending)

    def run_resolved(
        self, source: Node, resolved: Optional[frozenset]
    ) -> ShortestPathTree:
        """:meth:`run` with the target set already interned.

        ``resolved`` must come from :meth:`resolve_targets` on this same
        engine.  :func:`dijkstra_many` resolves the shared target set once
        and calls this per source, instead of re-hashing every target node
        object on every source of the batch.
        """
        try:
            source_idx = self._index[source]
        except KeyError:
            raise NodeNotFoundError(source) from None
        _obs_inc("csr.dijkstra.calls")
        if resolved is None:
            return self._run_full(source_idx, source)
        return self._run_targeted(source_idx, source, set(resolved))

    # ------------------------------------------------------------------
    # core search loops (inlined heap — these loops are the whole point)
    # ------------------------------------------------------------------
    def _run_full(self, source_idx: int, source: Node) -> ShortestPathTree:
        """Settle the whole component of ``source`` and decode the tree.

        The flat binary heap below replicates ``IndexedHeap`` operation for
        operation — see the module docstring for why tie order matters.
        The result dicts are built *during* the search (``distance`` at
        settle time, ``parent`` at first-improvement time), which lands
        them in the dict engine's exact insertion order for free.
        """
        dist = self._dist
        pos = self._pos
        adj = self._adj
        nodes = self._nodes
        hprio = self._hprio
        hkey = self._hkey
        hprio_pop = hprio.pop
        hkey_pop = hkey.pop
        hprio_push = hprio.append
        hkey_push = hkey.append

        distance: Dict[Node, float] = {}
        parent_map: Dict[Node, Optional[Node]] = {nodes[source_idx]: None}
        dist[source_idx] = 0.0
        pos[source_idx] = 0
        hprio_push(0.0)
        hkey_push(source_idx)

        while hprio:
            # -- pop the minimum (IndexedHeap.pop) -----------------------
            node = hkey[0]
            node_dist = hprio[0]
            last_prio = hprio_pop()
            last_key = hkey_pop()
            node_name = nodes[node]
            distance[node_name] = node_dist
            size = len(hprio)
            if size:
                hole = 0
                while True:
                    child = 2 * hole + 1
                    if child >= size:
                        break
                    child_prio = hprio[child]
                    right = child + 1
                    if right < size and (right_prio := hprio[right]) < child_prio:
                        child = right
                        child_prio = right_prio
                    if child_prio >= last_prio:
                        break
                    moved = hkey[child]
                    hprio[hole] = child_prio
                    hkey[hole] = moved
                    pos[moved] = hole
                    hole = child
                hprio[hole] = last_prio
                hkey[hole] = last_key
                pos[last_key] = hole
            # -- relax neighbors ----------------------------------------
            for neighbor, weight in adj[node]:
                # The sum is recomputed on accept: most relaxations reject,
                # and comparing inline keeps that majority path one local
                # store shorter (same operands, bit-identical result).
                if node_dist + weight < dist[neighbor]:
                    candidate = node_dist + weight
                    dist[neighbor] = candidate
                    parent_map[nodes[neighbor]] = node_name
                    hole = pos[neighbor]
                    if hole < 0:
                        hole = len(hprio)
                        hprio_push(candidate)
                        hkey_push(neighbor)
                    # -- sift up (IndexedHeap._sift_up) -----------------
                    while hole > 0:
                        up = (hole - 1) >> 1
                        up_prio = hprio[up]
                        if up_prio <= candidate:
                            break
                        moved = hkey[up]
                        hprio[hole] = up_prio
                        hkey[hole] = moved
                        pos[moved] = hole
                        hole = up
                    hprio[hole] = candidate
                    hkey[hole] = neighbor
                    pos[neighbor] = hole
        dist[:] = self._dist_template
        pos[:] = self._pos_template
        return ShortestPathTree(
            source=source, distance=distance, parent=parent_map
        )

    def _run_targeted(
        self, source_idx: int, source: Node, pending: Set[int]
    ) -> ShortestPathTree:
        """Settle from ``source`` until every index in ``pending`` popped.

        Same loop as :meth:`_run_full` plus the per-pop pending check and a
        ``pushed`` log so the early exit can restore only the touched
        workspace slots (an exhausted search may still be cheaper to reset
        by slice, but targeted runs typically touch a small fraction).
        """
        dist = self._dist
        pos = self._pos
        adj = self._adj
        nodes = self._nodes
        hprio = self._hprio
        hkey = self._hkey
        hprio_pop = hprio.pop
        hkey_pop = hkey.pop
        hprio_push = hprio.append
        hkey_push = hkey.append

        distance: Dict[Node, float] = {}
        parent_map: Dict[Node, Optional[Node]] = {nodes[source_idx]: None}
        pushed: List[int] = [source_idx]
        pushed_append = pushed.append
        dist[source_idx] = 0.0
        pos[source_idx] = 0
        hprio_push(0.0)
        hkey_push(source_idx)

        while hprio:
            node = hkey[0]
            node_dist = hprio[0]
            last_prio = hprio_pop()
            last_key = hkey_pop()
            node_name = nodes[node]
            distance[node_name] = node_dist
            size = len(hprio)
            if size:
                hole = 0
                while True:
                    child = 2 * hole + 1
                    if child >= size:
                        break
                    child_prio = hprio[child]
                    right = child + 1
                    if right < size and (right_prio := hprio[right]) < child_prio:
                        child = right
                        child_prio = right_prio
                    if child_prio >= last_prio:
                        break
                    moved = hkey[child]
                    hprio[hole] = child_prio
                    hkey[hole] = moved
                    pos[moved] = hole
                    hole = child
                hprio[hole] = last_prio
                hkey[hole] = last_key
                pos[last_key] = hole
            pending.discard(node)
            if not pending:
                break
            for neighbor, weight in adj[node]:
                # Same inline-compare-then-recompute as _run_full.
                if node_dist + weight < dist[neighbor]:
                    candidate = node_dist + weight
                    dist[neighbor] = candidate
                    parent_map[nodes[neighbor]] = node_name
                    hole = pos[neighbor]
                    if hole < 0:
                        pushed_append(neighbor)
                        hole = len(hprio)
                        hprio_push(candidate)
                        hkey_push(neighbor)
                    while hole > 0:
                        up = (hole - 1) >> 1
                        up_prio = hprio[up]
                        if up_prio <= candidate:
                            break
                        moved = hkey[up]
                        hprio[hole] = up_prio
                        hkey[hole] = moved
                        pos[moved] = hole
                        hole = up
                    hprio[hole] = candidate
                    hkey[hole] = neighbor
                    pos[neighbor] = hole
        for touched in pushed:
            dist[touched] = _INF
            pos[touched] = -1
        # An early exit leaves entries in the heap; settling to exhaustion
        # leaves none, so the clear is a no-op there.
        if hprio:
            del hprio[:]
            del hkey[:]
        return ShortestPathTree(
            source=source, distance=distance, parent=parent_map
        )


def dijkstra_csr(
    csr: CSRGraph, source: Node, targets: Optional[Set[Node]] = None
) -> ShortestPathTree:
    """Single-source Dijkstra over a compiled view (bit-identical decode).

    Drop-in equivalent of :func:`repro.graph.shortest_paths.dijkstra` on
    the source graph — identical distances, parents, and dict insertion
    orders.  Reuses the view's shared engine, so consecutive calls on the
    same view allocate no workspace.
    """
    return csr.engine().run(source, targets)


def dijkstra_many(
    csr: CSRGraph,
    sources: Sequence[Node],
    targets: Optional[Set[Node]] = None,
) -> Dict[Node, ShortestPathTree]:
    """Batched Dijkstra sweep: one tree per source over a shared workspace.

    With ``targets`` given, each source's search stops once every target is
    settled (a source that is itself a target counts the moment it pops,
    so passing the full terminal set matches the dict engine's per-source
    ``terminal_set - {source}`` early exit exactly).

    Returns a ``source -> tree`` dict in ``sources`` order (duplicates
    collapse onto the first occurrence, which is also the only one run).
    The shared target set is resolved to indices once for the whole batch
    (each source still gets its own pending copy, so early exits never
    leak state between sources).
    """
    _obs_inc("csr.batch.calls")
    engine = csr.engine()
    resolved = engine.resolve_targets(targets)
    trees: Dict[Node, ShortestPathTree] = {}
    for source in sources:
        if source not in trees:
            trees[source] = engine.run_resolved(source, resolved)
    return trees


def csr_tree_edges(tree: ShortestPathTree) -> Iterable[Tuple[Node, Node]]:
    """Parent edges ``(parent, child)`` of a decoded tree (convenience)."""
    return (
        (parent, child)
        for child, parent in tree.parent.items()
        if parent is not None
    )
