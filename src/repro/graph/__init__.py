"""Graph substrate: data structure and algorithms built from scratch.

This package contains everything the paper's algorithms need from graph
theory — Dijkstra, MSTs, metric closures, the KMB Steiner-tree
2-approximation, an exact Dreyfus–Wagner Steiner solver (test oracle), rooted
trees with LCA, and connectivity utilities — implemented on a lightweight
adjacency-list :class:`Graph` with no third-party dependencies.
"""

from repro.graph.backend import graph_backend, set_graph_backend
from repro.graph.constrained import (
    DelayBoundInfeasibleError,
    exact_constrained_path,
    larac_path,
    path_delay,
    proportional_delays,
    uniform_delays,
)
from repro.graph.components import (
    bfs_reachable,
    component_containing,
    component_index,
    connected_components,
    is_connected,
    same_component,
)
from repro.graph.csr import (
    CSRGraph,
    compile_csr,
    dijkstra_csr,
    dijkstra_many,
)
from repro.graph.exact_steiner import dreyfus_wagner, steiner_cost_exact
from repro.graph.graph import Graph, edge_key, edges_of_path, path_weight
from repro.graph.heap import IndexedHeap
from repro.graph.mst import (
    kruskal_mst,
    minimum_spanning_tree,
    mst_weight,
    prim_mst,
)
from repro.graph.shortest_paths import (
    INFINITY,
    ShortestPathTree,
    all_pairs_shortest_paths,
    diameter,
    dijkstra,
    eccentricity,
    shortest_path,
    shortest_path_length,
    single_source_distances,
)
from repro.graph.spcache import (
    ScaledDistances,
    ScaledGraphView,
    ScaledTree,
    ShortestPathCache,
    VersionedCacheRegistry,
)
from repro.graph.steiner import (
    MetricClosure,
    kmb_steiner_tree,
    kmb_steiner_tree_cached,
    metric_closure,
    steiner_tree_cost,
    validate_steiner_tree,
)
from repro.graph.tree import RootedTree, is_tree, prune_leaves
from repro.graph.unionfind import DisjointSet

__all__ = [
    "Graph",
    "CSRGraph",
    "IndexedHeap",
    "DisjointSet",
    "ShortestPathTree",
    "MetricClosure",
    "RootedTree",
    "INFINITY",
    "edge_key",
    "edges_of_path",
    "path_weight",
    "bfs_reachable",
    "DelayBoundInfeasibleError",
    "larac_path",
    "exact_constrained_path",
    "path_delay",
    "uniform_delays",
    "proportional_delays",
    "component_containing",
    "component_index",
    "connected_components",
    "is_connected",
    "same_component",
    "ScaledDistances",
    "ScaledGraphView",
    "ScaledTree",
    "ShortestPathCache",
    "VersionedCacheRegistry",
    "graph_backend",
    "set_graph_backend",
    "compile_csr",
    "dijkstra_csr",
    "dijkstra_many",
    "dijkstra",
    "shortest_path",
    "shortest_path_length",
    "single_source_distances",
    "all_pairs_shortest_paths",
    "diameter",
    "eccentricity",
    "prim_mst",
    "kruskal_mst",
    "minimum_spanning_tree",
    "mst_weight",
    "metric_closure",
    "kmb_steiner_tree",
    "kmb_steiner_tree_cached",
    "steiner_tree_cost",
    "validate_steiner_tree",
    "dreyfus_wagner",
    "steiner_cost_exact",
    "is_tree",
    "prune_leaves",
]
