"""A minimal, fast undirected weighted graph used by every substrate.

The library deliberately implements its own graph type instead of depending on
networkx: the algorithms in the paper (Dijkstra, MST, KMB Steiner trees) are
hot loops inside simulations that admit thousands of requests, and a plain
``dict``-of-``dict`` adjacency structure with no per-edge attribute dictionaries
is both faster and easier to reason about.  networkx is used only in the test
suite as an independent oracle.

Nodes may be any hashable object.  Edges are undirected, carry a single
``float`` weight, and parallel edges are not supported (adding an existing edge
overwrites its weight).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError

Node = Hashable
Edge = Tuple[Node, Node]


def edge_key(u: Node, v: Node) -> Edge:
    """Return a canonical (order-independent) key for the undirected edge.

    The two endpoints are ordered by ``repr`` so that ``edge_key(u, v)`` and
    ``edge_key(v, u)`` always coincide even for mixed node types.
    """
    if u == v:
        return (u, v)
    try:
        return (u, v) if u < v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class Graph:
    """An undirected, weighted, simple graph.

    >>> g = Graph()
    >>> g.add_edge("a", "b", 2.0)
    >>> g.add_edge("b", "c", 1.5)
    >>> sorted(g.neighbors("b"))
    ['a', 'c']
    >>> g.weight("a", "b")
    2.0
    """

    __slots__ = ("_adj",)

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[Node, Node, float]]
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v, weight)`` triples."""
        graph = cls()
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        return graph

    @classmethod
    def from_adjacency(
        cls, adjacency: Dict[Node, Dict[Node, float]]
    ) -> "Graph":
        """Build a graph from a symmetric ``{u: {v: weight}}`` mapping.

        Node order and per-node neighbor order are preserved exactly as
        given, so ``nodes()`` / ``edges()`` iteration of the result is
        bit-identical to a graph grown through the same sequence of
        ``add_node`` / ``add_edge`` calls — this is the decode entry point
        for integer-id solver cores that replay adjacency structure built
        on flat arrays.  The mapping must be symmetric and self-loop free.

        Raises:
            ValueError: if the mapping has a self-loop or is asymmetric.
        """
        graph = cls()
        adj = graph._adj
        for u, nbrs in adjacency.items():
            adj[u] = dict(nbrs)
        for u, nbrs in adj.items():
            for v, w in nbrs.items():
                if u == v:
                    raise ValueError(
                        f"self-loop on node {u!r} is not allowed"
                    )
                mirror = adj.get(v)
                if mirror is None or mirror.get(u) != w:
                    raise ValueError(
                        f"adjacency is not symmetric at edge ({u!r}, {v!r})"
                    )
        return graph

    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (a no-op if it already exists)."""
        self._adj.setdefault(node, {})

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add the undirected edge ``(u, v)`` with the given weight.

        Endpoints are created if absent.  Self-loops are rejected because no
        algorithm in this library is defined on them.
        """
        if u == v:
            raise ValueError(f"self-loop on node {u!r} is not allowed")
        if weight < 0:
            raise ValueError(f"negative edge weight {weight!r} is not allowed")
        self._adj.setdefault(u, {})[v] = float(weight)
        self._adj.setdefault(v, {})[u] = float(weight)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the undirected edge ``(u, v)``."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        del self._adj[v][u]

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every edge incident to it."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adj[node]):
            del self._adj[neighbor][node]
        del self._adj[node]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return whether the undirected edge ``(u, v)`` is in the graph."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node) -> float:
        """Return the weight of edge ``(u, v)``."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def set_weight(self, u: Node, v: Node, weight: float) -> None:
        """Update the weight of an existing edge ``(u, v)``."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        if weight < 0:
            raise ValueError(f"negative edge weight {weight!r} is not allowed")
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)

    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate over the neighbors of ``node``."""
        try:
            return iter(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbor_items(self, node: Node) -> Iterator[Tuple[Node, float]]:
        """Iterate over ``(neighbor, weight)`` pairs for ``node``."""
        try:
            return iter(self._adj[node].items())
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        """Return the number of edges incident to ``node``."""
        try:
            return len(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._adj)

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate over all edges as ``(u, v, weight)``, each reported once."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield u, v, w

    @property
    def num_nodes(self) -> int:
        """The number of nodes."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """The number of (undirected) edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def total_weight(self) -> float:
        """Return the sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        clone = Graph()
        clone._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the subgraph induced by ``nodes``.

        Unknown nodes are ignored, matching the permissive behaviour needed
        when pruning resource-exhausted elements from a network.
        """
        keep = {n for n in nodes if n in self._adj}
        sub = Graph()
        for node in keep:
            sub.add_node(node)
        for u in keep:
            for v, w in self._adj[u].items():
                if v in keep:
                    sub._adj[u][v] = w
        return sub

    def edge_subgraph(
        self, edges: Iterable[Tuple[Node, Node]]
    ) -> "Graph":
        """Return the subgraph containing exactly the given edges.

        Edge weights are taken from this graph; unknown edges raise
        :class:`~repro.exceptions.EdgeNotFoundError`.
        """
        sub = Graph()
        for u, v in edges:
            sub.add_edge(u, v, self.weight(u, v))
        return sub

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __repr__(self) -> str:
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges})"


def path_weight(graph: Graph, path: List[Node]) -> float:
    """Return the total weight of a node path ``[v0, v1, ..., vk]``.

    An empty or single-node path has weight zero.
    """
    return sum(graph.weight(u, v) for u, v in zip(path, path[1:]))


def edges_of_path(path: List[Node]) -> List[Edge]:
    """Return the canonical edge keys traversed by a node path."""
    return [edge_key(u, v) for u, v in zip(path, path[1:])]
