"""A versioned shortest-path cache with lazily scaled views.

Every ``Appro_Multi`` invocation needs one Dijkstra tree per terminal and
candidate server on a graph whose weights are the link unit costs multiplied
by the request bandwidth ``b_k``.  Because that scaling is *uniform*, the
shortest paths are identical to those of the unit-cost graph and only the
distances change — by exactly the factor ``b_k``.  This module exploits that:

- :class:`ShortestPathCache` computes each Dijkstra tree **once** on the
  unit-cost graph and memoizes it by origin, so trees are shared across
  server combinations, across requests, and across experiment trials on the
  same topology.
- :meth:`ShortestPathCache.scaled_tree` wraps a cached tree in a
  :class:`ScaledTree` whose distances are multiplied by ``b_k`` lazily, at
  lookup time — no per-request graph copies, no re-run searches.
- :class:`ScaledGraphView` is the matching read-only view of the graph with
  all weights multiplied by the same factor, for callers that need edge
  weights (auxiliary-graph expansion) rather than distances.

Residual and congestion-priced graphs are *not* uniform rescalings — they
change whenever resources are allocated or released.  For those,
:class:`VersionedCacheRegistry` keys each cache on an explicit version
number (the :class:`~repro.network.sdn.SDNetwork` *epoch* counter, bumped on
every residual mutation), so ``Appro_Multi_Cap`` and the online algorithms
read cached trees only while the underlying graph is provably unchanged.

Cache misses run the shortest-path engine selected by
:func:`~repro.graph.backend.graph_backend` (default the flat CSR kernel of
:mod:`repro.graph.csr`, bit-identical to the dict engine).  Under the CSR
backend each cache compiles its bound graph once — and since caches are
epoch-keyed, that is once per epoch — then serves every miss from the
compiled view; :meth:`ShortestPathCache.warm` batch-fills a set of origins
through :func:`~repro.graph.csr.dijkstra_many` over the same view.

Invariants (see docs/API.md for the full contract):

1. *Uniform-scaling*: for factor ``f > 0``, ``scaled_tree(o, f).distance[t]
   == f * tree(o).distance[t]`` and the realizing paths are identical.
2. *Epoch-keying*: a registry entry built at version ``e`` is never served
   at any version ``!= e``; mutating the network invalidates every derived
   cache at once.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.graph.backend import graph_backend
from repro.graph.csr import CSRGraph, compile_csr, dijkstra_csr, dijkstra_many
from repro.graph.graph import Graph, Node
from repro.graph.shortest_paths import ShortestPathTree, dijkstra
from repro.obs import inc as _obs_inc, span as _obs_span

_FLAT_INF = float("inf")


class ScaledDistances(Mapping):
    """Read-only mapping view multiplying every value by a fixed factor.

    Behaves like ``{node: base[node] * factor}`` without materializing it;
    missing nodes stay missing (an unreachable node is unreachable at every
    scale).
    """

    __slots__ = ("_base", "_factor")

    def __init__(self, base: Dict[Node, float], factor: float) -> None:
        self._base = base
        self._factor = factor

    def __getitem__(self, node: Node) -> float:
        return self._base[node] * self._factor

    def get(
        self, node: Node, default: Optional[float] = None
    ) -> Optional[float]:
        value = self._base.get(node)
        if value is None:
            return default
        return value * self._factor

    def __contains__(self, node: object) -> bool:
        return node in self._base

    def __iter__(self) -> Iterator[Node]:
        return iter(self._base)

    def __len__(self) -> int:
        return len(self._base)


class ScaledTree:
    """A :class:`ShortestPathTree` view with distances scaled by ``factor``.

    The parent structure (and therefore every path) is shared with the
    underlying unit-cost tree: uniform scaling preserves shortest paths.
    """

    __slots__ = ("_tree", "_factor", "distance")

    def __init__(self, tree: ShortestPathTree, factor: float) -> None:
        self._tree = tree
        self._factor = factor
        #: Lazily scaled distance mapping (mirrors ``ShortestPathTree``).
        self.distance = ScaledDistances(tree.distance, factor)

    @property
    def source(self) -> Node:
        """The Dijkstra origin."""
        return self._tree.source

    @property
    def factor(self) -> float:
        """The uniform weight multiplier."""
        return self._factor

    @property
    def parent(self) -> Dict[Node, Optional[Node]]:
        """Predecessor map, identical to the unit-cost tree's."""
        return self._tree.parent

    @property
    def base(self) -> ShortestPathTree:
        """The underlying unit-cost tree."""
        return self._tree

    def reaches(self, node: Node) -> bool:
        """Return whether ``node`` is reachable from the origin."""
        return self._tree.reaches(node)

    def path_to(self, target: Node) -> List[Node]:
        """Return the (scale-invariant) node path origin → ``target``."""
        return self._tree.path_to(target)


class ScaledGraphView:
    """Read-only view of a graph with every weight multiplied by ``factor``.

    Supports the query surface the solvers use (``weight``, ``has_edge``,
    iteration); :meth:`copy` materializes an ordinary mutable
    :class:`Graph` for callers that need to edit (the explicit
    auxiliary-graph construction).
    """

    __slots__ = ("_graph", "_factor")

    def __init__(self, graph: Graph, factor: float) -> None:
        self._graph = graph
        self._factor = factor

    @property
    def base(self) -> Graph:
        """The unscaled graph."""
        return self._graph

    @property
    def factor(self) -> float:
        """The uniform weight multiplier."""
        return self._factor

    def weight(self, u: Node, v: Node) -> float:
        """Return the scaled weight of edge ``(u, v)``."""
        return self._graph.weight(u, v) * self._factor

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return whether the edge exists (scale-independent)."""
        return self._graph.has_edge(u, v)

    def has_node(self, node: Node) -> bool:
        """Return whether the node exists (scale-independent)."""
        return self._graph.has_node(node)

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return self._graph.nodes()

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate over ``(u, v, scaled weight)`` triples."""
        factor = self._factor
        for u, v, w in self._graph.edges():
            yield u, v, w * factor

    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate over the neighbors of ``node``."""
        return self._graph.neighbors(node)

    def neighbor_items(self, node: Node) -> Iterator[Tuple[Node, float]]:
        """Iterate over ``(neighbor, scaled weight)`` pairs."""
        factor = self._factor
        for neighbor, w in self._graph.neighbor_items(node):
            yield neighbor, w * factor

    def degree(self, node: Node) -> int:
        """Return the degree of ``node``."""
        return self._graph.degree(node)

    @property
    def num_nodes(self) -> int:
        """The number of nodes."""
        return self._graph.num_nodes

    @property
    def num_edges(self) -> int:
        """The number of edges."""
        return self._graph.num_edges

    def total_weight(self) -> float:
        """Return the scaled total edge weight."""
        return self._graph.total_weight() * self._factor

    def copy(self) -> Graph:
        """Materialize the scaled view as a standalone mutable graph."""
        scaled = Graph()
        for node in self._graph.nodes():
            scaled.add_node(node)
        factor = self._factor
        for u, v, w in self._graph.edges():
            scaled.add_edge(u, v, w * factor)
        return scaled

    def __contains__(self, node: Node) -> bool:
        return self._graph.has_node(node)

    def __repr__(self) -> str:
        return (
            f"ScaledGraphView({self._graph!r}, factor={self._factor:g})"
        )


class ShortestPathCache:
    """Memoized single-source Dijkstra trees over one fixed graph.

    The cache assumes the bound graph is **immutable for its lifetime**:
    callers that derive graphs from mutable state (residual capacities,
    congestion prices) must key the cache on a version counter via
    :class:`VersionedCacheRegistry` and build a fresh cache per version.

    The mapping protocol (``cache[origin]``, ``origin in cache``) makes the
    cache a drop-in replacement for the ``Dict[Node, ShortestPathTree]``
    that :func:`~repro.graph.steiner.kmb_steiner_tree_cached` consumes —
    with trees computed on demand and remembered.
    """

    __slots__ = ("_graph", "_trees", "_csr", "_epoch", "_flat", "hits", "misses")

    def __init__(self, graph: Graph, epoch: Optional[int] = None) -> None:
        self._graph = graph
        self._trees: Dict[Node, ShortestPathTree] = {}
        # Compiled CSR view of the (immutable-for-our-lifetime) graph,
        # built lazily on the first miss under the "csr" backend.  Because
        # the cache is epoch-keyed via VersionedCacheRegistry, this is
        # exactly "compile once per epoch".
        self._csr: Optional[CSRGraph] = None
        # Stamped onto the compiled view so consumers can audit which
        # network version a flat workspace was derived at.
        self._epoch = epoch
        # Index-space rows derived from cached trees (see flat_tree).
        self._flat: Dict[Node, Tuple[List[float], List[int]]] = {}
        #: Served-from-memory lookup count (observability / benchmarks).
        self.hits = 0
        #: Computed-on-demand lookup count.
        self.misses = 0

    @property
    def graph(self) -> Graph:
        """The graph the cached trees were computed on."""
        return self._graph

    @property
    def epoch(self) -> Optional[int]:
        """The version tag the cache (and its CSR view) was built at."""
        return self._epoch

    def _compiled(self) -> CSRGraph:
        """Return the CSR view of the bound graph, compiling it once."""
        csr = self._csr
        if csr is None:
            csr = self._csr = compile_csr(self._graph, epoch=self._epoch)
        return csr

    def compiled(self) -> CSRGraph:
        """The cache's single epoch-stamped CSR compilation of its graph.

        This is the one-compilation-per-request invariant's anchor: every
        flat consumer of the topology (the CSR-native ``Appro_Multi`` core,
        batched metric closures, warm sweeps) must share this view rather
        than calling :func:`~repro.graph.csr.compile_csr` itself.
        """
        return self._compiled()

    def flat_tree(self, origin: Node) -> Tuple[List[float], List[int]]:
        """Index-space view of :meth:`tree`: ``(distance row, parent row)``.

        Both rows are indexed by the compiled view's node indices:
        ``distance[i]`` is the unit-cost distance to node ``i`` (``inf``
        when unreachable) and ``parent[i]`` the predecessor index (``-1``
        for the origin and unreachable nodes).  Rows are memoized per
        origin, derived from the same cached tree :meth:`tree` serves — so
        flat and dict consumers can never disagree.
        """
        cached = self._flat.get(origin)
        if cached is not None:
            return cached
        csr = self._compiled()
        index = csr.index
        size = len(csr.nodes)
        tree = self.tree(origin)
        dist_row: List[float] = [_FLAT_INF] * size
        parent_row: List[int] = [-1] * size
        for node, value in tree.distance.items():
            dist_row[index[node]] = value
        for node, predecessor in tree.parent.items():
            if predecessor is not None:
                parent_row[index[node]] = index[predecessor]
        rows = (dist_row, parent_row)
        self._flat[origin] = rows
        return rows

    def tree(self, origin: Node) -> ShortestPathTree:
        """Return the Dijkstra tree rooted at ``origin`` (cached).

        A miss runs the engine selected by
        :func:`~repro.graph.backend.graph_backend`; both engines are
        bit-identical, so the backend never changes what this returns.
        """
        cached = self._trees.get(origin)
        if cached is not None:
            self.hits += 1
            _obs_inc("spcache.hits")
            return cached
        self.misses += 1
        _obs_inc("spcache.misses")
        with _obs_span("dijkstra"):
            if graph_backend() == "csr":
                tree = dijkstra_csr(self._compiled(), origin)
            else:
                tree = dijkstra(self._graph, origin)
        self._trees[origin] = tree
        return tree

    def warm(self, origins: Iterable[Node]) -> None:
        """Pre-fill the cache with full trees for every origin in one sweep.

        Under the "csr" backend the misses run as one
        :func:`~repro.graph.csr.dijkstra_many` batch over the shared
        compiled view; under "dict" this is just a :meth:`tree` loop.
        Either way the cached trees are the ones :meth:`tree` would have
        computed lazily — warming only moves the work, it never changes a
        result.  Already-cached origins are skipped without touching the
        hit/miss counters (warming is not a lookup).
        """
        missing = [o for o in dict.fromkeys(origins) if o not in self._trees]
        if not missing:
            return
        if graph_backend() == "csr":
            with _obs_span("dijkstra"):
                self._trees.update(dijkstra_many(self._compiled(), missing))
            self.misses += len(missing)
            _obs_inc("spcache.misses", len(missing))
        else:
            for origin in missing:
                self.tree(origin)

    def scaled_tree(
        self, origin: Node, factor: float
    ) -> Union[ShortestPathTree, ScaledTree]:
        """Return the tree at ``origin`` with distances scaled by ``factor``.

        A factor of exactly 1.0 returns the unscaled tree itself.
        """
        tree = self.tree(origin)
        if factor == 1.0:
            return tree
        return ScaledTree(tree, factor)

    def scaled_view(self, factor: float) -> Union[Graph, ScaledGraphView]:
        """Return the bound graph with weights scaled by ``factor``."""
        if factor == 1.0:
            return self._graph
        return ScaledGraphView(self._graph, factor)

    def clear(self) -> None:
        """Drop every cached tree (keeps the graph binding)."""
        self._trees.clear()
        self._flat.clear()

    # -- mapping protocol (kmb_steiner_tree_cached compatibility) -------
    def __getitem__(self, origin: Node) -> ShortestPathTree:
        return self.tree(origin)

    def __contains__(self, origin: object) -> bool:
        return self._graph.has_node(origin)

    def __len__(self) -> int:
        return len(self._trees)

    def __repr__(self) -> str:
        return (
            f"ShortestPathCache(origins={len(self._trees)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class VersionedCacheRegistry:
    """LRU registry of :class:`ShortestPathCache` keyed by ``(key, version)``.

    ``SDNetwork`` owns one registry and uses its *epoch* counter as the
    version: any allocation, release, restore, or reset bumps the epoch, so
    caches built on derived graphs (residual subgraphs, congestion-priced
    graphs) can never be served stale.  A small LRU bound keeps memory flat
    when bandwidths vary per request.
    """

    __slots__ = ("_entries", "_maxsize", "evictions", "invalidations")

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._entries: "OrderedDict[Tuple[Hashable, int], ShortestPathCache]"
        self._entries = OrderedDict()
        self._maxsize = maxsize
        #: Number of entries dropped by the LRU bound (observability).
        self.evictions = 0
        #: Number of entries dropped because their epoch went stale.
        self.invalidations = 0

    def get(
        self,
        key: Hashable,
        version: int,
        builder: Callable[[], Graph],
    ) -> ShortestPathCache:
        """Return the cache for ``(key, version)``, building it on a miss.

        ``builder`` is only invoked on a miss; stale versions of the same
        key are dropped eagerly (they can never be valid again).
        """
        entry_key = (key, version)
        cache = self._entries.get(entry_key)
        if cache is not None:
            self._entries.move_to_end(entry_key)
            _obs_inc("spregistry.hits")
            return cache
        _obs_inc("spregistry.misses")
        # Any entry for this key at another version is unreachable forever.
        stale = [k for k in self._entries if k[0] == key and k[1] != version]
        if stale:
            self.invalidations += len(stale)
            _obs_inc("spregistry.invalidations", len(stale))
        for k in stale:
            del self._entries[k]
        with _obs_span("cache_build"):
            cache = ShortestPathCache(builder(), epoch=version)
        self._entries[entry_key] = cache
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            _obs_inc("spregistry.evictions")
        return cache

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"VersionedCacheRegistry(entries={len(self._entries)}, "
            f"maxsize={self._maxsize})"
        )
