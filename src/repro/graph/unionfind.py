"""Disjoint-set (union–find) with path compression and union by rank.

Used by Kruskal's MST and by connectivity pre-checks in the capacitated
solvers, where the question "do the source, a server, and all destinations sit
in one component of the pruned network?" is asked once per request.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set

Item = Hashable


class DisjointSet:
    """A disjoint-set forest over arbitrary hashable items.

    Items are added lazily: ``find`` on an unseen item creates a fresh
    singleton set, which matches how Kruskal streams edges.

    >>> ds = DisjointSet()
    >>> ds.union("a", "b")
    True
    >>> ds.connected("a", "b")
    True
    >>> ds.union("a", "b")
    False
    """

    __slots__ = ("_parent", "_rank", "_count")

    def __init__(self, items: Iterable[Item] = ()) -> None:
        self._parent: Dict[Item, Item] = {}
        self._rank: Dict[Item, int] = {}
        self._count = 0
        for item in items:
            self.add(item)

    def add(self, item: Item) -> None:
        """Register ``item`` as its own singleton set (no-op if present)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._count += 1

    def find(self, item: Item) -> Item:
        """Return the canonical representative of the set containing ``item``."""
        self.add(item)
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def union(self, a: Item, b: Item) -> bool:
        """Merge the sets of ``a`` and ``b``; return ``True`` if they differed."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        self._count -= 1
        return True

    def connected(self, a: Item, b: Item) -> bool:
        """Return whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    @property
    def num_sets(self) -> int:
        """The current number of disjoint sets."""
        return self._count

    def members(self, item: Item) -> Set[Item]:
        """Return the full membership of the set containing ``item``.

        ``O(n)``; intended for assertions and tests, not hot paths.
        """
        root = self.find(item)
        return {other for other in self._parent if self.find(other) == root}

    def __iter__(self) -> Iterator[Item]:
        return iter(self._parent)

    def __len__(self) -> int:
        return len(self._parent)
