"""Shortest-path algorithms on the :class:`~repro.graph.graph.Graph` type.

Everything in the paper's algorithm suite rests on shortest paths: the
auxiliary-graph edges of ``Appro_Multi`` encode shortest source→server paths,
the KMB Steiner heuristic runs on the metric closure of the terminal set, and
the ``SP`` baseline builds single-source shortest-path trees.  Weights are
non-negative by construction (see :meth:`Graph.add_edge`), so Dijkstra with an
addressable heap is used throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.exceptions import DisconnectedGraphError, NodeNotFoundError
from repro.graph.graph import Graph, Node
from repro.graph.heap import IndexedHeap

INFINITY = float("inf")


@dataclass(frozen=True)
class ShortestPathTree:
    """The result of a single-source Dijkstra run.

    Attributes:
        source: the source node.
        distance: map from each reachable node to its distance from ``source``.
        parent: map from each reachable node to its predecessor on a shortest
            path (``source`` maps to ``None``).
    """

    source: Node
    distance: Dict[Node, float]
    parent: Dict[Node, Optional[Node]]

    def reaches(self, node: Node) -> bool:
        """Return whether ``node`` is reachable from the source."""
        return node in self.distance

    def path_to(self, target: Node) -> List[Node]:
        """Return the node path from the source to ``target``.

        Raises:
            DisconnectedGraphError: if ``target`` is unreachable.
        """
        if target not in self.parent:
            raise DisconnectedGraphError(
                f"{target!r} is not reachable from {self.source!r}"
            )
        path: List[Node] = [target]
        while True:
            predecessor = self.parent[path[-1]]
            if predecessor is None:
                break
            path.append(predecessor)
        path.reverse()
        return path


def dijkstra(
    graph: Graph,
    source: Node,
    targets: Optional[Set[Node]] = None,
) -> ShortestPathTree:
    """Run Dijkstra from ``source`` and return the shortest-path tree.

    Args:
        graph: the graph to search.
        source: the start node.
        targets: optional early-exit set; the search stops once every target
            has been settled.  ``None`` settles the whole component.

    Returns:
        A :class:`ShortestPathTree` covering every settled node.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)

    distance: Dict[Node, float] = {}
    parent: Dict[Node, Optional[Node]] = {source: None}
    pending = set(targets) if targets is not None else None
    heap: IndexedHeap = IndexedHeap()
    heap.push(source, 0.0)

    while heap:
        node, dist = heap.pop()
        distance[node] = dist
        if pending is not None:
            pending.discard(node)
            if not pending:
                break
        for neighbor, weight in graph.neighbor_items(node):
            if neighbor in distance:
                continue
            candidate = dist + weight
            if heap.push_or_decrease(neighbor, candidate):
                parent[neighbor] = node
    return ShortestPathTree(source=source, distance=distance, parent=parent)


def shortest_path(graph: Graph, source: Node, target: Node) -> List[Node]:
    """Return one shortest node path from ``source`` to ``target``.

    Raises:
        DisconnectedGraphError: if no path exists.
    """
    tree = dijkstra(graph, source, targets={target})
    return tree.path_to(target)


def shortest_path_length(graph: Graph, source: Node, target: Node) -> float:
    """Return the shortest-path distance from ``source`` to ``target``."""
    tree = dijkstra(graph, source, targets={target})
    if not tree.reaches(target):
        raise DisconnectedGraphError(
            f"{target!r} is not reachable from {source!r}"
        )
    return tree.distance[target]


def single_source_distances(graph: Graph, source: Node) -> Dict[Node, float]:
    """Return distances from ``source`` to every reachable node."""
    return dijkstra(graph, source).distance


def all_pairs_shortest_paths(
    graph: Graph, sources: Optional[Iterable[Node]] = None
) -> Dict[Node, ShortestPathTree]:
    """Run Dijkstra from each node in ``sources`` (default: every node).

    Returns a map ``source -> ShortestPathTree``.  This is the workhorse of
    the metric-closure construction used by the KMB Steiner heuristic; for a
    request touching ``t`` terminals only ``t`` Dijkstra runs are needed, so
    callers should pass ``sources`` explicitly.
    """
    chosen = list(sources) if sources is not None else list(graph.nodes())
    return {source: dijkstra(graph, source) for source in chosen}


def shortest_path_tree_edges(tree: ShortestPathTree) -> List[tuple]:
    """Return the parent edges ``(parent, child)`` of a shortest-path tree."""
    return [
        (parent, child)
        for child, parent in tree.parent.items()
        if parent is not None
    ]


def eccentricity(graph: Graph, node: Node) -> float:
    """Return the greatest shortest-path distance from ``node``.

    Raises:
        DisconnectedGraphError: if the graph is disconnected (some node is
            unreachable from ``node``).
    """
    distances = single_source_distances(graph, node)
    if len(distances) != graph.num_nodes:
        raise DisconnectedGraphError(
            f"graph is disconnected: {graph.num_nodes - len(distances)} nodes "
            f"unreachable from {node!r}"
        )
    return max(distances.values())


def diameter(graph: Graph) -> float:
    """Return the weighted diameter of a connected graph (0 for empty/1-node)."""
    nodes = list(graph.nodes())
    if len(nodes) <= 1:
        return 0.0
    return max(eccentricity(graph, node) for node in nodes)
