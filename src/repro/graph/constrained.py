"""Bi-criteria (cost, delay) shortest paths.

Substrate for the delay-constrained extension (the paper's related work
cites Kuo et al., INFOCOM 2016, on NFV routing with end-to-end delay
bounds).  Two solvers over a graph whose edges carry a *cost* (the regular
edge weight) and a separate *delay*:

- :func:`larac_path` — the classic LARAC algorithm (Lagrangian Relaxation
  based Aggregated Cost; Juttner et al., INFOCOM 2001).  Polynomial, returns
  a feasible path whose cost is at most the optimum of the relaxed problem;
  in practice within a few percent of optimal.
- :func:`exact_constrained_path` — pseudo-polynomial dynamic program over
  ``(node, quantized delay)`` labels.  Exponential-free but resolution
  bound; used as the test oracle and for small instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graph.graph import Graph, Node, edge_key
from repro.graph.heap import IndexedHeap
from repro.graph.shortest_paths import dijkstra

DelayMap = Dict[Tuple[Node, Node], float]


class DelayBoundInfeasibleError(GraphError):
    """No path meets the delay bound (even the min-delay path exceeds it)."""


def path_cost(graph: Graph, path: List[Node]) -> float:
    """Total edge cost along a node path."""
    return sum(graph.weight(u, v) for u, v in zip(path, path[1:]))


def path_delay(delays: DelayMap, path: List[Node]) -> float:
    """Total delay along a node path."""
    return sum(delays[edge_key(u, v)] for u, v in zip(path, path[1:]))


def _weighted_shortest(
    graph: Graph,
    delays: DelayMap,
    source: Node,
    target: Node,
    lam: float,
) -> List[Node]:
    """Shortest path under the aggregated weight ``cost + λ · delay``."""
    aggregated = Graph()
    for node in graph.nodes():
        aggregated.add_node(node)
    for u, v, cost in graph.edges():
        aggregated.add_edge(u, v, cost + lam * delays[edge_key(u, v)])
    # λ-aggregated weights change every LARAC iteration: a transient
    # per-query graph no versioned cache could ever get a hit on.
    # repro-lint: disable=RL001
    tree = dijkstra(aggregated, source, targets={target})
    return tree.path_to(target)


def larac_path(
    graph: Graph,
    delays: DelayMap,
    source: Node,
    target: Node,
    max_delay: float,
    max_iterations: int = 32,
) -> List[Node]:
    """Cheapest path from ``source`` to ``target`` with delay ≤ ``max_delay``.

    Implements LARAC: binary search on the Lagrange multiplier λ of the
    delay constraint, alternating between the cheapest-but-late and
    feasible-but-expensive paths until the aggregated costs coincide.

    Raises:
        DelayBoundInfeasibleError: if even the minimum-delay path violates
            the bound.
        DisconnectedGraphError: if target is unreachable.
    """
    cheap = _weighted_shortest(graph, delays, source, target, 0.0)
    if path_delay(delays, cheap) <= max_delay + 1e-12:
        return cheap

    # min-delay path: feasibility check
    delay_graph = Graph()
    for node in graph.nodes():
        delay_graph.add_node(node)
    for u, v, _ in graph.edges():
        delay_graph.add_edge(u, v, delays[edge_key(u, v)])
    # Same: one-shot feasibility probe on a throwaway delay-weighted graph.
    # repro-lint: disable=RL001
    fastest = dijkstra(delay_graph, source, targets={target}).path_to(target)
    if path_delay(delays, fastest) > max_delay + 1e-12:
        raise DelayBoundInfeasibleError(
            f"minimum possible delay "
            f"{path_delay(delays, fastest):.3f} exceeds bound {max_delay:.3f}"
        )

    feasible = fastest
    for _ in range(max_iterations):
        c_cheap, d_cheap = path_cost(graph, cheap), path_delay(delays, cheap)
        c_feas, d_feas = path_cost(graph, feasible), path_delay(delays, feasible)
        denominator = d_cheap - d_feas
        if denominator <= 1e-12:
            break
        lam = (c_feas - c_cheap) / denominator
        candidate = _weighted_shortest(graph, delays, source, target, lam)
        c_cand = path_cost(graph, candidate)
        d_cand = path_delay(delays, candidate)
        aggregated_candidate = c_cand + lam * d_cand
        aggregated_cheap = c_cheap + lam * d_cheap
        if abs(aggregated_candidate - aggregated_cheap) < 1e-12:
            break
        if d_cand <= max_delay + 1e-12:
            feasible = candidate
        else:
            cheap = candidate
    return feasible


def exact_constrained_path(
    graph: Graph,
    delays: DelayMap,
    source: Node,
    target: Node,
    max_delay: float,
    resolution: int = 200,
) -> List[Node]:
    """Optimal delay-bounded path via a quantized-delay dynamic program.

    Delays are quantized onto ``resolution`` buckets of ``max_delay``
    (rounded *up*, so the returned path always satisfies the true bound;
    quantization can only forbid borderline paths, never admit violating
    ones).  Complexity ``O(resolution · (|E| + |V| log |V|))``-ish via a
    label-setting search over ``(node, used-delay-bucket)`` states.

    Raises:
        DelayBoundInfeasibleError: if no path fits the bound at this
            resolution.
    """
    if resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    if max_delay <= 0:
        raise DelayBoundInfeasibleError("non-positive delay bound")
    unit = max_delay / resolution

    def buckets(u: Node, v: Node) -> int:
        raw = delays[edge_key(u, v)] / unit
        return int(raw) if abs(raw - round(raw)) < 1e-9 else int(raw) + 1

    # Dijkstra over (node, delay_bucket) states, minimizing cost.
    start = (source, 0)
    best_cost: Dict[Tuple[Node, int], float] = {}
    parent: Dict[Tuple[Node, int], Optional[Tuple[Node, int]]] = {start: None}
    heap: IndexedHeap = IndexedHeap()
    heap.push(start, 0.0)
    goal: Optional[Tuple[Node, int]] = None
    while heap:
        state, cost = heap.pop()
        best_cost[state] = cost
        node, used = state
        if node == target:
            goal = state
            break
        for neighbor, edge_cost in graph.neighbor_items(node):
            need = used + buckets(node, neighbor)
            if need > resolution:
                continue
            next_state = (neighbor, need)
            if next_state in best_cost:
                continue
            if heap.push_or_decrease(next_state, cost + edge_cost):
                parent[next_state] = state
    if goal is None:
        raise DelayBoundInfeasibleError(
            f"no path within delay {max_delay:.3f} at resolution {resolution}"
        )
    path: List[Node] = []
    cursor: Optional[Tuple[Node, int]] = goal
    while cursor is not None:
        path.append(cursor[0])
        cursor = parent[cursor]
    path.reverse()
    return path


def uniform_delays(graph: Graph, delay: float = 1.0) -> DelayMap:
    """A delay map assigning every edge the same delay (hop count model)."""
    return {edge_key(u, v): delay for u, v, _ in graph.edges()}


def proportional_delays(graph: Graph, factor: float = 1.0) -> DelayMap:
    """A delay map proportional to edge weight (propagation-distance model)."""
    return {edge_key(u, v): factor * w for u, v, w in graph.edges()}
