"""The Kou–Markowsky–Berman (KMB) Steiner-tree 2-approximation.

Both of the paper's algorithms call "the approximation algorithm due to Kou et
al. [12]" as a black box: ``Appro_Multi`` runs it on each auxiliary graph, and
``Online_CP`` runs it per candidate server with terminals ``{s_k, v} ∪ D_k``.
The algorithm (Kou, Markowsky & Berman, *Acta Informatica* 1981) achieves a
``2(1 − 1/t)``-approximation for ``t`` terminals:

1. build the metric closure of the terminal set (complete graph whose edge
   weights are shortest-path distances in ``G``);
2. compute an MST of the metric closure;
3. expand every MST edge into its underlying shortest path, yielding a
   subgraph ``H`` of ``G``;
4. compute an MST of ``H``;
5. repeatedly delete non-terminal leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from typing import Optional

from repro.exceptions import DisconnectedGraphError, NodeNotFoundError
from repro.graph.backend import graph_backend
from repro.graph.csr import CSRGraph, compile_csr, dijkstra_many
from repro.graph.graph import Graph, Node
from repro.graph.mst import kruskal_mst, prim_mst
from repro.graph.shortest_paths import ShortestPathTree, dijkstra
from repro.graph.tree import prune_leaves
from repro.obs import inc as _obs_inc, span as _obs_span


@dataclass(frozen=True)
class MetricClosure:
    """Shortest-path metric over a terminal set.

    Attributes:
        closure: complete graph on the terminals, weighted by shortest-path
            distance in the host graph.
        trees: one :class:`ShortestPathTree` per terminal, used to expand
            closure edges back into real paths.
    """

    closure: Graph
    trees: Dict[Node, ShortestPathTree] = field(repr=False)

    def expand_edge(self, u: Node, v: Node) -> List[Node]:
        """Return the host-graph path realizing closure edge ``(u, v)``."""
        return self.trees[u].path_to(v)


def metric_closure(
    graph: Graph,
    terminals: Sequence[Node],
    compiled: Optional[CSRGraph] = None,
) -> MetricClosure:
    """Build the shortest-path metric closure over ``terminals``.

    Args:
        graph: the host graph.
        terminals: terminal nodes; duplicates collapse, order is kept.
        compiled: an already-compiled CSR view of ``graph``.  Callers that
            hold one (e.g. via ``ShortestPathCache.compiled()``) pass it so
            the closure sweep reuses the compilation instead of paying a
            fresh ``compile_csr`` — the one-compilation-per-request rule.
            Ignored under the dict backend.

    Raises:
        NodeNotFoundError: if a terminal is not in the graph.
        DisconnectedGraphError: if two terminals are mutually unreachable.
    """
    terminal_list = list(dict.fromkeys(terminals))  # dedupe, keep order
    for terminal in terminal_list:
        if not graph.has_node(terminal):
            raise NodeNotFoundError(terminal)

    terminal_set = set(terminal_list)
    trees: Dict[Node, ShortestPathTree]
    if graph_backend() == "csr":
        # Batched sweep over one compiled view: each source discards itself
        # the moment it pops, so passing the full terminal set is exactly
        # the per-source ``terminal_set - {terminal}`` early exit.  Uncached
        # one-shot entry point (callers with a cache pass ``compiled=``),
        # same justification as the dict branch below.
        csr = compiled if compiled is not None else compile_csr(graph)
        trees = dijkstra_many(  # repro-lint: disable=RL001
            csr, terminal_list, targets=terminal_set
        )
    else:
        trees = {}
        for terminal in terminal_list:
            # Uncached KMB entry point for arbitrary one-shot graphs (the
            # hot path uses kmb_steiner_tree_cached + ShortestPathCache
            # instead); the targets= early exit computes partial trees a
            # shared cache must never memoize.  # repro-lint: disable=RL001
            trees[terminal] = dijkstra(
                graph, terminal, targets=terminal_set - {terminal}
            )
    closure = Graph()
    for terminal in terminal_list:
        closure.add_node(terminal)
        tree = trees[terminal]
        for other in terminal_list:
            if other == terminal:
                continue
            if not tree.reaches(other):
                raise DisconnectedGraphError(
                    f"terminals {terminal!r} and {other!r} are disconnected"
                )
            closure.add_edge(terminal, other, tree.distance[other])
    return MetricClosure(closure=closure, trees=trees)


def kmb_steiner_tree(
    graph: Graph,
    terminals: Sequence[Node],
    compiled: Optional[CSRGraph] = None,
) -> Graph:
    """Return a KMB 2-approximate Steiner tree spanning ``terminals``.

    The result is a subgraph of ``graph`` that is a tree, contains every
    terminal, and whose every leaf is a terminal.  A single terminal yields a
    one-node tree.  ``compiled`` threads an existing CSR view of ``graph``
    into the metric-closure sweep (see :func:`metric_closure`).

    Raises:
        DisconnectedGraphError: if the terminals do not share a component.
        ValueError: if ``terminals`` is empty.
    """
    terminal_list = list(dict.fromkeys(terminals))
    if not terminal_list:
        raise ValueError("kmb_steiner_tree needs at least one terminal")
    if len(terminal_list) == 1:
        only = terminal_list[0]
        if not graph.has_node(only):
            raise NodeNotFoundError(only)
        tree = Graph()
        tree.add_node(only)
        return tree

    _obs_inc("kmb.calls")
    with _obs_span("kmb"):
        # Steps 1-2: MST of the metric closure.
        closure = metric_closure(graph, terminal_list, compiled=compiled)
        closure_mst = prim_mst(closure.closure)

        # Step 3: expand closure MST edges into shortest paths.
        expanded = Graph()
        for u, v, _ in closure_mst.edges():
            path = closure.expand_edge(u, v)
            for a, b in zip(path, path[1:]):
                expanded.add_edge(a, b, graph.weight(a, b))

        # Step 4: MST of the expanded subgraph (connected by construction).
        expanded_mst = kruskal_mst(expanded)

        # Step 5: drop non-terminal leaves.
        with _obs_span("prune"):
            return prune_leaves(expanded_mst, keep=terminal_list)


def kmb_steiner_tree_cached(
    graph: Graph,
    trees: Dict[Node, ShortestPathTree],
    terminals: Sequence[Node],
) -> Graph:
    """KMB using pre-run Dijkstra trees instead of fresh searches.

    ``Online_CP`` evaluates one Steiner tree per candidate server, but the
    candidate terminal sets overlap heavily (``{s_k, v} ∪ D_k`` varies only
    in ``v``).  Callers run Dijkstra once per distinct terminal and pass the
    resulting trees here; the closure is then assembled from lookups.  The
    output is identical to :func:`kmb_steiner_tree` up to shortest-path tie
    breaking.

    Args:
        graph: the host graph (for edge weights during expansion).
        trees: map from each terminal to its full Dijkstra tree on ``graph``.
        terminals: the terminals to span.

    Raises:
        DisconnectedGraphError: if two terminals are mutually unreachable.
        KeyError: if a terminal has no cached Dijkstra tree.
    """
    terminal_list = list(dict.fromkeys(terminals))
    if not terminal_list:
        raise ValueError("kmb_steiner_tree_cached needs at least one terminal")
    if len(terminal_list) == 1:
        only = terminal_list[0]
        tree = Graph()
        tree.add_node(only)
        return tree

    _obs_inc("kmb.calls")
    with _obs_span("kmb"):
        closure = Graph()
        for terminal in terminal_list:
            closure.add_node(terminal)
        for i, u in enumerate(terminal_list):
            distances = trees[u].distance
            for v in terminal_list[i + 1 :]:
                if v not in distances:
                    raise DisconnectedGraphError(
                        f"terminals {u!r} and {v!r} are disconnected"
                    )
                closure.add_edge(u, v, distances[v])
        closure_mst = prim_mst(closure)

        expanded = Graph()
        for u, v, _ in closure_mst.edges():
            anchor = u if u in trees else v
            other = v if anchor == u else u
            path = trees[anchor].path_to(other)
            for a, b in zip(path, path[1:]):
                expanded.add_edge(a, b, graph.weight(a, b))
        expanded_mst = kruskal_mst(expanded)
        with _obs_span("prune"):
            return prune_leaves(expanded_mst, keep=terminal_list)


def steiner_tree_cost(tree: Graph) -> float:
    """Return the total edge weight of a Steiner tree."""
    return tree.total_weight()


def validate_steiner_tree(
    graph: Graph, tree: Graph, terminals: Sequence[Node]
) -> None:
    """Assert the structural invariants of a Steiner tree; raise on violation.

    Checks that ``tree`` (a) spans every terminal, (b) is a tree, (c) only
    uses edges of ``graph`` with matching weights, and (d) has no
    non-terminal leaves.  Used by the test suite and by debug assertions.
    """
    from repro.graph.tree import is_tree  # local import to avoid cycle

    terminal_set = set(terminals)
    missing = [t for t in terminal_set if not tree.has_node(t)]
    if missing:
        raise AssertionError(f"tree misses terminals {missing!r}")
    if not is_tree(tree):
        raise AssertionError("result is not a tree")
    for u, v, w in tree.edges():
        if not graph.has_edge(u, v):
            raise AssertionError(f"tree edge ({u!r}, {v!r}) not in host graph")
        if abs(graph.weight(u, v) - w) > 1e-9:
            raise AssertionError(
                f"tree edge ({u!r}, {v!r}) weight {w} != host "
                f"{graph.weight(u, v)}"
            )
    if tree.num_nodes > 1:
        for node in tree.nodes():
            if tree.degree(node) == 1 and node not in terminal_set:
                raise AssertionError(f"non-terminal leaf {node!r}")
