"""Exact minimum Steiner trees via the Dreyfus–Wagner dynamic program.

The paper proves a ``2K`` approximation ratio for ``Appro_Multi`` against the
*optimal* pseudo-multicast tree.  To validate that bound empirically (and to
measure the empirical ratio of the KMB heuristic itself) the test-suite and
the ablation benchmarks need true optima on small instances.  The
Dreyfus–Wagner algorithm computes them in ``O(3^t · n + 2^t · Dijkstra)`` time
for ``t`` terminals, which is comfortable for the instance sizes used in
tests (``t ≤ 7``, ``n ≤ 40``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import DisconnectedGraphError, NodeNotFoundError
from repro.graph.graph import Graph, Node
from repro.graph.heap import IndexedHeap

INFINITY = float("inf")

# Backpointer variants for tree reconstruction:
#   ("merge", sub_mask)   dp[mask][v] = dp[sub][v] + dp[mask ^ sub][v]
#   ("edge", u)           dp[mask][v] = dp[mask][u] + w(u, v)
#   ("leaf",)             base case: singleton terminal at v itself
_Back = Tuple


def dreyfus_wagner(
    graph: Graph, terminals: Sequence[Node]
) -> Tuple[float, Graph]:
    """Return ``(cost, tree)`` of a minimum Steiner tree over ``terminals``.

    Raises:
        ValueError: if ``terminals`` is empty or too large (> 16) to be
            solved exactly in reasonable time.
        DisconnectedGraphError: if the terminals are not mutually reachable.
    """
    terminal_list = list(dict.fromkeys(terminals))
    if not terminal_list:
        raise ValueError("dreyfus_wagner needs at least one terminal")
    if len(terminal_list) > 16:
        raise ValueError(
            f"{len(terminal_list)} terminals is too many for exact solving"
        )
    for terminal in terminal_list:
        if not graph.has_node(terminal):
            raise NodeNotFoundError(terminal)

    if len(terminal_list) == 1:
        tree = Graph()
        tree.add_node(terminal_list[0])
        return 0.0, tree

    nodes = list(graph.nodes())
    t = len(terminal_list)
    full_mask = (1 << t) - 1

    # dp[mask] maps node -> best cost of a tree spanning (terminals in mask)
    # plus that node; back[mask] maps node -> backpointer.
    dp: List[Dict[Node, float]] = [dict() for _ in range(full_mask + 1)]
    back: List[Dict[Node, _Back]] = [dict() for _ in range(full_mask + 1)]

    for i, terminal in enumerate(terminal_list):
        mask = 1 << i
        dp[mask][terminal] = 0.0
        back[mask][terminal] = ("leaf",)
        _dijkstra_relax(graph, dp[mask], back[mask])

    for mask in range(1, full_mask + 1):
        if mask & (mask - 1) == 0:  # singletons already done
            continue
        table = dp[mask]
        pointers = back[mask]
        # merge step: combine two complementary sub-masks at a common node
        sub = (mask - 1) & mask
        while sub:
            complement = mask ^ sub
            if sub < complement:  # each split considered once
                small, large = dp[sub], dp[complement]
                for node, cost_small in small.items():
                    cost_large = large.get(node)
                    if cost_large is None:
                        continue
                    candidate = cost_small + cost_large
                    if candidate < table.get(node, INFINITY):
                        table[node] = candidate
                        pointers[node] = ("merge", sub)
            sub = (sub - 1) & mask
        # grow step: propagate through the graph with Dijkstra
        _dijkstra_relax(graph, table, pointers)

    best_cost = INFINITY
    best_node: Optional[Node] = None
    for node, cost in dp[full_mask].items():
        if cost < best_cost:
            best_cost = cost
            best_node = node
    if best_node is None or best_cost == INFINITY:
        raise DisconnectedGraphError("terminals are not mutually reachable")

    tree = Graph()
    tree.add_node(best_node)
    _reconstruct(graph, dp, back, full_mask, best_node, tree)
    return best_cost, tree


def steiner_cost_exact(graph: Graph, terminals: Sequence[Node]) -> float:
    """Return just the optimal Steiner tree cost (convenience wrapper)."""
    cost, _ = dreyfus_wagner(graph, terminals)
    return cost


def _dijkstra_relax(
    graph: Graph, table: Dict[Node, float], pointers: Dict[Node, _Back]
) -> None:
    """Relax ``table`` costs along graph edges (multi-source Dijkstra).

    On entry ``table`` holds tentative costs at some nodes; on exit every node
    reachable from them holds its cheapest cost of the form
    ``table[u] + dist(u, v)``, with ``pointers`` recording the edge steps.
    """
    heap: IndexedHeap = IndexedHeap()
    for node, cost in table.items():
        heap.push(node, cost)
    settled = set()
    while heap:
        node, cost = heap.pop()
        settled.add(node)
        for neighbor, weight in graph.neighbor_items(node):
            if neighbor in settled:
                continue
            candidate = cost + weight
            if candidate < table.get(neighbor, INFINITY):
                table[neighbor] = candidate
                pointers[neighbor] = ("edge", node)
                heap.push_or_decrease(neighbor, candidate)


def _reconstruct(
    graph: Graph,
    dp: List[Dict[Node, float]],
    back: List[Dict[Node, _Back]],
    mask: int,
    node: Node,
    tree: Graph,
) -> None:
    """Walk backpointers, adding the realized edges to ``tree``."""
    pointer = back[mask].get(node)
    if pointer is None:
        raise AssertionError(f"missing backpointer for mask={mask} node={node!r}")
    kind = pointer[0]
    if kind == "leaf":
        tree.add_node(node)
        return
    if kind == "edge":
        previous = pointer[1]
        tree.add_edge(previous, node, graph.weight(previous, node))
        _reconstruct(graph, dp, back, mask, previous, tree)
        return
    if kind == "merge":
        sub = pointer[1]
        _reconstruct(graph, dp, back, sub, node, tree)
        _reconstruct(graph, dp, back, mask ^ sub, node, tree)
        return
    raise AssertionError(f"unknown backpointer {pointer!r}")
