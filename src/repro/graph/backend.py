"""Process-wide selection of the shortest-path engine backend.

Two engines produce :class:`~repro.graph.shortest_paths.ShortestPathTree`
results:

- ``"dict"`` — the original hash-based Dijkstra over the dict-of-dict
  adjacency (:func:`repro.graph.shortest_paths.dijkstra`);
- ``"csr"`` — the flat integer-indexed kernel over a compiled CSR view
  (:mod:`repro.graph.csr`), the default.

Both are **bit-identical**: the CSR kernel replicates the ``IndexedHeap``
comparison order exactly, so every distance, parent pointer, and even the
dict insertion order of the decoded trees match the dict engine (the
differential harness and ``tests/graph/test_csr.py`` hold this).  The
selector therefore only changes speed, never results.

The selector also picks the *solver core*: under ``"csr"`` the
``Appro_Multi`` / ``Online_CP_K`` combination sweep runs on the CSR-native
flat evaluator (:class:`repro.core.fasteval.CSRCombinationEvaluator` over an
epoch-stamped compiled view and an :class:`repro.core.auxiliary.AuxiliaryCSR`
virtual-source row), while ``"dict"`` keeps the dict-of-dict auxiliary graph
path.  The two cores are held bit-identical — trees, costs, and dict
insertion orders — by ``tests/core/test_differential.py`` and
``tests/core/test_auxiliary_csr.py``.

Resolution order:

1. an explicit :func:`set_graph_backend` call (the ``--graph-backend`` CLI
   flag routes here);
2. the ``REPRO_GRAPH_BACKEND`` environment variable;
3. the default, ``"csr"``.

:func:`set_graph_backend` also writes the environment variable so worker
processes spawned by the parallel experiment runner inherit the choice —
results are backend-independent anyway, but keeping the fleet on one
backend makes telemetry comparable across workers.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable consulted when no explicit override is set.
ENV_VAR = "REPRO_GRAPH_BACKEND"

#: Recognized backend names.
BACKENDS = ("dict", "csr")

DEFAULT_BACKEND = "csr"

_override: Optional[str] = None


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown graph backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def graph_backend() -> str:
    """Return the active backend name (``"dict"`` or ``"csr"``)."""
    if _override is not None:
        return _override
    env = os.environ.get(ENV_VAR)
    if env:
        return _validate(env)
    return DEFAULT_BACKEND


def set_graph_backend(name: Optional[str]) -> None:
    """Set (or with ``None``, clear) the process-wide backend override.

    The choice is mirrored into ``os.environ[REPRO_GRAPH_BACKEND]`` so
    subprocess pools started afterwards resolve the same backend.
    """
    global _override
    if name is None:
        _override = None
        os.environ.pop(ENV_VAR, None)
        return
    _override = _validate(name)
    os.environ[ENV_VAR] = _override
