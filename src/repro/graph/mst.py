"""Minimum spanning trees: Prim (heap-based) and Kruskal (union–find).

The KMB Steiner-tree approximation needs two MST computations per invocation
(one on the metric closure, one on the expanded subgraph), and the
``Alg_One_Server`` baseline builds an MST over each request's destination set,
so both classic algorithms are provided.  Prim is the default for dense metric
closures; Kruskal is exposed because it is the natural choice for sparse
expanded subgraphs and because having two independent implementations lets the
test suite cross-check them against each other and against networkx.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import DisconnectedGraphError
from repro.graph.graph import Graph, Node
from repro.graph.heap import IndexedHeap
from repro.graph.unionfind import DisjointSet


def prim_mst(graph: Graph, root: Optional[Node] = None) -> Graph:
    """Return a minimum spanning tree of a connected graph using Prim.

    Args:
        graph: a connected graph.
        root: optional node to grow the tree from (any node by default).

    Raises:
        DisconnectedGraphError: if the graph is not connected.
    """
    if graph.num_nodes == 0:
        return Graph()
    if root is None:
        root = next(iter(graph.nodes()))

    tree = Graph()
    tree.add_node(root)
    in_tree = {root}
    attach = {}  # node -> (tree endpoint, weight) of its cheapest connection
    heap: IndexedHeap = IndexedHeap()
    for neighbor, weight in graph.neighbor_items(root):
        heap.push(neighbor, weight)
        attach[neighbor] = (root, weight)

    while heap:
        node, _ = heap.pop()
        anchor, weight = attach[node]
        tree.add_edge(anchor, node, weight)
        in_tree.add(node)
        for neighbor, edge_weight in graph.neighbor_items(node):
            if neighbor in in_tree:
                continue
            if heap.push_or_decrease(neighbor, edge_weight):
                attach[neighbor] = (node, edge_weight)

    if tree.num_nodes != graph.num_nodes:
        raise DisconnectedGraphError(
            f"graph is not connected: spanning tree covers {tree.num_nodes} "
            f"of {graph.num_nodes} nodes"
        )
    return tree


def kruskal_mst(graph: Graph) -> Graph:
    """Return a minimum spanning forest of ``graph`` using Kruskal.

    Unlike :func:`prim_mst`, a disconnected input yields a spanning *forest*
    (one tree per component) rather than an error, which is what the
    capacitated solvers want after pruning exhausted links.
    """
    forest = Graph()
    for node in graph.nodes():
        forest.add_node(node)
    components = DisjointSet(graph.nodes())
    for u, v, weight in sorted(graph.edges(), key=lambda edge: edge[2]):
        if components.union(u, v):
            forest.add_edge(u, v, weight)
    return forest


def minimum_spanning_tree(graph: Graph) -> Graph:
    """Return an MST of a connected graph (Prim; raises if disconnected)."""
    return prim_mst(graph)


def mst_weight(graph: Graph) -> float:
    """Return the total weight of an MST of the (connected) graph."""
    return prim_mst(graph).total_weight()


def sorted_edge_list(graph: Graph) -> List[Tuple[Node, Node, float]]:
    """Return all edges sorted by weight (ties broken arbitrarily)."""
    return sorted(graph.edges(), key=lambda edge: edge[2])
