"""An addressable binary min-heap with decrease-key.

Dijkstra and Prim both want a priority queue that supports lowering the
priority of an element already in the queue.  The standard-library ``heapq``
only offers lazy deletion; this indexed heap keeps a position map so that
``decrease_key`` is a true ``O(log n)`` operation and the queue never holds
stale entries, which keeps memory bounded during long online simulations.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, List, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)


class IndexedHeap(Generic[K]):
    """A binary min-heap keyed by arbitrary hashable items.

    >>> heap = IndexedHeap()
    >>> heap.push("a", 3.0)
    >>> heap.push("b", 1.0)
    >>> heap.decrease_key("a", 0.5)
    >>> heap.pop()
    ('a', 0.5)
    >>> heap.pop()
    ('b', 1.0)
    """

    __slots__ = ("_entries", "_position")

    def __init__(self) -> None:
        self._entries: List[Tuple[float, K]] = []
        self._position: Dict[K, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._position

    def priority(self, key: K) -> float:
        """Return the current priority of ``key``."""
        return self._entries[self._position[key]][0]

    def push(self, key: K, priority: float) -> None:
        """Insert ``key`` with ``priority``; ``key`` must not be present."""
        if key in self._position:
            raise KeyError(f"{key!r} already in heap")
        self._entries.append((priority, key))
        self._position[key] = len(self._entries) - 1
        self._sift_up(len(self._entries) - 1)

    def decrease_key(self, key: K, priority: float) -> None:
        """Lower the priority of ``key``; raises if it would increase."""
        index = self._position[key]
        current, _ = self._entries[index]
        if priority > current:
            raise ValueError(
                f"cannot increase priority of {key!r} from {current} to {priority}"
            )
        self._entries[index] = (priority, key)
        self._sift_up(index)

    def push_or_decrease(self, key: K, priority: float) -> bool:
        """Insert ``key`` or lower its priority, whichever applies.

        Returns ``True`` if the heap changed (new key, or a strictly lower
        priority), which is exactly the "edge relaxed" signal Dijkstra needs.
        """
        if key not in self._position:
            self.push(key, priority)
            return True
        if priority < self.priority(key):
            self.decrease_key(key, priority)
            return True
        return False

    def pop(self) -> Tuple[K, float]:
        """Remove and return the ``(key, priority)`` pair with minimum priority."""
        if not self._entries:
            raise IndexError("pop from empty heap")
        priority, key = self._entries[0]
        last = self._entries.pop()
        del self._position[key]
        if self._entries:
            self._entries[0] = last
            self._position[last[1]] = 0
            self._sift_down(0)
        return key, priority

    def peek(self) -> Tuple[K, float]:
        """Return (without removing) the minimum ``(key, priority)`` pair."""
        if not self._entries:
            raise IndexError("peek at empty heap")
        priority, key = self._entries[0]
        return key, priority

    # ------------------------------------------------------------------
    # internal sifting
    # ------------------------------------------------------------------
    def _sift_up(self, index: int) -> None:
        entries, position = self._entries, self._position
        item = entries[index]
        while index > 0:
            parent = (index - 1) >> 1
            if entries[parent][0] <= item[0]:
                break
            entries[index] = entries[parent]
            position[entries[index][1]] = index
            index = parent
        entries[index] = item
        position[item[1]] = index

    def _sift_down(self, index: int) -> None:
        entries, position = self._entries, self._position
        size = len(entries)
        item = entries[index]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size and entries[right][0] < entries[child][0]:
                child = right
            if entries[child][0] >= item[0]:
                break
            entries[index] = entries[child]
            position[entries[index][1]] = index
            index = child
        entries[index] = item
        position[item[1]] = index
