"""Delay-constrained NFV multicast (extension).

The paper's related-work section cites Kuo et al. (INFOCOM 2016) on
NFV-enabled routing under end-to-end delay bounds, and leaves delay out of
its own model.  This module adds it: a request additionally carries a
maximum source→destination delay ``max_delay_ms``, and every destination
must receive the processed stream within that budget — i.e.
``delay(s_k → v) + delay(v → d) ≤ max_delay`` for the server ``v`` serving
destination ``d``.

The solver is a single-server heuristic in the spirit of the paper's
reductions:

1. for each candidate server ``v`` and each split of the delay budget
   between the two legs, route ``s_k → v`` with LARAC under the first-leg
   budget;
2. connect ``v`` to every destination with LARAC paths under the remaining
   budget, and take the union as the distribution structure;
3. keep the cheapest feasible ``(server, split)`` combination.

The returned :class:`DelayAwareSolution` reports the worst observed
end-to-end delay so callers can assert their SLA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.pseudo_tree import PseudoMulticastTree
from repro.exceptions import InfeasibleRequestError
from repro.graph.constrained import (
    DelayBoundInfeasibleError,
    larac_path,
    path_delay,
)
from repro.graph.graph import edge_key
from repro.graph.shortest_paths import dijkstra
from repro.network.sdn import SDNetwork
from repro.workload.request import MulticastRequest

Node = Hashable

#: Fractions of the delay budget tried for the source→server leg.
DEFAULT_BUDGET_SPLITS = (0.2, 0.35, 0.5, 0.65)


@dataclass(frozen=True)
class DelayAwareSolution:
    """A delay-feasible pseudo-multicast tree plus its delay report.

    Attributes:
        tree: the routing structure (single server).
        worst_delay_ms: the maximum end-to-end delay over destinations.
        per_destination_delay: end-to-end delay for each destination.
    """

    tree: PseudoMulticastTree
    worst_delay_ms: float
    per_destination_delay: Dict[Node, float]


def delay_aware_multicast(
    network: SDNetwork,
    request: MulticastRequest,
    max_delay_ms: float,
    budget_splits: Sequence[float] = DEFAULT_BUDGET_SPLITS,
) -> DelayAwareSolution:
    """Find a cheap pseudo-multicast tree meeting a per-destination delay SLA.

    Args:
        network: the SDN (unit costs + per-link delays).
        request: the multicast request.
        max_delay_ms: end-to-end delay bound for every destination.
        budget_splits: fractions of the bound reserved for the
            source→server leg (each is tried; more splits, better trees,
            more time).

    Raises:
        InfeasibleRequestError: if no server admits a delay-feasible tree.
        ValueError: if parameters are malformed.
    """
    if max_delay_ms <= 0:
        raise ValueError(f"max_delay_ms must be positive: {max_delay_ms}")
    if not budget_splits or not all(0 < f < 1 for f in budget_splits):
        raise ValueError(f"budget splits must lie in (0, 1): {budget_splits}")

    from repro.core.auxiliary import scale_graph

    scaled = scale_graph(network.graph, request.bandwidth)  # repro-lint: disable=RL001
    delays = network.delay_map()
    destinations = sorted(request.destinations, key=repr)
    # One-shot search on the materialized b_k-scaled copy; the delay-aware
    # extension pins its published series to the explicit construction.
    # repro-lint: disable=RL001
    source_tree = dijkstra(scaled, request.source)

    best: Optional[Tuple[float, Node, List[Node], Dict[Node, List[Node]]]] = None
    for server in network.server_nodes:
        if not source_tree.reaches(server):
            continue
        for fraction in budget_splits:
            leg_budget = fraction * max_delay_ms
            try:
                if server == request.source:
                    source_path: List[Node] = [request.source]
                else:
                    source_path = larac_path(
                        scaled, delays, request.source, server, leg_budget
                    )
            except DelayBoundInfeasibleError:
                continue
            remaining = max_delay_ms - path_delay(
                delays, source_path
            ) if len(source_path) > 1 else max_delay_ms
            try:
                branch_paths = {
                    d: larac_path(scaled, delays, server, d, remaining)
                    if d != server
                    else [server]
                    for d in destinations
                }
            except DelayBoundInfeasibleError:
                continue

            union_edges = set()
            for path in branch_paths.values():
                union_edges.update(
                    edge_key(u, v) for u, v in zip(path, path[1:])
                )
            cost = (
                sum(scaled.weight(u, v) for u, v in
                    zip(source_path, source_path[1:]))
                # sorted: float addition is order-sensitive and the edge
                # set iterates in salted hash order, so an unsorted sum
                # could pick a different best server across processes
                + sum(scaled.weight(u, v) for u, v in sorted(union_edges))
                + network.chain_cost(server, request.compute_demand)
            )
            if best is None or cost < best[0]:
                best = (cost, server, source_path, branch_paths)

    if best is None:
        raise InfeasibleRequestError(
            f"request {request.request_id}: no server admits a tree within "
            f"{max_delay_ms:g} ms"
        )

    _, server, source_path, branch_paths = best
    source_leg_delay = path_delay(delays, source_path)
    per_destination = {
        d: source_leg_delay + path_delay(delays, path)
        for d, path in branch_paths.items()
    }
    union_edges = set()
    for path in branch_paths.values():
        union_edges.update(edge_key(u, v) for u, v in zip(path, path[1:]))
    # sorted for the same reason as the per-candidate cost above, and so
    # the tree's distribution_edges tuple (which downstream installation
    # and digests observe) has a process-independent order
    ordered_edges = sorted(union_edges)
    bandwidth_cost = (
        sum(scaled.weight(u, v) for u, v in zip(source_path, source_path[1:]))
        + sum(scaled.weight(u, v) for u, v in ordered_edges)
    )
    tree = PseudoMulticastTree(
        request=request,
        servers=(server,),
        server_paths={server: tuple(source_path)},
        distribution_edges=tuple(ordered_edges),
        return_paths=(),
        bandwidth_cost=bandwidth_cost,
        compute_cost=network.chain_cost(server, request.compute_demand),
    )
    return DelayAwareSolution(
        tree=tree,
        worst_delay_ms=max(per_destination.values()),
        per_destination_delay=per_destination,
    )
