"""Shared interface for online admission algorithms.

``Online_CP`` and the ``SP`` baseline both consume a request stream against
a shared capacitated :class:`SDNetwork` and must make irrevocable
admit/reject decisions.  This module defines the decision record and the
abstract base class the simulation engine drives.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.core.admission import release_tree, try_allocate
from repro.core.pseudo_tree import PseudoMulticastTree
from repro.exceptions import SimulationError
from repro.network.allocation import AllocationTransaction
from repro.network.sdn import SDNetwork
from repro.obs import inc as _obs_inc, span as _obs_span
from repro.workload.request import MulticastRequest


class RejectReason(enum.Enum):
    """Why an online algorithm turned a request away."""

    NO_FEASIBLE_SERVER = "no_feasible_server"
    DISCONNECTED = "disconnected"
    SERVER_THRESHOLD = "server_threshold"
    TREE_THRESHOLD = "tree_threshold"
    ALLOCATION_FAILED = "allocation_failed"
    TABLE_CAPACITY = "table_capacity"


@dataclass
class OnlineDecision:
    """The outcome of considering one request.

    Attributes:
        request: the request considered.
        admitted: whether resources were reserved and the tree installed.
        tree: the pseudo-multicast tree (``None`` when rejected).
        transaction: the committed reservation (``None`` when rejected).
        selection_weight: the algorithm's internal score of the chosen
            candidate (model-specific; ``None`` when rejected).
        reason: why the request was rejected (``None`` when admitted).
    """

    request: MulticastRequest
    admitted: bool
    tree: Optional[PseudoMulticastTree] = None
    transaction: Optional[AllocationTransaction] = None
    selection_weight: Optional[float] = None
    reason: Optional[RejectReason] = None


class OnlineAlgorithm(abc.ABC):
    """Base class: owns the network, tracks admissions, exposes ``process``.

    Attributes:
        retain_decisions: whether :meth:`process` appends every decision to
            the :attr:`decisions` history (the default, used by the figure
            replays and the trace tooling).  Long-running streams set this
            to ``False`` so memory stays O(active requests); the
            :attr:`admitted_count` / :attr:`rejected_count` totals are
            maintained incrementally either way.
    """

    def __init__(self, network: SDNetwork) -> None:
        self._network = network
        self._decisions: List[OnlineDecision] = []
        self._active: Dict[Hashable, OnlineDecision] = {}
        self._admitted_total = 0
        self._rejected_total = 0
        self.retain_decisions: bool = True

    @property
    def network(self) -> SDNetwork:
        """The capacitated network this algorithm allocates from."""
        return self._network

    @property
    def decisions(self) -> List[OnlineDecision]:
        """Every retained decision made so far, in arrival order.

        Empty when :attr:`retain_decisions` has been switched off.
        """
        return list(self._decisions)

    @property
    def decided_count(self) -> int:
        """Total requests processed (admitted + rejected)."""
        return self._admitted_total + self._rejected_total

    @property
    def admitted_count(self) -> int:
        """How many requests have been admitted (the throughput metric)."""
        return self._admitted_total

    @property
    def rejected_count(self) -> int:
        """How many requests have been rejected."""
        return self._rejected_total

    @property
    def active_count(self) -> int:
        """How many admitted requests currently hold resources."""
        return len(self._active)

    def process(self, request: MulticastRequest) -> OnlineDecision:
        """Decide on ``request``, reserving resources if admitted."""
        _obs_inc("online.decisions")
        with _obs_span("online_decide"):
            decision = self._decide(request)
        if decision.admitted:
            if decision.tree is None or decision.transaction is None:
                raise SimulationError(
                    "an admitted decision must carry a tree and a transaction"
                )
            self._active[request.request_id] = decision
            self._admitted_total += 1
            _obs_inc("online.admitted")
        else:
            self._rejected_total += 1
            _obs_inc("online.rejected")
            if decision.reason is not None:
                _obs_inc(f"online.rejected.{decision.reason.value}")
        if self.retain_decisions:
            self._decisions.append(decision)
        return decision

    def depart(self, request_id: Hashable) -> None:
        """Release the resources of a previously admitted request."""
        decision = self._active.pop(request_id, None)
        if decision is None:
            raise SimulationError(
                f"request {request_id!r} is not currently admitted"
            )
        assert decision.transaction is not None
        release_tree(decision.transaction)

    def forget(self, request_id: Hashable) -> None:
        """Drop an admitted request *without* releasing its resources.

        Used by repair strategies that take over ownership of a request's
        reservations (the surviving allocations are re-homed into a new
        transaction): after ``forget``, a later :meth:`depart` for the same
        id raises instead of double-releasing.
        """
        if self._active.pop(request_id, None) is None:
            raise SimulationError(
                f"request {request_id!r} is not currently admitted"
            )

    def adopt_admission(
        self,
        request: MulticastRequest,
        transaction: AllocationTransaction,
    ) -> None:
        """Register an externally rebuilt admission (checkpoint restore).

        The stream checkpoint layer re-homes a restored request's
        already-booked reservations into an adopted transaction (see
        :meth:`~repro.network.allocation.AllocationTransaction.adopt`) and
        hands it here so a later :meth:`depart` releases exactly once.  No
        resources are allocated and no counters move — the restored
        statistics are the checkpoint's business, not this algorithm's.
        """
        if request.request_id in self._active:
            raise SimulationError(
                f"request {request.request_id!r} is already admitted"
            )
        self._active[request.request_id] = OnlineDecision(
            request=request,
            admitted=True,
            tree=None,
            transaction=transaction,
        )

    @abc.abstractmethod
    def _decide(self, request: MulticastRequest) -> OnlineDecision:
        """Evaluate one request and (on success) commit its reservation."""

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def _admit(
        self,
        request: MulticastRequest,
        tree: PseudoMulticastTree,
        selection_weight: float,
    ) -> OnlineDecision:
        """Attempt to reserve ``tree``'s resources; fall back to rejection."""
        transaction = try_allocate(self._network, tree)
        if transaction is None:
            return OnlineDecision(
                request=request,
                admitted=False,
                reason=RejectReason.ALLOCATION_FAILED,
            )
        return OnlineDecision(
            request=request,
            admitted=True,
            tree=tree,
            transaction=transaction,
            selection_weight=selection_weight,
        )

    @staticmethod
    def _reject(
        request: MulticastRequest, reason: RejectReason
    ) -> OnlineDecision:
        """Build a rejection record."""
        return OnlineDecision(request=request, admitted=False, reason=reason)
