"""Shared interface for online admission algorithms.

``Online_CP`` and the ``SP`` baseline both consume a request stream against
a shared capacitated :class:`SDNetwork` and must make irrevocable
admit/reject decisions.  This module defines the decision record and the
abstract base class the simulation engine drives.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.core.admission import release_tree, try_allocate
from repro.core.pseudo_tree import PseudoMulticastTree
from repro.exceptions import SimulationError
from repro.network.allocation import AllocationTransaction
from repro.network.sdn import SDNetwork
from repro.obs import inc as _obs_inc, span as _obs_span
from repro.workload.request import MulticastRequest


class RejectReason(enum.Enum):
    """Why an online algorithm turned a request away."""

    NO_FEASIBLE_SERVER = "no_feasible_server"
    DISCONNECTED = "disconnected"
    SERVER_THRESHOLD = "server_threshold"
    TREE_THRESHOLD = "tree_threshold"
    ALLOCATION_FAILED = "allocation_failed"
    TABLE_CAPACITY = "table_capacity"


@dataclass
class OnlineDecision:
    """The outcome of considering one request.

    Attributes:
        request: the request considered.
        admitted: whether resources were reserved and the tree installed.
        tree: the pseudo-multicast tree (``None`` when rejected).
        transaction: the committed reservation (``None`` when rejected).
        selection_weight: the algorithm's internal score of the chosen
            candidate (model-specific; ``None`` when rejected).
        reason: why the request was rejected (``None`` when admitted).
    """

    request: MulticastRequest
    admitted: bool
    tree: Optional[PseudoMulticastTree] = None
    transaction: Optional[AllocationTransaction] = None
    selection_weight: Optional[float] = None
    reason: Optional[RejectReason] = None


class OnlineAlgorithm(abc.ABC):
    """Base class: owns the network, tracks admissions, exposes ``process``."""

    def __init__(self, network: SDNetwork) -> None:
        self._network = network
        self._decisions: List[OnlineDecision] = []
        self._active: Dict[Hashable, OnlineDecision] = {}

    @property
    def network(self) -> SDNetwork:
        """The capacitated network this algorithm allocates from."""
        return self._network

    @property
    def decisions(self) -> List[OnlineDecision]:
        """Every decision made so far, in arrival order."""
        return list(self._decisions)

    @property
    def admitted_count(self) -> int:
        """How many requests have been admitted (the throughput metric)."""
        return sum(1 for d in self._decisions if d.admitted)

    @property
    def rejected_count(self) -> int:
        """How many requests have been rejected."""
        return sum(1 for d in self._decisions if not d.admitted)

    def process(self, request: MulticastRequest) -> OnlineDecision:
        """Decide on ``request``, reserving resources if admitted."""
        _obs_inc("online.decisions")
        with _obs_span("online_decide"):
            decision = self._decide(request)
        if decision.admitted:
            if decision.tree is None or decision.transaction is None:
                raise SimulationError(
                    "an admitted decision must carry a tree and a transaction"
                )
            self._active[request.request_id] = decision
            _obs_inc("online.admitted")
        else:
            _obs_inc("online.rejected")
            if decision.reason is not None:
                _obs_inc(f"online.rejected.{decision.reason.value}")
        self._decisions.append(decision)
        return decision

    def depart(self, request_id: Hashable) -> None:
        """Release the resources of a previously admitted request."""
        decision = self._active.pop(request_id, None)
        if decision is None:
            raise SimulationError(
                f"request {request_id!r} is not currently admitted"
            )
        assert decision.transaction is not None
        release_tree(decision.transaction)

    def forget(self, request_id: Hashable) -> None:
        """Drop an admitted request *without* releasing its resources.

        Used by repair strategies that take over ownership of a request's
        reservations (the surviving allocations are re-homed into a new
        transaction): after ``forget``, a later :meth:`depart` for the same
        id raises instead of double-releasing.
        """
        if self._active.pop(request_id, None) is None:
            raise SimulationError(
                f"request {request_id!r} is not currently admitted"
            )

    @abc.abstractmethod
    def _decide(self, request: MulticastRequest) -> OnlineDecision:
        """Evaluate one request and (on success) commit its reservation."""

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def _admit(
        self,
        request: MulticastRequest,
        tree: PseudoMulticastTree,
        selection_weight: float,
    ) -> OnlineDecision:
        """Attempt to reserve ``tree``'s resources; fall back to rejection."""
        transaction = try_allocate(self._network, tree)
        if transaction is None:
            return OnlineDecision(
                request=request,
                admitted=False,
                reason=RejectReason.ALLOCATION_FAILED,
            )
        return OnlineDecision(
            request=request,
            admitted=True,
            tree=tree,
            transaction=transaction,
            selection_weight=selection_weight,
        )

    @staticmethod
    def _reject(
        request: MulticastRequest, reason: RejectReason
    ) -> OnlineDecision:
        """Build a rejection record."""
        return OnlineDecision(request=request, admitted=False, reason=reason)
