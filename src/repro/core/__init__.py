"""Core: the paper's algorithms and their supporting machinery.

Public surface:

- :func:`appro_multi` / :func:`appro_multi_cap` — Algorithm 1 and its
  capacitated variant (Section IV).
- :class:`OnlineCP` — Algorithm 2, the online admission algorithm
  (Section V).
- :func:`alg_one_server`, :class:`SPOnline` — the comparison baselines.
- :class:`PseudoMulticastTree` — the routing structure all solvers emit.
- Cost models, admission policy, and exact reference solvers.
"""

from repro.core.admission import (
    AdmissionPolicy,
    release_tree,
    try_allocate,
)
from repro.core.appro_multi import (
    DEFAULT_MAX_SERVERS,
    ApproMultiResult,
    appro_multi,
    appro_multi_cap,
    appro_multi_detailed,
    appro_multi_reference,
)
from repro.core.auxiliary import (
    VIRTUAL_SOURCE,
    AuxiliaryContext,
    AuxiliaryCSR,
    FlatContext,
    SubsetSolution,
    build_context,
    evaluate_combination,
    explicit_auxiliary_graph,
    iter_combinations,
    scale_graph,
)
from repro.core.baselines import SPOnline, alg_one_server
from repro.core.cost_model import (
    CostModel,
    ExponentialCostModel,
    LinearCostModel,
    UtilizationCostModel,
)
from repro.core.delay_aware import (
    DelayAwareSolution,
    delay_aware_multicast,
)
from repro.core.fasteval import (
    CombinationEvaluator,
    CSRCombinationEvaluator,
    CSRSubsetSolution,
    make_evaluator,
)
from repro.core.exact import (
    optimal_auxiliary_cost,
    optimal_single_server_cost,
)
from repro.core.online_base import (
    OnlineAlgorithm,
    OnlineDecision,
    RejectReason,
)
from repro.core.online_cp import OnlineCP
from repro.core.online_multi import OnlineCPK
from repro.core.pseudo_tree import (
    PseudoMulticastTree,
    operational_cost,
    validate_pseudo_tree,
)

__all__ = [
    "appro_multi",
    "appro_multi_cap",
    "appro_multi_detailed",
    "appro_multi_reference",
    "ApproMultiResult",
    "AuxiliaryCSR",
    "CombinationEvaluator",
    "CSRCombinationEvaluator",
    "CSRSubsetSolution",
    "FlatContext",
    "make_evaluator",
    "DEFAULT_MAX_SERVERS",
    "OnlineCP",
    "OnlineCPK",
    "DelayAwareSolution",
    "delay_aware_multicast",
    "SPOnline",
    "alg_one_server",
    "OnlineAlgorithm",
    "OnlineDecision",
    "RejectReason",
    "PseudoMulticastTree",
    "operational_cost",
    "validate_pseudo_tree",
    "CostModel",
    "ExponentialCostModel",
    "LinearCostModel",
    "UtilizationCostModel",
    "AdmissionPolicy",
    "try_allocate",
    "release_tree",
    "optimal_auxiliary_cost",
    "optimal_single_server_cost",
    "VIRTUAL_SOURCE",
    "AuxiliaryContext",
    "SubsetSolution",
    "build_context",
    "evaluate_combination",
    "explicit_auxiliary_graph",
    "iter_combinations",
    "scale_graph",
]
