"""Exact reference solvers for small instances.

The paper's guarantees are relative to optima nobody can compute at scale,
but on small instances we can: this module enumerates server combinations
and solves each auxiliary graph *exactly* with the Dreyfus–Wagner dynamic
program.  Two quantities fall out:

- :func:`optimal_auxiliary_cost` — ``min_i OPT(G_k^i)``, the tightest bound
  the reduction itself allows.  ``Appro_Multi``'s tree must cost at most
  twice this value (per-combination KMB is a 2-approximation), which in turn
  is at most ``2K`` times the true pseudo-multicast optimum (Theorem 1's
  compression argument) — so the test suite checks the stronger ``2×``
  inequality.
- :func:`optimal_single_server_cost` — for ``K = 1`` the true optimum
  decomposes cleanly into (shortest source→server path) + (chain cost) +
  (exact Steiner tree over ``{v} ∪ D_k``); used to validate the online
  algorithm's building blocks and the ``Alg_One_Server`` baseline.

Complexity is exponential in ``|D_k|`` (Dreyfus–Wagner) and in ``K``
(combinations), so keep instances tiny: ``|D_k| ≤ 7``, ``|V_S| ≤ 8``.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from repro.core.auxiliary import (
    VIRTUAL_SOURCE,
    build_context,
    explicit_auxiliary_graph,
    iter_combinations,
)
from repro.exceptions import InfeasibleRequestError
from repro.graph.exact_steiner import dreyfus_wagner
from repro.graph.shortest_paths import dijkstra
from repro.network.sdn import SDNetwork
from repro.workload.request import MulticastRequest

Node = Hashable


def optimal_auxiliary_cost(
    network: SDNetwork,
    request: MulticastRequest,
    max_servers: int,
) -> Tuple[float, Tuple[Node, ...]]:
    """Return ``(min_i OPT(G_k^i), best combination)`` by exact search.

    Raises:
        InfeasibleRequestError: if no combination connects the terminals.
        ValueError: if the instance is too large to solve exactly.
    """
    if len(request.destinations) > 7:
        raise ValueError(
            f"{len(request.destinations)} destinations is too many for the "
            "exact reference solver"
        )
    servers = network.server_nodes
    if len(servers) > 10:
        raise ValueError(
            f"{len(servers)} servers is too many for exhaustive combinations"
        )
    chain_cost = {
        v: network.chain_cost(v, request.compute_demand) for v in servers
    }
    ctx = build_context(
        graph=network.graph,
        source=request.source,
        destinations=sorted(request.destinations, key=repr),
        servers=servers,
        chain_cost=chain_cost,
        bandwidth=request.bandwidth,
    )
    terminals = [VIRTUAL_SOURCE] + list(ctx.destinations)
    best_cost: Optional[float] = None
    best_combination: Tuple[Node, ...] = ()
    for combination in iter_combinations(ctx.candidate_servers, max_servers):
        # exact oracle: the materialized G_k^i is the point of this solver
        aux = explicit_auxiliary_graph(ctx, combination)  # repro-lint: disable=RL001
        cost, _ = dreyfus_wagner(aux, terminals)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_combination = tuple(combination)
    if best_cost is None:
        raise InfeasibleRequestError(
            f"request {request.request_id}: no feasible combination"
        )
    return best_cost, best_combination


def optimal_single_server_cost(
    network: SDNetwork, request: MulticastRequest
) -> Tuple[float, Node]:
    """Exact optimum for ``K = 1``: best (route + chain + Steiner) split.

    Returns ``(cost, server)``.

    Raises:
        InfeasibleRequestError: if no server can serve the request.
    """
    if len(request.destinations) > 7:
        raise ValueError(
            f"{len(request.destinations)} destinations is too many for the "
            "exact reference solver"
        )
    from repro.core.auxiliary import scale_graph

    scaled = scale_graph(network.graph, request.bandwidth)  # repro-lint: disable=RL001
    # Exact reference oracle: fresh search on the materialized scaled copy,
    # deliberately independent of the production cache it helps validate.
    # repro-lint: disable=RL001
    source_tree = dijkstra(scaled, request.source)
    destinations = sorted(request.destinations, key=repr)
    best: Optional[Tuple[float, Node]] = None
    for server in network.server_nodes:
        if not source_tree.reaches(server):
            continue
        route = source_tree.distance[server]
        chain = network.chain_cost(server, request.compute_demand)
        steiner_cost, _ = dreyfus_wagner(scaled, [server] + destinations)
        total = route + chain + steiner_cost
        if best is None or total < best[0]:
            best = (total, server)
    if best is None:
        raise InfeasibleRequestError(
            f"request {request.request_id}: no reachable server"
        )
    return best
