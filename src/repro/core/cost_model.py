"""Resource cost models for online admission (Section V-A).

The paper's key online ingredient is an *exponential* cost that charges
lightly-loaded resources almost nothing and saturating resources steeply:

.. math::

    c_v(k) = C_v (α^{1 - C_v(k)/C_v} - 1), \\qquad
    c_e(k) = B_e (β^{1 - B_e(k)/B_e} - 1)

with ``α = β = 2|V|``.  The *normalized weights* used inside Algorithm 2 are
``w_v(k) = c_v(k)/C_v`` and ``w_e(k) = c_e(k)/B_e``.  A *linear* model (the
strawman the paper argues against) is provided for ablation benchmarks.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.graph.graph import Graph, Node
from repro.network.sdn import SDNetwork

#: Tiny per-unit-cost tie-break added to solver edge weights so that a
#: completely idle network (where every exponential weight is exactly zero)
#: still prefers short, cheap paths instead of arbitrary zero-weight trees.
#: It is orders of magnitude below any real congestion signal and is *not*
#: included in threshold comparisons, so it cannot change admission
#: decisions relative to the paper's policy.
TIE_BREAK_SCALE = 1e-9


class CostModel(abc.ABC):
    """Maps the current residual state of a network to edge/node weights."""

    @abc.abstractmethod
    def edge_weight(self, network: SDNetwork, u: Node, v: Node) -> float:
        """Return the normalized weight ``w_e(k)`` of link ``(u, v)``."""

    @abc.abstractmethod
    def node_weight(self, network: SDNetwork, node: Node) -> float:
        """Return the normalized weight ``w_v(k)`` of the server at ``node``."""

    def edge_cost(self, network: SDNetwork, u: Node, v: Node) -> float:
        """Return the un-normalized cost ``c_e(k)`` of link ``(u, v)``."""
        return self.edge_weight(network, u, v) * network.link(u, v).capacity

    def node_cost(self, network: SDNetwork, node: Node) -> float:
        """Return the un-normalized cost ``c_v(k)`` of the server at ``node``."""
        return self.node_weight(network, node) * network.server(node).capacity

    def weight_graph(
        self, network: SDNetwork, min_residual_bandwidth: float = 0.0
    ) -> Graph:
        """Build the solver graph ``G_k`` with congestion-aware weights.

        Links whose residual bandwidth is below ``min_residual_bandwidth``
        are omitted (they cannot carry the request anyway), as are failed
        links (see :meth:`~repro.network.sdn.SDNetwork.fail_link`).  A
        microscopic distance-proportional tie-break is added so Steiner
        trees are deterministic and short on an idle network; see
        :data:`TIE_BREAK_SCALE`.
        """
        weighted = Graph()
        for node in network.graph.nodes():
            weighted.add_node(node)
        for u, v, unit_cost in network.graph.edges():
            link = network.link(u, v)
            if not link.up or link.residual + 1e-9 < min_residual_bandwidth:
                continue
            weight = self.edge_weight(network, u, v)
            weighted.add_edge(u, v, weight + TIE_BREAK_SCALE * unit_cost)
        return weighted


class ExponentialCostModel(CostModel):
    """The paper's congestion-pricing model (Eqs. 1 and 2).

    Args:
        alpha: base for server costs; defaults to ``2|V|`` at first use.
        beta: base for link costs; defaults to ``2|V|`` at first use.
    """

    def __init__(
        self, alpha: Optional[float] = None, beta: Optional[float] = None
    ) -> None:
        if alpha is not None and alpha <= 1:
            raise ValueError(f"alpha must be > 1, got {alpha}")
        if beta is not None and beta <= 1:
            raise ValueError(f"beta must be > 1, got {beta}")
        self._alpha = alpha
        self._beta = beta

    @classmethod
    def for_network(cls, network: SDNetwork) -> "ExponentialCostModel":
        """Return the paper's calibration ``α = β = 2|V|``."""
        base = max(2.0, 2.0 * network.num_nodes)
        return cls(alpha=base, beta=base)

    def alpha(self, network: SDNetwork) -> float:
        """The server-cost base (``2|V|`` when not overridden)."""
        return self._alpha if self._alpha is not None else max(
            2.0, 2.0 * network.num_nodes
        )

    def beta(self, network: SDNetwork) -> float:
        """The link-cost base (``2|V|`` when not overridden)."""
        return self._beta if self._beta is not None else max(
            2.0, 2.0 * network.num_nodes
        )

    def edge_weight(self, network: SDNetwork, u: Node, v: Node) -> float:
        link = network.link(u, v)
        return self.beta(network) ** link.utilization - 1.0

    def node_weight(self, network: SDNetwork, node: Node) -> float:
        server = network.server(node)
        return self.alpha(network) ** server.utilization - 1.0


class LinearCostModel(CostModel):
    """The strawman linear model (Section V-A's ``linear cost model``).

    Charges proportionally to the amount of resource used with no regard to
    the current load: the weight of a link or server is simply its unit
    cost, scaled so weights are comparable to the exponential model's range.
    Used to ablate the benefit of congestion pricing.
    """

    def edge_weight(self, network: SDNetwork, u: Node, v: Node) -> float:
        return network.link(u, v).unit_cost

    def node_weight(self, network: SDNetwork, node: Node) -> float:
        return network.server(node).unit_cost


class UtilizationCostModel(CostModel):
    """Linear-in-utilization pricing: ``w = utilization``.

    A second ablation point between the strawman and the exponential model:
    congestion-aware, but without the exponential's sharp knee.
    """

    def edge_weight(self, network: SDNetwork, u: Node, v: Node) -> float:
        return network.link(u, v).utilization

    def node_weight(self, network: SDNetwork, node: Node) -> float:
        return network.server(node).utilization
