"""``Online_CP`` — the paper's online admission algorithm (Algorithm 2).

For each arriving request ``r_k`` (with ``K = 1``: one server hosts the whole
chain):

1. build ``G_k`` weighted by the normalized exponential costs
   ``w_e(k) = β^{1−B_e(k)/B_e} − 1`` and ``w_v(k) = α^{1−C_v(k)/C_v} − 1``
   (Section V-A, with ``α = β = 2|V|``);
2. for every server ``v`` with enough residual compute and
   ``w_v(k) < σ_v``, find a KMB Steiner tree ``T`` over ``{s_k, v} ∪ D_k``;
3. keep candidates with ``Σ_{e∈T} w_e(k) < σ_e``; price each by
   ``w(T) + w_v(k) + w(p_{v,u})`` where ``u = LCA(v, d_1, …, d_{|D_k|})``
   in ``T`` rooted at ``s_k`` — the detour that sends the processed stream
   from ``v`` back up to ``u`` before distribution;
4. admit via the cheapest candidate, reserving ``b_k`` per tree edge plus
   ``b_k`` per detour hop and ``C_v(SC_k)`` on the server; reject if no
   candidate survives.

Theorem 2 gives this policy an ``O(log |V|)`` competitive ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

from repro.core.admission import AdmissionPolicy
from repro.core.cost_model import CostModel, ExponentialCostModel
from repro.core.online_base import OnlineAlgorithm, OnlineDecision, RejectReason
from repro.core.pseudo_tree import PseudoMulticastTree
from repro.exceptions import DisconnectedGraphError
from repro.graph.graph import Graph, edge_key
from repro.graph.spcache import ShortestPathCache, VersionedCacheRegistry
from repro.graph.steiner import kmb_steiner_tree_cached
from repro.graph.tree import RootedTree
from repro.network.sdn import SDNetwork
from repro.obs import (
    inc as _obs_inc,
    span as _obs_span,
    trace_instant as _obs_instant,
)
from repro.workload.request import MulticastRequest

Node = Hashable


@dataclass
class _Candidate:
    """One server's candidate pseudo-multicast tree."""

    server: Node
    tree: Graph
    rooted: RootedTree
    meeting_point: Node  # u = LCA(v, destinations)
    selection_weight: float


class OnlineCP(OnlineAlgorithm):
    """Algorithm 2 with the exponential cost model and threshold policy.

    Args:
        network: the capacitated SDN (mutated as requests are admitted).
        cost_model: resource pricing; defaults to the paper's exponential
            model with ``α = β = 2|V|``.  Pass
            :class:`~repro.core.cost_model.LinearCostModel` to reproduce the
            ablation discussed in Section V-A.
        policy: admission thresholds; defaults to ``σ_v = σ_e = |V| − 1``.
    """

    def __init__(
        self,
        network: SDNetwork,
        cost_model: Optional[CostModel] = None,
        policy: Optional[AdmissionPolicy] = None,
    ) -> None:
        super().__init__(network)
        self._model = cost_model or ExponentialCostModel.for_network(network)
        self._policy = policy or AdmissionPolicy.for_network(network)
        # Congestion-priced graphs depend on residual state, so cached
        # Dijkstra trees are keyed on the network epoch: consecutive
        # decisions without an admission in between (rejections do not touch
        # capacities) reuse both the weighted graph and its trees.
        self._sp_registry = VersionedCacheRegistry()

    def _weighted_cache(self, request: MulticastRequest) -> ShortestPathCache:
        """Shortest-path cache on the congestion-priced graph for ``b_k``."""
        network = self._network
        return self._sp_registry.get(
            ("weighted", request.bandwidth),
            network.epoch,
            lambda: self._model.weight_graph(
                network, min_residual_bandwidth=request.bandwidth
            ),
        )

    @property
    def cost_model(self) -> CostModel:
        """The resource pricing model in use."""
        return self._model

    @property
    def policy(self) -> AdmissionPolicy:
        """The admission thresholds in use."""
        return self._policy

    # ------------------------------------------------------------------
    # decision procedure
    # ------------------------------------------------------------------
    def _decide(self, request: MulticastRequest) -> OnlineDecision:
        network = self._network
        demand = request.compute_demand
        candidates = [
            v
            for v in network.server_nodes
            if network.server(v).can_allocate(demand)
        ]
        if not candidates:
            return self._reject(request, RejectReason.NO_FEASIBLE_SERVER)

        sp_cache = self._weighted_cache(request)
        weighted = sp_cache.graph
        destinations = sorted(request.destinations, key=repr)
        source_tree = sp_cache.tree(request.source)
        if any(not source_tree.reaches(d) for d in destinations):
            return self._reject(request, RejectReason.DISCONNECTED)

        best: Optional[_Candidate] = None
        saw_server_pass = False
        saw_tree_built = False
        for server in candidates:
            server_weight = self._model.node_weight(network, server)
            if not self._policy.server_admissible(server_weight):
                continue
            saw_server_pass = True
            if not source_tree.reaches(server):
                continue
            _obs_inc("online_cp.candidates")
            terminals = [request.source, server] + destinations
            try:
                tree = kmb_steiner_tree_cached(weighted, sp_cache, terminals)
            except DisconnectedGraphError:
                continue
            tree_weight = sum(
                self._model.edge_weight(network, u, v)
                for u, v, _ in tree.edges()
            )
            saw_tree_built = True
            if not self._policy.tree_admissible(tree_weight):
                continue
            with _obs_span("lca_correction"):
                rooted = RootedTree(tree, request.source)
                meeting = rooted.lca_of_set([server] + destinations)
                detour_weight = sum(
                    self._model.edge_weight(network, u, v)
                    for u, v in _path_edges(
                        rooted.path_between(server, meeting)
                    )
                )
            selection = tree_weight + server_weight + detour_weight
            if best is None or selection < best.selection_weight:
                best = _Candidate(
                    server=server,
                    tree=tree,
                    rooted=rooted,
                    meeting_point=meeting,
                    selection_weight=selection,
                )

        if best is None:
            if saw_tree_built:
                reason = RejectReason.TREE_THRESHOLD
            elif saw_server_pass:
                reason = RejectReason.DISCONNECTED
            else:
                reason = RejectReason.SERVER_THRESHOLD
            return self._reject(request, reason)

        pseudo = self._build_pseudo_tree(request, best)
        _obs_instant(
            "online_cp.selected",
            server=str(best.server),
            selection_weight=best.selection_weight,
        )
        return self._admit(request, pseudo, best.selection_weight)

    def _build_pseudo_tree(
        self, request: MulticastRequest, candidate: _Candidate
    ) -> PseudoMulticastTree:
        """Translate the winning Steiner tree into routing + real costs."""
        network = self._network
        rooted = candidate.rooted
        source_path = tuple(
            reversed(rooted.path_between(candidate.server, request.source))
        )
        source_path_edges = set(_path_edges(source_path))
        distribution = tuple(
            (u, v)
            for u, v, _ in candidate.tree.edges()
            if edge_key(u, v) not in source_path_edges
        )
        return_path = tuple(
            rooted.path_between(candidate.server, candidate.meeting_point)
        )
        return_paths = (return_path,) if len(return_path) > 1 else ()

        bandwidth_cost = 0.0
        for u, v, _ in candidate.tree.edges():
            bandwidth_cost += network.link_unit_cost(u, v) * request.bandwidth
        for u, v in _path_edges(return_path):
            bandwidth_cost += network.link_unit_cost(u, v) * request.bandwidth
        compute_cost = network.chain_cost(
            candidate.server, request.compute_demand
        )
        return PseudoMulticastTree(
            request=request,
            servers=(candidate.server,),
            server_paths={candidate.server: source_path},
            distribution_edges=distribution,
            return_paths=return_paths,
            bandwidth_cost=bandwidth_cost,
            compute_cost=compute_cost,
        )


def _path_edges(path) -> List[Tuple[Node, Node]]:
    """Return canonical edge keys along a node path."""
    return [edge_key(u, v) for u, v in zip(path, path[1:])]
