"""Auxiliary-graph construction for ``Appro_Multi`` (Section IV-B).

For a request ``r_k`` and a server combination ``V_S^i``, the paper builds an
auxiliary graph ``G_k^i``:

- every physical edge ``e`` keeps weight ``c_e · b_k``;
- a *virtual source* ``s'_k`` is added, wired to each ``v ∈ V_S^i`` by an
  edge of weight ``(shortest-path cost s_k → v) · b_k + c_v(SC_k)``;
- any physical edge ``(s_k, v)`` with ``v ∈ V_S^i`` is re-weighted to zero
  (the processed stream returning over that hop is not charged again).

``Appro_Multi`` then runs the KMB Steiner heuristic on ``G_k^i`` with
terminals ``{s'_k} ∪ D_k`` for every combination and keeps the cheapest tree.

Running text-book KMB per combination would repeat ``|D_k| + 1`` Dijkstras
for each of up to ``Σ_{j≤K} C(|V_S|, j)`` combinations.  This module instead
precomputes one Dijkstra per terminal/server/source (an
:class:`AuxiliaryContext`) and evaluates each combination analytically:
every auxiliary-graph shortest path decomposes into at most two unmodified
segments joined at the zero-weight edges around ``s_k``, so closure
distances — and the actual paths realizing them — come straight from the
cached Dijkstra trees.  The result is *exactly* KMB on ``G_k^i``, orders of
magnitude faster.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import EdgeNotFoundError, InfeasibleRequestError
from repro.graph.backend import graph_backend
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph, Node
from repro.graph.mst import kruskal_mst, prim_mst
from repro.graph.shortest_paths import INFINITY, ShortestPathTree, dijkstra
from repro.graph.spcache import ShortestPathCache
from repro.graph.tree import prune_leaves


class _VirtualSource:
    """Sentinel node type for ``s'_k`` (unique, never equal to a switch)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "s'"

    def __reduce__(self):
        # The sentinel is compared with ``is`` throughout, so pickling must
        # resolve back to the module-level singleton: results that cross a
        # process boundary (the parallel experiment runner) would otherwise
        # carry a distinct copy that fails every identity check.
        return "VIRTUAL_SOURCE"


#: The virtual source ``s'_k`` shared by every auxiliary graph.
VIRTUAL_SOURCE = _VirtualSource()


def scale_graph(graph: Graph, factor: float) -> Graph:
    """Return a copy of ``graph`` with every weight multiplied by ``factor``."""
    scaled = Graph()
    for node in graph.nodes():
        scaled.add_node(node)
    for u, v, w in graph.edges():
        scaled.add_edge(u, v, w * factor)
    return scaled


class AuxiliaryCSR:
    """``G_k^i`` compiled into CSR form: substrate arrays + one virtual row.

    The substrate block is the request's single epoch-stamped CSR
    compilation (owned by the shortest-path cache — never recompiled per
    combination), with weights read through the uniform ``b_k`` factor.
    The virtual source ``s'_k`` is one extra appended row at index
    ``num_nodes``; across the ``V_S^i`` combination sweep **only this row
    (and the zero overrides on the source's incident edges) varies**, via
    :meth:`set_combination` — everything else is shared by reference.
    """

    __slots__ = (
        "csr",
        "adjacency",
        "factor",
        "source_index",
        "virtual_index",
        "virtual_weight",
        "members",
        "zero",
    )

    def __init__(
        self,
        csr: CSRGraph,
        factor: float,
        source_index: int,
        virtual_weight: Dict[int, float],
    ) -> None:
        self.csr = csr
        #: Shared per-node ``(neighbor index, weight)`` rows (unit weights).
        self.adjacency = csr.adjacency()
        self.factor = factor
        self.source_index = source_index
        #: Index of the appended virtual-source row ``s'_k``.
        self.virtual_index = csr.num_nodes
        #: Scaled virtual-edge weight per *reachable* server index.
        self.virtual_weight = virtual_weight
        #: Current combination (server indices, combination order).
        self.members: Tuple[int, ...] = ()
        #: Current zero-edge servers (members adjacent to the source).
        self.zero: frozenset = frozenset()

    def set_combination(
        self, members: Sequence[int], zero: Iterable[int]
    ) -> None:
        """Select the combination ``V_S^i``: swap only the virtual block."""
        self.members = tuple(members)
        self.zero = frozenset(zero)

    def virtual_row(self) -> Tuple[Tuple[int, float], ...]:
        """The current virtual-source edge block ``((server, weight), ...)``."""
        virtual_weight = self.virtual_weight
        return tuple((v, virtual_weight[v]) for v in self.members)

    def weight(self, u: int, v: int) -> float:
        """Auxiliary-graph weight of edge ``(u, v)`` under the combination.

        Raises:
            EdgeNotFoundError: if ``(u, v)`` is not an auxiliary edge.
        """
        virtual = self.virtual_index
        virtual_weight = self.virtual_weight
        if u == virtual or v == virtual:
            other = v if u == virtual else u
            if other in self.members:
                return virtual_weight[other]
            raise EdgeNotFoundError(u, v)
        source = self.source_index
        zero = self.zero
        if (u == source and v in zero) or (v == source and u in zero):
            return 0.0
        for neighbor, unit in self.adjacency[u]:
            if neighbor == v:
                return unit * self.factor
        raise EdgeNotFoundError(u, v)

    def to_graph(self) -> Graph:
        """Decode the current ``G_k^i`` into a dict :class:`Graph`.

        For tests and debugging only (the solver core never materializes
        the auxiliary graph); the result carries the same node set, edge
        set, and weights as :func:`explicit_auxiliary_graph`.
        """
        nodes = self.csr.nodes
        factor = self.factor
        source = self.source_index
        zero = self.zero
        aux = Graph()
        for node in nodes:
            aux.add_node(node)
        for u, row in enumerate(self.adjacency):
            for v, unit in row:
                if v < u:
                    continue  # each undirected edge appears in both rows
                if (u == source and v in zero) or (
                    v == source and u in zero
                ):
                    aux.add_edge(nodes[u], nodes[v], 0.0)
                else:
                    aux.add_edge(nodes[u], nodes[v], unit * factor)
        aux.add_node(VIRTUAL_SOURCE)
        for v, weight in self.virtual_row():
            aux.add_edge(VIRTUAL_SOURCE, nodes[v], weight)
        return aux


class FlatContext:
    """Integer-id twin of :class:`AuxiliaryContext` (the CSR-native core).

    Built once per request from the shortest-path cache's single
    epoch-stamped CSR compilation.  Every field lives in the compiled
    view's index space, so the combination sweep shares one set of
    substrate arrays, Dijkstra distance/parent rows, and scratch buffers
    across all ``Σ C(|V_S|, j)`` evaluations — the fast evaluator decodes
    back to node objects only for the winning combination.
    """

    __slots__ = (
        "csr",
        "nodes",
        "index",
        "factor",
        "source",
        "destinations",
        "dist_rows",
        "parent_rows",
        "virtual_weight",
        "adjacent",
        "aux",
    )

    def __init__(
        self,
        csr: CSRGraph,
        factor: float,
        source: int,
        destinations: Tuple[int, ...],
        dist_rows: Dict[int, List[float]],
        parent_rows: Dict[int, List[int]],
        virtual_weight: Dict[int, float],
        adjacent: frozenset,
    ) -> None:
        self.csr = csr
        self.nodes = csr.nodes
        self.index = csr.index
        #: The uniform ``b_k`` scaling factor (rows hold unit distances).
        self.factor = factor
        self.source = source
        self.destinations = destinations
        #: Unit-cost distance row per cached origin index.
        self.dist_rows = dist_rows
        #: Predecessor-index row per cached origin index (-1 = none).
        self.parent_rows = parent_rows
        #: Scaled virtual-edge weight per reachable server index.
        self.virtual_weight = virtual_weight
        #: Server indices with a physical edge to the source.
        self.adjacent = adjacent
        #: The CSR-form auxiliary graph sharing these arrays.
        self.aux = AuxiliaryCSR(csr, factor, source, virtual_weight)


def _build_flat_context(
    cache: ShortestPathCache,
    source: Node,
    destinations: Tuple[Node, ...],
    servers: Tuple[Node, ...],
    virtual_weight: Dict[Node, float],
    adjacent: frozenset,
    bandwidth: float,
) -> FlatContext:
    """Project the cached context into the compiled view's index space.

    The distance/parent rows are memoized views over the very trees the
    dict-keyed context serves (see ``ShortestPathCache.flat_tree``), and
    the virtual weights are the *same float objects* — flat and dict
    evaluation can therefore never disagree, bit for bit.
    """
    csr = cache.compiled()
    index = csr.index
    dist_rows: Dict[int, List[float]] = {}
    parent_rows: Dict[int, List[int]] = {}
    for origin in (source,) + destinations + servers:
        origin_idx = index[origin]
        if origin_idx not in dist_rows:
            dist_row, parent_row = cache.flat_tree(origin)
            dist_rows[origin_idx] = dist_row
            parent_rows[origin_idx] = parent_row
    return FlatContext(
        csr=csr,
        factor=bandwidth,
        source=index[source],
        destinations=tuple(index[d] for d in destinations),
        dist_rows=dist_rows,
        parent_rows=parent_rows,
        virtual_weight={index[v]: w for v, w in virtual_weight.items()},
        adjacent=frozenset(index[v] for v in adjacent),
    )


@dataclass
class AuxiliaryContext:
    """Everything shared by all server combinations of one request.

    Attributes:
        scaled: topology with weights ``c_e · b_k``.
        source: the request source ``s_k``.
        destinations: the terminal set ``D_k`` (stable order).
        candidate_servers: servers eligible for the chain, reachable from the
            source.
        chain_cost: ``c_v(SC_k)`` per candidate server.
        virtual_weight: weight of the virtual edge ``(s'_k, v)``.
        adjacent_servers: candidates ``v`` with a physical edge ``(s_k, v)``
            (these trigger the zero-cost rule).
        sp: Dijkstra trees keyed by origin, covering the source, every
            destination, and every candidate server.
        flat: the integer-id projection driving the CSR-native evaluator;
            ``None`` under the dict backend (or uncached construction).
    """

    scaled: Graph
    source: Node
    destinations: Tuple[Node, ...]
    candidate_servers: Tuple[Node, ...]
    chain_cost: Dict[Node, float]
    virtual_weight: Dict[Node, float]
    adjacent_servers: frozenset
    sp: Dict[Node, ShortestPathTree] = field(repr=False)
    flat: Optional[FlatContext] = field(default=None, repr=False)

    def distance(self, origin: Node, target: Node) -> float:
        """Unmodified scaled-graph distance from a cached origin."""
        tree = self.sp[origin]
        return tree.distance.get(target, INFINITY)

    def path(self, origin: Node, target: Node) -> List[Node]:
        """Unmodified scaled-graph path ``origin → target``."""
        return self.sp[origin].path_to(target)


def build_context(
    graph: Graph,
    source: Node,
    destinations: Sequence[Node],
    servers: Sequence[Node],
    chain_cost: Dict[Node, float],
    bandwidth: float,
    cache: Optional[ShortestPathCache] = None,
) -> AuxiliaryContext:
    """Precompute the shared state for one request.

    Args:
        graph: topology with per-unit link costs as weights.
        source: ``s_k``.
        destinations: ``D_k``.
        servers: eligible servers (already filtered for compute feasibility
            by capacitated callers).
        chain_cost: ``c_v(SC_k)`` for each eligible server.
        bandwidth: ``b_k``.
        cache: optional shortest-path cache bound to ``graph``.  When given,
            Dijkstra trees come from the cache with distances scaled lazily
            by ``bandwidth`` (uniform scaling preserves shortest paths), and
            no scaled graph copy is materialized.  When ``None``, the
            context is built the reference way: an explicit ``c_e · b_k``
            copy of the topology plus one fresh Dijkstra per origin.

    Raises:
        InfeasibleRequestError: if a destination is unreachable from the
            source, or no server is reachable.
        ValueError: if ``cache`` is bound to a different graph object.
    """
    if cache is not None:
        if cache.graph is not graph:
            raise ValueError(
                "shortest-path cache is bound to a different graph than the "
                "one passed to build_context"
            )
        return _build_context_cached(
            cache, source, destinations, servers, chain_cost, bandwidth
        )
    scaled = scale_graph(graph, bandwidth)
    # This is the *reference* (uncached) construction the differential
    # harness diffs the cached engine against — it must keep running fresh
    # Dijkstras on the materialized scaled copy, by definition.
    # repro-lint: disable=RL001
    sp: Dict[Node, ShortestPathTree] = {source: dijkstra(scaled, source)}
    source_tree = sp[source]

    for destination in destinations:
        if not source_tree.reaches(destination):
            raise InfeasibleRequestError(
                f"destination {destination!r} unreachable from {source!r}"
            )
        sp[destination] = dijkstra(scaled, destination)  # repro-lint: disable=RL001

    reachable_servers = tuple(
        v for v in servers if source_tree.reaches(v)
    )
    if not reachable_servers:
        raise InfeasibleRequestError(
            f"no server reachable from source {source!r}"
        )
    for server in reachable_servers:
        if server not in sp:
            sp[server] = dijkstra(scaled, server)  # repro-lint: disable=RL001

    virtual_weight = {
        v: source_tree.distance[v] + chain_cost[v] for v in reachable_servers
    }
    adjacent = frozenset(
        v for v in reachable_servers if scaled.has_edge(source, v)
    )
    return AuxiliaryContext(
        scaled=scaled,
        source=source,
        destinations=tuple(dict.fromkeys(destinations)),
        candidate_servers=reachable_servers,
        chain_cost=dict(chain_cost),
        virtual_weight=virtual_weight,
        adjacent_servers=adjacent,
        sp=sp,
    )


def _build_context_cached(
    cache: ShortestPathCache,
    source: Node,
    destinations: Sequence[Node],
    servers: Sequence[Node],
    chain_cost: Dict[Node, float],
    bandwidth: float,
) -> AuxiliaryContext:
    """Cache-backed :func:`build_context`: no graph copy, no fresh Dijkstra.

    Uniform scaling by ``b_k`` preserves shortest paths, so every tree is
    the cached unit-cost tree with distances multiplied lazily; the scaled
    topology is a read-only view with the same property.
    """
    scaled = cache.scaled_view(bandwidth)
    sp: Dict[Node, ShortestPathTree] = {
        source: cache.scaled_tree(source, bandwidth)
    }
    source_tree = sp[source]

    for destination in destinations:
        if not source_tree.reaches(destination):
            raise InfeasibleRequestError(
                f"destination {destination!r} unreachable from {source!r}"
            )

    reachable_servers = tuple(
        v for v in servers if source_tree.reaches(v)
    )
    if not reachable_servers:
        raise InfeasibleRequestError(
            f"no server reachable from source {source!r}"
        )

    # Feasibility established: fill every miss in one batched sweep (a
    # dijkstra_many over the cache's compiled view under the CSR backend),
    # then wrap the now-cached unit trees.  The trees are the ones the
    # per-origin pulls below would have computed lazily — warming moves
    # work, it never changes a result.
    cache.warm(list(destinations) + list(reachable_servers))
    for destination in destinations:
        sp[destination] = cache.scaled_tree(destination, bandwidth)
    for server in reachable_servers:
        if server not in sp:
            sp[server] = cache.scaled_tree(server, bandwidth)

    virtual_weight = {
        v: source_tree.distance[v] + chain_cost[v] for v in reachable_servers
    }
    adjacent = frozenset(
        v for v in reachable_servers if scaled.has_edge(source, v)
    )
    unique_destinations = tuple(dict.fromkeys(destinations))
    # Under the CSR backend, project the context into the compiled view's
    # index space once; the whole combination sweep then runs on flat
    # arrays (see fasteval.CSRCombinationEvaluator) and decodes only the
    # winning tree.
    flat: Optional[FlatContext] = None
    if graph_backend() == "csr":
        flat = _build_flat_context(
            cache,
            source,
            unique_destinations,
            reachable_servers,
            virtual_weight,
            adjacent,
            bandwidth,
        )
    return AuxiliaryContext(
        scaled=scaled,
        source=source,
        destinations=unique_destinations,
        candidate_servers=reachable_servers,
        chain_cost=dict(chain_cost),
        virtual_weight=virtual_weight,
        adjacent_servers=adjacent,
        sp=sp,
        flat=flat,
    )


# ----------------------------------------------------------------------
# modified (auxiliary) distances between real nodes
# ----------------------------------------------------------------------
#
# With the zero-cost edges Z = {(s_k, v) : v ∈ combination, (s_k, v) ∈ E},
# any shortest auxiliary path between real nodes a, b decomposes as at most
# two unmodified segments joined at s_k through zero edges.  The four cases:
#   d0: a ⇝ b                                   (no zero edge)
#   d1: a ⇝ s_k, (s_k,v)=0, v ⇝ b               (one zero edge, exit side)
#   d2: a ⇝ v, (v,s_k)=0, s_k ⇝ b               (one zero edge, entry side)
#   d3: a ⇝ v1, (v1,s_k)=0, (s_k,v2)=0, v2 ⇝ b  (two zero edges)
# Every candidate corresponds to a real walk in G_k^i, so the minimum over
# cases is the exact auxiliary distance.

_CASE_DIRECT = 0
_CASE_EXIT = 1
_CASE_ENTRY = 2
_CASE_DOUBLE = 3


def _modified_distance(
    ctx: AuxiliaryContext, zero_servers: Sequence[Node], a: Node, b: Node
) -> Tuple[float, int, Optional[Node], Optional[Node]]:
    """Return ``(distance, case, v1, v2)`` for the aux path ``a → b``.

    ``a`` and ``b`` must both be cached Dijkstra origins... ``a`` must be;
    distances *to* ``b`` are read from ``a``'s tree, distances involving the
    zero shortcuts read from both trees, so both ends must be cached.
    """
    dist_a = ctx.sp[a].distance
    dist_b = ctx.sp[b].distance
    best = (dist_a.get(b, INFINITY), _CASE_DIRECT, None, None)
    if zero_servers:
        a_to_source = dist_a.get(ctx.source, INFINITY)
        b_to_source = dist_b.get(ctx.source, INFINITY)
        exit_v = min(zero_servers, key=lambda v: dist_b.get(v, INFINITY))
        entry_v = min(zero_servers, key=lambda v: dist_a.get(v, INFINITY))
        d1 = a_to_source + dist_b.get(exit_v, INFINITY)
        if d1 < best[0]:
            best = (d1, _CASE_EXIT, None, exit_v)
        d2 = dist_a.get(entry_v, INFINITY) + b_to_source
        if d2 < best[0]:
            best = (d2, _CASE_ENTRY, entry_v, None)
        d3 = dist_a.get(entry_v, INFINITY) + dist_b.get(exit_v, INFINITY)
        if d3 < best[0]:
            best = (d3, _CASE_DOUBLE, entry_v, exit_v)
    return best


def _modified_path(
    ctx: AuxiliaryContext,
    a: Node,
    b: Node,
    case: int,
    v1: Optional[Node],
    v2: Optional[Node],
) -> List[Node]:
    """Materialize the node path chosen by :func:`_modified_distance`."""
    if case == _CASE_DIRECT:
        return ctx.sp[a].path_to(b)
    if case == _CASE_EXIT:
        assert v2 is not None
        first = ctx.sp[a].path_to(ctx.source)
        second = list(reversed(ctx.sp[b].path_to(v2)))
        return first + second  # source→v2 hop is the zero edge
    if case == _CASE_ENTRY:
        assert v1 is not None
        first = ctx.sp[a].path_to(v1)
        second = list(reversed(ctx.sp[b].path_to(ctx.source)))
        return first + second  # v1→source hop is the zero edge
    if case == _CASE_DOUBLE:
        assert v1 is not None and v2 is not None
        first = ctx.sp[a].path_to(v1)
        second = list(reversed(ctx.sp[b].path_to(v2)))
        if v1 == v2:  # degenerate: both zero hops collapse
            return first + second[1:]
        return first + [ctx.source] + second
    raise AssertionError(f"unknown case {case}")


@dataclass(frozen=True)
class SubsetSolution:
    """KMB's answer on the auxiliary graph of one server combination.

    Attributes:
        combination: the server combination ``V_S^i``.
        used_servers: servers whose virtual edge the final tree retained.
        cost: auxiliary-graph weight of the pruned tree (the paper's
            ``c(T_k^i)``).
        tree: the pruned Steiner tree, still containing
            :data:`VIRTUAL_SOURCE` and its virtual edges.
    """

    combination: Tuple[Node, ...]
    used_servers: Tuple[Node, ...]
    cost: float
    tree: Graph


def evaluate_combination(
    ctx: AuxiliaryContext, combination: Sequence[Node]
) -> Optional[SubsetSolution]:
    """Run KMB on ``G_k^i`` for one server combination.

    Returns ``None`` when no member of the combination is reachable (the
    auxiliary graph cannot connect ``s'_k`` to the destinations).
    """
    members = [v for v in combination if v in ctx.virtual_weight]
    if not members:
        return None
    zero_servers = [v for v in members if v in ctx.adjacent_servers]
    terminals: List[Node] = [VIRTUAL_SOURCE] + list(ctx.destinations)

    # --- metric closure over {s'} ∪ D_k -------------------------------
    closure = Graph()
    for terminal in terminals:
        closure.add_node(terminal)
    pair_choice: Dict[Tuple[Node, Node], Tuple] = {}

    destinations = ctx.destinations
    for i, x in enumerate(destinations):
        for y in destinations[i + 1 :]:
            dist, case, v1, v2 = _modified_distance(ctx, zero_servers, x, y)
            if dist == INFINITY:
                return None  # disconnected (capacitated pruning can cause this)
            closure.add_edge(x, y, dist)
            pair_choice[(x, y)] = ("real", case, v1, v2)

    for y in destinations:
        best = (INFINITY, None, _CASE_DIRECT, None, None)
        for v in members:
            dist, case, v1, v2 = _modified_distance(ctx, zero_servers, v, y)
            total = ctx.virtual_weight[v] + dist
            if total < best[0]:
                best = (total, v, case, v1, v2)
        if best[1] is None or best[0] == INFINITY:
            return None
        closure.add_edge(VIRTUAL_SOURCE, y, best[0])
        pair_choice[(VIRTUAL_SOURCE, y)] = ("virtual", best[1], best[2], best[3], best[4])

    closure_mst = prim_mst(closure)

    # --- expansion into the auxiliary graph ---------------------------
    expanded = Graph()

    def aux_weight(u: Node, v: Node) -> float:
        if (u == ctx.source and v in zero_servers) or (
            v == ctx.source and u in zero_servers
        ):
            return 0.0
        return ctx.scaled.weight(u, v)

    def add_real_path(path: List[Node]) -> None:
        for u, v in zip(path, path[1:]):
            expanded.add_edge(u, v, aux_weight(u, v))

    for u, v, _ in closure_mst.edges():
        a, b = (u, v) if (u, v) in pair_choice else (v, u)
        choice = pair_choice[(a, b)]
        if choice[0] == "real":
            _, case, v1, v2 = choice
            add_real_path(_modified_path(ctx, a, b, case, v1, v2))
        else:
            _, server, case, v1, v2 = choice
            expanded.add_edge(
                VIRTUAL_SOURCE, server, ctx.virtual_weight[server]
            )
            add_real_path(_modified_path(ctx, server, b, case, v1, v2))

    # --- second MST + pruning (KMB steps 4-5) --------------------------
    refined = kruskal_mst(expanded)
    pruned = prune_leaves(refined, keep=terminals)

    used = tuple(
        sorted(
            (v for v in pruned.neighbors(VIRTUAL_SOURCE)),
            key=repr,
        )
    ) if pruned.has_node(VIRTUAL_SOURCE) else ()
    if not used:
        return None  # degenerate: tree failed to retain the virtual source
    return SubsetSolution(
        combination=tuple(members),
        used_servers=used,
        cost=pruned.total_weight(),
        tree=pruned,
    )


def explicit_auxiliary_graph(
    ctx: AuxiliaryContext, combination: Sequence[Node]
) -> Graph:
    """Materialize ``G_k^i`` as an ordinary :class:`Graph`.

    Used by the exact solver and by tests that cross-check the fast
    analytic evaluator against textbook KMB on the real auxiliary graph.
    """
    members = [v for v in combination if v in ctx.virtual_weight]
    aux = ctx.scaled.copy()
    aux.add_node(VIRTUAL_SOURCE)
    for v in members:
        aux.add_edge(VIRTUAL_SOURCE, v, ctx.virtual_weight[v])
        if v in ctx.adjacent_servers:
            aux.set_weight(ctx.source, v, 0.0)
    return aux


def iter_combinations(
    servers: Sequence[Node], max_servers: int
) -> Iterable[Tuple[Node, ...]]:
    """Yield every non-empty server combination of size ≤ ``max_servers``.

    Mirrors the paper's enumeration (its worked example counts all subsets
    of size 1 … K).
    """
    ordered = list(servers)
    limit = min(max_servers, len(ordered))
    for size in range(1, limit + 1):
        yield from itertools.combinations(ordered, size)
