"""Pseudo-multicast trees: the routing structure the paper's solvers emit.

A *pseudo-multicast tree* (Section III-B, Fig. 3) is the routing graph of an
NFV-enabled multicast request.  It is derived from a tree but is generally
not one: the packet first travels from the source ``s_k`` to one or more
servers hosting the service chain, and processed packets may be sent *back
up* part of the tree before being forwarded on to destinations, so some
physical links carry the stream more than once.

:class:`PseudoMulticastTree` captures exactly what downstream code needs:

- which servers host the chain (≤ K of them),
- the unprocessed path from the source to each server,
- the processed-traffic distribution edges,
- per-link usage multiplicity (for capacity allocation),
- the total operational cost, split into bandwidth and compute parts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Tuple

from repro.exceptions import ReproError
from repro.graph.graph import Graph, edge_key
from repro.network.sdn import SDNetwork
from repro.workload.request import MulticastRequest

Node = Hashable
EdgeKey = Tuple[Node, Node]


@dataclass(frozen=True)
class PseudoMulticastTree:
    """The realized routing of one NFV-enabled multicast request.

    Attributes:
        request: the request this tree implements.
        servers: the switches whose servers run the service chain.
        server_paths: for each server, the node path carrying *unprocessed*
            traffic from the source to that server.
        distribution_edges: undirected physical edges carrying *processed*
            traffic toward destinations (each listed once).
        return_paths: extra node paths along which processed traffic is sent
            back up a tree (the ``p_{v,u}`` detours of Algorithm 2); empty
            for ``Appro_Multi`` trees.
        bandwidth_cost: total cost of bandwidth usage (``Σ c_e · b_k`` with
            multiplicity).
        compute_cost: total cost of hosting the chain (``Σ c_v(SC_k)``).
    """

    request: MulticastRequest
    servers: Tuple[Node, ...]
    server_paths: Mapping[Node, Tuple[Node, ...]]
    distribution_edges: Tuple[Tuple[Node, Node], ...]
    return_paths: Tuple[Tuple[Node, ...], ...]
    bandwidth_cost: float
    compute_cost: float

    def __post_init__(self) -> None:
        if not self.servers:
            raise ReproError("a pseudo-multicast tree needs >= 1 server")
        missing = [s for s in self.servers if s not in self.server_paths]
        if missing:
            raise ReproError(f"servers without source paths: {missing!r}")

    @property
    def total_cost(self) -> float:
        """The implementation cost the paper minimizes."""
        return self.bandwidth_cost + self.compute_cost

    @property
    def num_servers(self) -> int:
        """How many servers host the chain (the paper's ``l ≤ K``)."""
        return len(self.servers)

    # ------------------------------------------------------------------
    # link usage
    # ------------------------------------------------------------------
    def edge_usage(self) -> Dict[EdgeKey, int]:
        """Return how many times each physical link carries the stream.

        Multiplicity counts one traversal per appearance in a source→server
        path, one per distribution edge, and one per return-path hop.  This
        is the amount the admission machinery multiplies by ``b_k`` when
        reserving bandwidth.
        """
        usage: Counter = Counter()
        for path in self.server_paths.values():
            for u, v in zip(path, path[1:]):
                usage[edge_key(u, v)] += 1
        for u, v in self.distribution_edges:
            usage[edge_key(u, v)] += 1
        for path in self.return_paths:
            for u, v in zip(path, path[1:]):
                usage[edge_key(u, v)] += 1
        return dict(usage)

    def touched_links(self) -> List[EdgeKey]:
        """Return every distinct physical link the stream crosses."""
        return list(self.edge_usage())

    # ------------------------------------------------------------------
    # controller integration
    # ------------------------------------------------------------------
    def routing_hops(self) -> List[Tuple[Node, Node]]:
        """Return directed hops for flow-rule installation.

        Source→server paths are directed away from the source; return paths
        away from the server; distribution edges are oriented by a BFS from
        the set of injection points (servers and return-path endpoints).
        """
        hops: List[Tuple[Node, Node]] = []
        for path in self.server_paths.values():
            hops.extend(zip(path, path[1:]))
        for path in self.return_paths:
            hops.extend(zip(path, path[1:]))

        # Orient distribution edges away from processed-traffic injection
        # points using BFS over the undirected distribution structure.
        if self.distribution_edges:
            adjacency: Dict[Node, List[Node]] = {}
            for u, v in self.distribution_edges:
                adjacency.setdefault(u, []).append(v)
                adjacency.setdefault(v, []).append(u)
            roots = [s for s in self.servers if s in adjacency]
            # processed traffic is visible along the whole return path, so
            # any of its nodes can feed a distribution subtree (mirrors the
            # flood in validate_pseudo_tree)
            for path in self.return_paths:
                roots.extend(node for node in path if node in adjacency)
            if not roots:  # disconnected oddity: fall back to any endpoint
                roots = [next(iter(adjacency))]
            seen = set(roots)
            frontier = list(dict.fromkeys(roots))
            while frontier:
                node = frontier.pop(0)
                for neighbor in adjacency.get(node, ()):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        hops.append((node, neighbor))
                        frontier.append(neighbor)
        return hops

    def describe(self) -> str:
        """Return a compact multi-line description for logs and examples."""
        lines = [
            f"pseudo-multicast tree for r{self.request.request_id}: "
            f"cost={self.total_cost:.3f} "
            f"(bandwidth={self.bandwidth_cost:.3f}, compute={self.compute_cost:.3f})",
            f"  servers: {sorted(map(repr, self.servers))}",
        ]
        for server, path in sorted(self.server_paths.items(), key=lambda i: repr(i[0])):
            lines.append(f"  source path to {server!r}: {' -> '.join(map(repr, path))}")
        lines.append(f"  distribution edges: {len(self.distribution_edges)}")
        if self.return_paths:
            lines.append(f"  return paths: {len(self.return_paths)}")
        return "\n".join(lines)


def operational_cost(
    network: SDNetwork, tree: PseudoMulticastTree
) -> float:
    """Recompute the tree's operational cost from network unit prices.

    Used by tests to confirm that solver-reported costs match first
    principles: ``Σ_links usage · b_k · c_e  +  Σ_servers c_v · C_v(SC_k)``.
    """
    bandwidth = sum(
        count * tree.request.bandwidth * network.link_unit_cost(u, v)
        for (u, v), count in tree.edge_usage().items()
    )
    compute = sum(
        network.chain_cost(server, tree.request.compute_demand)
        for server in tree.servers
    )
    return bandwidth + compute


def validate_pseudo_tree(
    network: SDNetwork, tree: PseudoMulticastTree
) -> None:
    """Check the semantic invariants of a pseudo-multicast tree.

    Raises ``AssertionError`` when a guarantee is violated:

    1. every used server really has a server attached;
    2. every source→server path starts at the source, ends at the server,
       and walks existing links;
    3. every destination receives *processed* traffic: it is reachable from
       some server (or return-path injection point) through distribution
       edges;
    4. distribution edges exist in the topology.
    """
    request = tree.request
    for server in tree.servers:
        if not network.is_server(server):
            raise AssertionError(f"{server!r} is not a server switch")
    graph = network.graph
    for server, path in tree.server_paths.items():
        if not path or path[0] != request.source or path[-1] != server:
            raise AssertionError(
                f"source path for {server!r} malformed: {path!r}"
            )
        for u, v in zip(path, path[1:]):
            if not graph.has_edge(u, v):
                raise AssertionError(f"path uses missing link ({u!r}, {v!r})")
    for u, v in tree.distribution_edges:
        if not graph.has_edge(u, v):
            raise AssertionError(
                f"distribution edge ({u!r}, {v!r}) not in topology"
            )
    for path in tree.return_paths:
        for u, v in zip(path, path[1:]):
            if not graph.has_edge(u, v):
                raise AssertionError(
                    f"return path uses missing link ({u!r}, {v!r})"
                )

    # processed traffic flood: servers emit processed packets, and every
    # node on a return path sees them pass by
    processed = Graph()
    for u, v in tree.distribution_edges:
        processed.add_edge(u, v, 1.0)
    sources = set(tree.servers)
    for path in tree.return_paths:
        sources.update(path)
    reachable = set(sources)
    # flood traversal order cannot affect the reachable *set*; only
    # membership is read below
    # repro-lint: disable=RL010 — order-independent result, justified above
    frontier = [node for node in sources if processed.has_node(node)]
    while frontier:
        node = frontier.pop()
        for neighbor in processed.neighbors(node):
            if neighbor not in reachable:
                reachable.add(neighbor)
                frontier.append(neighbor)
    unreached = [d for d in request.destinations if d not in reachable]
    if unreached:
        raise AssertionError(
            f"destinations never receive processed traffic: {unreached!r}"
        )
