"""``Appro_Multi`` — the paper's 2K-approximation (Algorithm 1).

Given an NFV-enabled multicast request ``r_k = (s_k, D_k; b_k, SC_k)`` and a
budget of at most ``K`` servers for the service chain, the algorithm:

1. enumerates every server combination ``V_S^i`` of size 1 … K;
2. builds the auxiliary graph ``G_k^i`` (virtual source wired to the
   combination's servers; see :mod:`repro.core.auxiliary`);
3. finds a KMB Steiner tree spanning ``{s'_k} ∪ D_k`` in each ``G_k^i``;
4. returns the cheapest tree over all combinations as a pseudo-multicast
   tree.

Theorem 1 guarantees the result costs at most ``2K`` times the optimal
pseudo-multicast tree.  The capacitated variant ``Appro_Multi_Cap``
(Section IV-C) runs the same search on the residual network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from repro.core.auxiliary import (
    VIRTUAL_SOURCE,
    AuxiliaryContext,
    SubsetSolution,
    build_context,
    evaluate_combination,
    iter_combinations,
)
from repro.core.fasteval import AnySolution, make_evaluator
from repro.core.pseudo_tree import PseudoMulticastTree
from repro.exceptions import InfeasibleRequestError
from repro.network.sdn import SDNetwork
from repro.obs import (
    inc as _obs_inc,
    span as _obs_span,
    trace_instant as _obs_instant,
)
from repro.workload.request import MulticastRequest

Node = Hashable

#: The paper's evaluation default (Section VI-A): at most 3 servers.
DEFAULT_MAX_SERVERS = 3


@dataclass(frozen=True)
class ApproMultiResult:
    """Outcome of one ``Appro_Multi`` invocation.

    Attributes:
        tree: the chosen pseudo-multicast tree.
        combinations_evaluated: how many server combinations were solved.
        combinations_pruned: combinations skipped by the lower-bound prune.
    """

    tree: PseudoMulticastTree
    combinations_evaluated: int
    combinations_pruned: int


def _solution_to_tree(
    ctx: AuxiliaryContext,
    solution: AnySolution,
    request: MulticastRequest,
) -> PseudoMulticastTree:
    """Convert a winning auxiliary-graph tree into a pseudo-multicast tree."""
    distribution = tuple(
        (u, v)
        for u, v, _ in solution.tree.edges()
        if u is not VIRTUAL_SOURCE and v is not VIRTUAL_SOURCE
    )
    server_paths = {
        server: tuple(ctx.path(ctx.source, server))
        for server in solution.used_servers
    }
    compute_cost = sum(ctx.chain_cost[v] for v in solution.used_servers)
    return PseudoMulticastTree(
        request=request,
        servers=solution.used_servers,
        server_paths=server_paths,
        distribution_edges=distribution,
        return_paths=(),
        bandwidth_cost=solution.cost - compute_cost,
        compute_cost=compute_cost,
    )


def _search(
    ctx: AuxiliaryContext,
    request: MulticastRequest,
    max_servers: int,
) -> ApproMultiResult:
    """Enumerate combinations and keep the cheapest KMB tree.

    Uses the memoized evaluator (:func:`make_evaluator` picks the
    CSR-native flat core when the context carries a flat workspace, the
    dict :class:`~repro.core.fasteval.CombinationEvaluator` otherwise —
    bit-identical either way) in two passes: a cheap lower-bound pre-pass
    (no trees computed), then full evaluation in *ascending bound order*
    so the incumbent tightens as early as possible and prunes most full
    evaluations.  The result is exactly that of :func:`_search_reference`
    in every case, including cost ties: a combination is skipped only when
    its admissible bound strictly exceeds the incumbent (it can then
    neither beat nor tie the final answer), and among evaluated equal-cost
    solutions the one earliest in the reference enumeration order wins —
    the same lexicographic ``(cost, index)`` minimum the reference's
    first-strict-improvement loop selects.  Only the evaluated/pruned
    statistics may differ.
    """
    evaluator = make_evaluator(ctx)
    with _obs_span("enumerate"):
        combinations = list(
            iter_combinations(ctx.candidate_servers, max_servers)
        )
        bounds = [evaluator.lower_bound(c) for c in combinations]
        order = sorted(range(len(combinations)), key=bounds.__getitem__)

    best: Optional[AnySolution] = None
    best_index = -1
    evaluated = 0
    pruned = 0
    with _obs_span("evaluate"):
        for index in order:
            if best is not None and bounds[index] > best.cost:
                # Everything later in the order is bounded even higher.
                pruned += len(combinations) - evaluated - pruned
                break
            solution = evaluator.evaluate(combinations[index])
            evaluated += 1
            if solution is None:
                continue
            if (
                best is None
                or solution.cost < best.cost
                # Exact equality is intentional: the lowest-index tie-break
                # must agree bit-for-bit with the seed engine; a tolerance
                # would merge genuinely distinct costs and change figures.
                # repro-lint: disable=RL004
                or (solution.cost == best.cost and index < best_index)
            ):
                best = solution
                best_index = index
    _obs_inc("appro_multi.combinations_evaluated", evaluated)
    _obs_inc("appro_multi.combinations_pruned", pruned)
    if best is None:
        raise InfeasibleRequestError(
            f"request {request.request_id}: no feasible pseudo-multicast tree"
        )
    return ApproMultiResult(
        tree=_solution_to_tree(ctx, best, request),
        combinations_evaluated=evaluated,
        combinations_pruned=pruned,
    )


def _search_reference(
    ctx: AuxiliaryContext,
    request: MulticastRequest,
    max_servers: int,
) -> ApproMultiResult:
    """The seed search loop, kept verbatim as the differential baseline."""
    best: Optional[SubsetSolution] = None
    evaluated = 0
    pruned = 0
    for combination in iter_combinations(ctx.candidate_servers, max_servers):
        # Lower bound: any tree for this combination contains at least one
        # virtual edge, so it cannot beat `best` if even the cheapest
        # virtual edge already does not.
        if best is not None:
            floor = min(ctx.virtual_weight[v] for v in combination)
            if floor >= best.cost:
                pruned += 1
                continue
        solution = evaluate_combination(ctx, combination)
        evaluated += 1
        if solution is None:
            continue
        if best is None or solution.cost < best.cost:
            best = solution
    if best is None:
        raise InfeasibleRequestError(
            f"request {request.request_id}: no feasible pseudo-multicast tree"
        )
    return ApproMultiResult(
        tree=_solution_to_tree(ctx, best, request),
        combinations_evaluated=evaluated,
        combinations_pruned=pruned,
    )


def appro_multi(
    network: SDNetwork,
    request: MulticastRequest,
    max_servers: int = DEFAULT_MAX_SERVERS,
) -> PseudoMulticastTree:
    """Solve the *uncapacitated* NFV-enabled multicasting problem.

    Args:
        network: the SDN (only its topology, unit costs, and server
            locations are read; capacities are ignored — Case 1 of the
            paper's problem definitions).
        request: the multicast request.
        max_servers: the paper's constant ``K ≥ 1``.

    Returns:
        A pseudo-multicast tree whose cost is within ``2K`` of optimal.

    Raises:
        InfeasibleRequestError: if the topology cannot connect the source,
            a server, and every destination.
    """
    return appro_multi_detailed(network, request, max_servers).tree


def appro_multi_detailed(
    network: SDNetwork,
    request: MulticastRequest,
    max_servers: int = DEFAULT_MAX_SERVERS,
) -> ApproMultiResult:
    """Like :func:`appro_multi` but also reports search statistics."""
    if max_servers < 1:
        raise ValueError(f"K must be >= 1, got {max_servers}")
    with _obs_span("appro_multi"):
        _obs_inc("appro_multi.invocations")
        servers = network.server_nodes
        chain_cost = {
            v: network.chain_cost(v, request.compute_demand) for v in servers
        }
        with _obs_span("aux_build"):
            ctx = build_context(
                graph=network.graph,
                source=request.source,
                destinations=sorted(request.destinations, key=repr),
                servers=servers,
                chain_cost=chain_cost,
                bandwidth=request.bandwidth,
                cache=network.path_cache(),
            )
        result = _search(ctx, request, max_servers)
        _obs_instant(
            "appro_multi.solved",
            servers=[str(s) for s in result.tree.servers],
            cost=result.tree.total_cost,
        )
        return result


def appro_multi_reference(
    network: SDNetwork,
    request: MulticastRequest,
    max_servers: int = DEFAULT_MAX_SERVERS,
) -> PseudoMulticastTree:
    """The seed ``Appro_Multi`` engine: no cache, no memoized evaluator.

    Builds an explicit ``c_e · b_k`` topology copy, runs one fresh Dijkstra
    per origin, and evaluates every combination from scratch.  Kept so the
    differential test harness and the micro-benchmark can hold the cached
    engine to the seed's exact behaviour.
    """
    if max_servers < 1:
        raise ValueError(f"K must be >= 1, got {max_servers}")
    servers = network.server_nodes
    chain_cost = {
        v: network.chain_cost(v, request.compute_demand) for v in servers
    }
    ctx = build_context(
        graph=network.graph,
        source=request.source,
        destinations=sorted(request.destinations, key=repr),
        servers=servers,
        chain_cost=chain_cost,
        bandwidth=request.bandwidth,
    )
    return _search_reference(ctx, request, max_servers).tree


def appro_multi_cap(
    network: SDNetwork,
    request: MulticastRequest,
    max_servers: int = DEFAULT_MAX_SERVERS,
) -> PseudoMulticastTree:
    """Solve the *capacitated* problem (``Appro_Multi_Cap``, Section IV-C).

    Builds ``G' = (V, E')`` keeping only links whose residual bandwidth is
    at least ``b_k`` and servers whose residual compute covers
    ``C_v(SC_k)``, then runs ``Appro_Multi`` on it.

    Raises:
        InfeasibleRequestError: if the pruned network has no component
            containing the source, at least one eligible server, and every
            destination — the paper's rejection condition.
    """
    if max_servers < 1:
        raise ValueError(f"K must be >= 1, got {max_servers}")
    with _obs_span("appro_multi_cap"):
        _obs_inc("appro_multi_cap.invocations")
        # The residual graph changes with every allocation, so the cache is
        # keyed on the network's epoch counter: a fresh epoch (or bandwidth
        # threshold) rebuilds the pruned topology and its Dijkstra trees.
        cache = network.residual_path_cache(min_bandwidth=request.bandwidth)
        eligible = network.feasible_servers(request.compute_demand)
        if not eligible:
            raise InfeasibleRequestError(
                f"request {request.request_id}: no server has "
                f"{request.compute_demand:.0f} MHz available"
            )
        chain_cost = {
            v: network.chain_cost(v, request.compute_demand) for v in eligible
        }
        with _obs_span("aux_build"):
            ctx = build_context(
                graph=cache.graph,
                source=request.source,
                destinations=sorted(request.destinations, key=repr),
                servers=eligible,
                chain_cost=chain_cost,
                bandwidth=request.bandwidth,
                cache=cache,
            )
        return _search(ctx, request, max_servers).tree
