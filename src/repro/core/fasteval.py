"""Memoized combination evaluation for ``Appro_Multi`` (cost-exact).

``Appro_Multi`` evaluates up to ``Σ_{j≤K} C(|V_S|, j)`` server combinations
per request, and :func:`~repro.core.auxiliary.evaluate_combination` spends
most of its time recomputing quantities that depend only on the *zero-server
set* ``Z = combination ∩ adjacent_servers`` — not on the combination itself:

- the destination–destination closure distances (and the case decomposition
  choosing them),
- the per-server modified-distance rows feeding the ``s'`` closure edges,
- the expanded real-graph paths realizing each closure edge.

Since ``K`` is small and only servers adjacent to the source produce zero
edges, the number of distinct zero sets is far smaller than the number of
combinations, so :class:`CombinationEvaluator` memoizes all three by zero
set and replays :func:`~repro.core.auxiliary.evaluate_combination` from the
memos.  The replay constructs byte-identical :class:`~repro.graph.graph.Graph`
objects (same node/edge insertion order, same floats) and runs the very same
``prim_mst`` / ``kruskal_mst`` / ``prune_leaves`` calls, so the returned
:class:`~repro.core.auxiliary.SubsetSolution` is **bit-for-bit identical** to
the reference evaluator's — the differential test harness holds this to
account on seeded instances.

:meth:`CombinationEvaluator.lower_bound` additionally exposes an admissible
bound — any tree for the combination contains, for every destination ``y``,
a path ``s' → y`` of weight at least the closure edge ``(s', y)`` — which the
search uses to skip whole combinations without touching an MST.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.auxiliary import (
    VIRTUAL_SOURCE,
    AuxiliaryContext,
    SubsetSolution,
    _modified_distance,
    _modified_path,
)
from repro.graph.graph import Graph, Node
from repro.graph.mst import kruskal_mst, prim_mst
from repro.graph.shortest_paths import INFINITY
from repro.graph.tree import prune_leaves
from repro.obs import inc as _obs_inc, span as _obs_span

#: ``(distance, case, v1, v2)`` as produced by ``_modified_distance``.
_Entry = Tuple[float, int, Optional[Node], Optional[Node]]
#: An expanded path as ``(u, v, weight)`` triples in traversal order.
_EdgeList = Tuple[Tuple[Node, Node, float], ...]

#: Sentinel returned by :meth:`CombinationEvaluator.evaluate` when the
#: admissible lower bound already proves the combination cannot beat the
#: incumbent, so no tree was (or needed to be) computed.
PRUNED = object()


class _ClosureData:
    """Dest–dest closure state shared by every combination of one zero set."""

    __slots__ = ("template", "pair_choice")

    def __init__(self, template: Graph, pair_choice: Dict) -> None:
        #: Closure graph with ``s'`` present but its edges not yet added.
        self.template = template
        #: ``(x, y) → ("real", case, v1, v2)`` for destination pairs.
        self.pair_choice = pair_choice


class CombinationEvaluator:
    """Evaluate server combinations of one request with shared memos.

    One instance per :class:`~repro.core.auxiliary.AuxiliaryContext`; not
    thread-safe (the search is sequential).
    """

    __slots__ = (
        "_ctx",
        "_closures",
        "_vrows",
        "_paths",
        "_solutions",
        "_winner_memo",
    )

    def __init__(self, ctx: AuxiliaryContext) -> None:
        self._ctx = ctx
        #: zero set → closure data, or ``None`` if a dest pair is unreachable.
        self._closures: Dict[Tuple[Node, ...], Optional[_ClosureData]] = {}
        #: ``(zero set, server)`` → per-destination modified-distance row.
        self._vrows: Dict[Tuple, Tuple[_Entry, ...]] = {}
        #: ``(zero set, a, b)`` → expanded edges realizing the closure edge.
        self._paths: Dict[Tuple, _EdgeList] = {}
        #: ``(zero set, members)`` → (winner list, lower bound); shared
        #: between the bound pre-pass and the evaluation itself.
        self._winner_memo: Dict[Tuple, Tuple[Optional[List[Tuple]], float]] = {}
        #: ``(zero set, winner vector)`` → finished solution.  The KMB tree
        #: depends on the combination only through the zero set and the
        #: per-destination ``s'``-edge winners, so combinations sharing both
        #: share the whole answer.
        self._solutions: Dict[Tuple, Optional[SubsetSolution]] = {}

    # ------------------------------------------------------------------
    # memoized building blocks
    # ------------------------------------------------------------------
    def _closure(self, zero_key: Tuple[Node, ...]) -> Optional[_ClosureData]:
        """Return the dest–dest closure for a zero set (``None``: infeasible)."""
        try:
            return self._closures[zero_key]
        except KeyError:
            pass
        ctx = self._ctx
        destinations = ctx.destinations
        template = Graph()
        template.add_node(VIRTUAL_SOURCE)
        for terminal in destinations:
            template.add_node(terminal)
        pair_choice: Dict[Tuple[Node, Node], Tuple] = {}
        data: Optional[_ClosureData] = _ClosureData(template, pair_choice)
        for i, x in enumerate(destinations):
            for y in destinations[i + 1 :]:
                dist, case, v1, v2 = _modified_distance(ctx, zero_key, x, y)
                if dist == INFINITY:
                    data = None  # capacitated pruning disconnected a pair
                    break
                template.add_edge(x, y, dist)
                pair_choice[(x, y)] = ("real", case, v1, v2)
            if data is None:
                break
        self._closures[zero_key] = data
        return data

    def _vrow(
        self, zero_key: Tuple[Node, ...], server: Node
    ) -> Tuple[_Entry, ...]:
        """Return ``server``'s modified distances to every destination."""
        key = (zero_key, server)
        row = self._vrows.get(key)
        if row is None:
            ctx = self._ctx
            row = tuple(
                _modified_distance(ctx, zero_key, server, y)
                for y in ctx.destinations
            )
            self._vrows[key] = row
        return row

    def _path_edges(
        self,
        zero_key: Tuple[Node, ...],
        a: Node,
        b: Node,
        case: int,
        v1: Optional[Node],
        v2: Optional[Node],
    ) -> _EdgeList:
        """Return the expanded ``(u, v, weight)`` edges for one closure edge."""
        key = (zero_key, a, b)
        edges = self._paths.get(key)
        if edges is None:
            ctx = self._ctx
            path = _modified_path(ctx, a, b, case, v1, v2)
            source, scaled = ctx.source, ctx.scaled
            zero = set(zero_key)
            triples: List[Tuple[Node, Node, float]] = []
            for u, v in zip(path, path[1:]):
                if (u == source and v in zero) or (v == source and u in zero):
                    triples.append((u, v, 0.0))
                else:
                    triples.append((u, v, scaled.weight(u, v)))
            edges = tuple(triples)
            self._paths[key] = edges
        return edges

    def _winners_for(
        self, zero_key: Tuple[Node, ...], members: Tuple[Node, ...]
    ) -> Tuple[Optional[List[Tuple]], float]:
        """Memoized :meth:`_winners` (lower_bound and evaluate share it)."""
        key = (zero_key, members)
        cached = self._winner_memo.get(key)
        if cached is None:
            cached = self._winners(zero_key, members)
            self._winner_memo[key] = cached
        return cached

    def _winners(
        self, zero_key: Tuple[Node, ...], members: Sequence[Node]
    ) -> Tuple[Optional[List[Tuple]], float]:
        """Pick the cheapest ``s'`` closure edge per destination.

        Returns ``(winner list, lower bound)`` where the winner for
        destination index ``i`` is ``(total, server, case, v1, v2)`` exactly
        as the reference evaluator would choose it (same iteration order,
        same floats), and the lower bound is the largest winner total — an
        admissible bound because any feasible tree contains, for every
        destination, a path from ``s'`` of at least that closure-edge
        weight.  Infeasible destinations yield ``(None, INFINITY)``.
        """
        ctx = self._ctx
        virtual_weight = ctx.virtual_weight
        vrows = self._vrows
        rows = []
        for v in members:
            key = (zero_key, v)
            row = vrows.get(key)
            if row is None:
                row = self._vrow(zero_key, v)
            rows.append((virtual_weight[v], v, row))
        winners: List[Tuple] = []
        bound = 0.0
        for index in range(len(ctx.destinations)):
            best_total = INFINITY
            best = None
            for weight, v, row in rows:
                dist, case, v1, v2 = row[index]
                total = weight + dist
                if total < best_total:
                    best_total = total
                    best = (total, v, case, v1, v2)
            if best is None or best_total == INFINITY:
                return None, INFINITY
            winners.append(best)
            if best_total > bound:
                bound = best_total
        return winners, bound

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    def lower_bound(self, combination: Sequence[Node]) -> float:
        """Admissible cost lower bound for ``combination``.

        Returns :data:`~repro.graph.shortest_paths.INFINITY` when the
        combination is infeasible (evaluation would return ``None``).
        """
        ctx = self._ctx
        members = tuple(v for v in combination if v in ctx.virtual_weight)
        if not members:
            return INFINITY
        zero_key = tuple(v for v in members if v in ctx.adjacent_servers)
        if self._closure(zero_key) is None:
            return INFINITY
        return self._winners_for(zero_key, members)[1]

    def evaluate(
        self, combination: Sequence[Node], bound: Optional[float] = None
    ) -> Optional[SubsetSolution]:
        """Replay of ``evaluate_combination`` from memos (bit-identical).

        When ``bound`` (the incumbent best cost) is given and the admissible
        lower bound already reaches it, returns the :data:`PRUNED` sentinel
        without computing a tree — such a combination can never replace the
        incumbent under the search's strict-improvement rule.
        """
        ctx = self._ctx
        virtual_weight = ctx.virtual_weight
        members = tuple(v for v in combination if v in virtual_weight)
        if not members:
            return None
        _obs_inc("fasteval.evaluations")
        zero_key = tuple(v for v in members if v in ctx.adjacent_servers)

        closure_data = self._closure(zero_key)
        if closure_data is None:
            return None

        winners, lower = self._winners_for(zero_key, members)
        if bound is not None and lower >= bound:
            _obs_inc("fasteval.bound_pruned")
            return PRUNED
        if winners is None:
            return None

        # The tree depends on the combination only through the zero set and
        # the chosen winners, so finished answers are shared across
        # combinations (only the `combination` label needs refreshing).
        memo_key = (zero_key, tuple(winners))
        if memo_key in self._solutions:
            cached = self._solutions[memo_key]
            _obs_inc("fasteval.solution_memo_hits")
            if cached is None:
                return None
            return SubsetSolution(
                combination=members,
                used_servers=cached.used_servers,
                cost=cached.cost,
                tree=cached.tree,
            )

        _obs_inc("fasteval.kmb_trees")
        with _obs_span("kmb"):
            destinations = ctx.destinations
            closure = closure_data.template.copy()
            pair_choice = closure_data.pair_choice
            virtual_choice: Dict[Node, Tuple] = {}
            for y, best in zip(destinations, winners):
                closure.add_edge(VIRTUAL_SOURCE, y, best[0])
                virtual_choice[y] = best

            closure_mst = prim_mst(closure)

            expanded = Graph()
            for u, v, _ in closure_mst.edges():
                if u is VIRTUAL_SOURCE or v is VIRTUAL_SOURCE:
                    y = v if u is VIRTUAL_SOURCE else u
                    _, server, case, v1, v2 = virtual_choice[y]
                    expanded.add_edge(
                        VIRTUAL_SOURCE, server, virtual_weight[server]
                    )
                    for eu, ev, ew in self._path_edges(
                        zero_key, server, y, case, v1, v2
                    ):
                        expanded.add_edge(eu, ev, ew)
                else:
                    a, b = (u, v) if (u, v) in pair_choice else (v, u)
                    _, case, v1, v2 = pair_choice[(a, b)]
                    for eu, ev, ew in self._path_edges(
                        zero_key, a, b, case, v1, v2
                    ):
                        expanded.add_edge(eu, ev, ew)

            refined = kruskal_mst(expanded)
            terminals: List[Node] = [VIRTUAL_SOURCE] + list(destinations)
            with _obs_span("prune"):
                pruned = prune_leaves(refined, keep=terminals)

        used = tuple(
            sorted(
                (v for v in pruned.neighbors(VIRTUAL_SOURCE)),
                key=repr,
            )
        ) if pruned.has_node(VIRTUAL_SOURCE) else ()
        if not used:
            self._solutions[memo_key] = None
            return None
        solution = SubsetSolution(
            combination=members,
            used_servers=used,
            cost=pruned.total_weight(),
            tree=pruned,
        )
        self._solutions[memo_key] = solution
        return solution
