"""Memoized combination evaluation for ``Appro_Multi`` (cost-exact).

``Appro_Multi`` evaluates up to ``Σ_{j≤K} C(|V_S|, j)`` server combinations
per request, and :func:`~repro.core.auxiliary.evaluate_combination` spends
most of its time recomputing quantities that depend only on the *zero-server
set* ``Z = combination ∩ adjacent_servers`` — not on the combination itself:

- the destination–destination closure distances (and the case decomposition
  choosing them),
- the per-server modified-distance rows feeding the ``s'`` closure edges,
- the expanded real-graph paths realizing each closure edge.

Since ``K`` is small and only servers adjacent to the source produce zero
edges, the number of distinct zero sets is far smaller than the number of
combinations, so :class:`CombinationEvaluator` memoizes all three by zero
set and replays :func:`~repro.core.auxiliary.evaluate_combination` from the
memos.  The replay constructs byte-identical :class:`~repro.graph.graph.Graph`
objects (same node/edge insertion order, same floats) and runs the very same
``prim_mst`` / ``kruskal_mst`` / ``prune_leaves`` calls, so the returned
:class:`~repro.core.auxiliary.SubsetSolution` is **bit-for-bit identical** to
the reference evaluator's — the differential test harness holds this to
account on seeded instances.

:meth:`CombinationEvaluator.lower_bound` additionally exposes an admissible
bound — any tree for the combination contains, for every destination ``y``,
a path ``s' → y`` of weight at least the closure edge ``(s', y)`` — which the
search uses to skip whole combinations without touching an MST.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.auxiliary import (
    VIRTUAL_SOURCE,
    AuxiliaryContext,
    SubsetSolution,
    _CASE_DIRECT,
    _CASE_DOUBLE,
    _CASE_ENTRY,
    _CASE_EXIT,
    _modified_distance,
    _modified_path,
)
from repro.exceptions import EdgeNotFoundError
from repro.graph.graph import Graph, Node
from repro.graph.mst import kruskal_mst, prim_mst
from repro.graph.shortest_paths import INFINITY
from repro.graph.tree import prune_leaves
from repro.obs import inc as _obs_inc, span as _obs_span

#: ``(distance, case, v1, v2)`` as produced by ``_modified_distance``.
_Entry = Tuple[float, int, Optional[Node], Optional[Node]]
#: An expanded path as ``(u, v, weight)`` triples in traversal order.
_EdgeList = Tuple[Tuple[Node, Node, float], ...]

#: Sentinel returned by :meth:`CombinationEvaluator.evaluate` when the
#: admissible lower bound already proves the combination cannot beat the
#: incumbent, so no tree was (or needed to be) computed.
PRUNED = object()


class _ClosureData:
    """Dest–dest closure state shared by every combination of one zero set."""

    __slots__ = ("template", "pair_choice")

    def __init__(self, template: Graph, pair_choice: Dict) -> None:
        #: Closure graph with ``s'`` present but its edges not yet added.
        self.template = template
        #: ``(x, y) → ("real", case, v1, v2)`` for destination pairs.
        self.pair_choice = pair_choice


class CombinationEvaluator:
    """Evaluate server combinations of one request with shared memos.

    One instance per :class:`~repro.core.auxiliary.AuxiliaryContext`; not
    thread-safe (the search is sequential).
    """

    __slots__ = (
        "_ctx",
        "_closures",
        "_vrows",
        "_paths",
        "_solutions",
        "_winner_memo",
    )

    def __init__(self, ctx: AuxiliaryContext) -> None:
        self._ctx = ctx
        #: zero set → closure data, or ``None`` if a dest pair is unreachable.
        self._closures: Dict[Tuple[Node, ...], Optional[_ClosureData]] = {}
        #: ``(zero set, server)`` → per-destination modified-distance row.
        self._vrows: Dict[Tuple, Tuple[_Entry, ...]] = {}
        #: ``(zero set, a, b)`` → expanded edges realizing the closure edge.
        self._paths: Dict[Tuple, _EdgeList] = {}
        #: ``(zero set, members)`` → (winner list, lower bound); shared
        #: between the bound pre-pass and the evaluation itself.
        self._winner_memo: Dict[Tuple, Tuple[Optional[List[Tuple]], float]] = {}
        #: ``(zero set, winner vector)`` → finished solution.  The KMB tree
        #: depends on the combination only through the zero set and the
        #: per-destination ``s'``-edge winners, so combinations sharing both
        #: share the whole answer.
        self._solutions: Dict[Tuple, Optional[SubsetSolution]] = {}

    # ------------------------------------------------------------------
    # memoized building blocks
    # ------------------------------------------------------------------
    def _closure(self, zero_key: Tuple[Node, ...]) -> Optional[_ClosureData]:
        """Return the dest–dest closure for a zero set (``None``: infeasible)."""
        try:
            return self._closures[zero_key]
        except KeyError:
            pass
        ctx = self._ctx
        destinations = ctx.destinations
        template = Graph()
        template.add_node(VIRTUAL_SOURCE)
        for terminal in destinations:
            template.add_node(terminal)
        pair_choice: Dict[Tuple[Node, Node], Tuple] = {}
        data: Optional[_ClosureData] = _ClosureData(template, pair_choice)
        for i, x in enumerate(destinations):
            for y in destinations[i + 1 :]:
                dist, case, v1, v2 = _modified_distance(ctx, zero_key, x, y)
                if dist == INFINITY:
                    data = None  # capacitated pruning disconnected a pair
                    break
                template.add_edge(x, y, dist)
                pair_choice[(x, y)] = ("real", case, v1, v2)
            if data is None:
                break
        self._closures[zero_key] = data
        return data

    def _vrow(
        self, zero_key: Tuple[Node, ...], server: Node
    ) -> Tuple[_Entry, ...]:
        """Return ``server``'s modified distances to every destination."""
        key = (zero_key, server)
        row = self._vrows.get(key)
        if row is None:
            ctx = self._ctx
            row = tuple(
                _modified_distance(ctx, zero_key, server, y)
                for y in ctx.destinations
            )
            self._vrows[key] = row
        return row

    def _path_edges(
        self,
        zero_key: Tuple[Node, ...],
        a: Node,
        b: Node,
        case: int,
        v1: Optional[Node],
        v2: Optional[Node],
    ) -> _EdgeList:
        """Return the expanded ``(u, v, weight)`` edges for one closure edge."""
        key = (zero_key, a, b)
        edges = self._paths.get(key)
        if edges is None:
            ctx = self._ctx
            path = _modified_path(ctx, a, b, case, v1, v2)
            source, scaled = ctx.source, ctx.scaled
            zero = set(zero_key)
            triples: List[Tuple[Node, Node, float]] = []
            for u, v in zip(path, path[1:]):
                if (u == source and v in zero) or (v == source and u in zero):
                    triples.append((u, v, 0.0))
                else:
                    triples.append((u, v, scaled.weight(u, v)))
            edges = tuple(triples)
            self._paths[key] = edges
        return edges

    def _winners_for(
        self, zero_key: Tuple[Node, ...], members: Tuple[Node, ...]
    ) -> Tuple[Optional[List[Tuple]], float]:
        """Memoized :meth:`_winners` (lower_bound and evaluate share it)."""
        key = (zero_key, members)
        cached = self._winner_memo.get(key)
        if cached is None:
            cached = self._winners(zero_key, members)
            self._winner_memo[key] = cached
        return cached

    def _winners(
        self, zero_key: Tuple[Node, ...], members: Sequence[Node]
    ) -> Tuple[Optional[List[Tuple]], float]:
        """Pick the cheapest ``s'`` closure edge per destination.

        Returns ``(winner list, lower bound)`` where the winner for
        destination index ``i`` is ``(total, server, case, v1, v2)`` exactly
        as the reference evaluator would choose it (same iteration order,
        same floats), and the lower bound is the largest winner total — an
        admissible bound because any feasible tree contains, for every
        destination, a path from ``s'`` of at least that closure-edge
        weight.  Infeasible destinations yield ``(None, INFINITY)``.
        """
        ctx = self._ctx
        virtual_weight = ctx.virtual_weight
        vrows = self._vrows
        rows = []
        for v in members:
            key = (zero_key, v)
            row = vrows.get(key)
            if row is None:
                row = self._vrow(zero_key, v)
            rows.append((virtual_weight[v], v, row))
        winners: List[Tuple] = []
        bound = 0.0
        for index in range(len(ctx.destinations)):
            best_total = INFINITY
            best = None
            for weight, v, row in rows:
                dist, case, v1, v2 = row[index]
                total = weight + dist
                if total < best_total:
                    best_total = total
                    best = (total, v, case, v1, v2)
            if best is None or best_total == INFINITY:
                return None, INFINITY
            winners.append(best)
            if best_total > bound:
                bound = best_total
        return winners, bound

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    def lower_bound(self, combination: Sequence[Node]) -> float:
        """Admissible cost lower bound for ``combination``.

        Returns :data:`~repro.graph.shortest_paths.INFINITY` when the
        combination is infeasible (evaluation would return ``None``).
        """
        ctx = self._ctx
        members = tuple(v for v in combination if v in ctx.virtual_weight)
        if not members:
            return INFINITY
        zero_key = tuple(v for v in members if v in ctx.adjacent_servers)
        if self._closure(zero_key) is None:
            return INFINITY
        return self._winners_for(zero_key, members)[1]

    def evaluate(
        self, combination: Sequence[Node], bound: Optional[float] = None
    ) -> Optional[SubsetSolution]:
        """Replay of ``evaluate_combination`` from memos (bit-identical).

        When ``bound`` (the incumbent best cost) is given and the admissible
        lower bound already reaches it, returns the :data:`PRUNED` sentinel
        without computing a tree — such a combination can never replace the
        incumbent under the search's strict-improvement rule.
        """
        ctx = self._ctx
        virtual_weight = ctx.virtual_weight
        members = tuple(v for v in combination if v in virtual_weight)
        if not members:
            return None
        _obs_inc("fasteval.evaluations")
        zero_key = tuple(v for v in members if v in ctx.adjacent_servers)

        closure_data = self._closure(zero_key)
        if closure_data is None:
            return None

        winners, lower = self._winners_for(zero_key, members)
        if bound is not None and lower >= bound:
            _obs_inc("fasteval.bound_pruned")
            return PRUNED
        if winners is None:
            return None

        # The tree depends on the combination only through the zero set and
        # the chosen winners, so finished answers are shared across
        # combinations (only the `combination` label needs refreshing).
        memo_key = (zero_key, tuple(winners))
        if memo_key in self._solutions:
            cached = self._solutions[memo_key]
            _obs_inc("fasteval.solution_memo_hits")
            if cached is None:
                return None
            return SubsetSolution(
                combination=members,
                used_servers=cached.used_servers,
                cost=cached.cost,
                tree=cached.tree,
            )

        _obs_inc("fasteval.kmb_trees")
        with _obs_span("kmb"):
            destinations = ctx.destinations
            closure = closure_data.template.copy()
            pair_choice = closure_data.pair_choice
            virtual_choice: Dict[Node, Tuple] = {}
            for y, best in zip(destinations, winners):
                closure.add_edge(VIRTUAL_SOURCE, y, best[0])
                virtual_choice[y] = best

            closure_mst = prim_mst(closure)

            expanded = Graph()
            for u, v, _ in closure_mst.edges():
                if u is VIRTUAL_SOURCE or v is VIRTUAL_SOURCE:
                    y = v if u is VIRTUAL_SOURCE else u
                    _, server, case, v1, v2 = virtual_choice[y]
                    expanded.add_edge(
                        VIRTUAL_SOURCE, server, virtual_weight[server]
                    )
                    for eu, ev, ew in self._path_edges(
                        zero_key, server, y, case, v1, v2
                    ):
                        expanded.add_edge(eu, ev, ew)
                else:
                    a, b = (u, v) if (u, v) in pair_choice else (v, u)
                    _, case, v1, v2 = pair_choice[(a, b)]
                    for eu, ev, ew in self._path_edges(
                        zero_key, a, b, case, v1, v2
                    ):
                        expanded.add_edge(eu, ev, ew)

            refined = kruskal_mst(expanded)
            terminals: List[Node] = [VIRTUAL_SOURCE] + list(destinations)
            with _obs_span("prune"):
                pruned = prune_leaves(refined, keep=terminals)

        used = tuple(
            sorted(
                (v for v in pruned.neighbors(VIRTUAL_SOURCE)),
                key=repr,
            )
        ) if pruned.has_node(VIRTUAL_SOURCE) else ()
        if not used:
            self._solutions[memo_key] = None
            return None
        solution = SubsetSolution(
            combination=members,
            used_servers=used,
            cost=pruned.total_weight(),
            tree=pruned,
        )
        self._solutions[memo_key] = solution
        return solution


# ---------------------------------------------------------------------------
# CSR-native evaluator: the same pipeline on flat integer arrays
# ---------------------------------------------------------------------------

#: Distinguishes "memoized None" from "not yet memoized" in flat memos.
_MISSING = object()


class _FlatTreeBox:
    """A pruned tree in index space, decoded into a dict ``Graph`` at most once.

    Shared by every :class:`CSRSubsetSolution` the solution memo hands out
    for the same underlying answer, so the winning tree is decoded a single
    time no matter how many combinations map onto it.
    """

    __slots__ = ("adj", "nodes", "virtual_index", "graph")

    def __init__(
        self,
        adj: Dict[int, Dict[int, float]],
        nodes: List[Node],
        virtual_index: int,
    ) -> None:
        self.adj = adj
        self.nodes = nodes
        self.virtual_index = virtual_index
        self.graph: Optional[Graph] = None

    def decode(self) -> Graph:
        """Replay the index-space adjacency into a :class:`Graph`.

        ``Graph.from_adjacency`` preserves node order and per-node neighbor
        order exactly, so the decoded tree matches the dict evaluator's
        **including dict insertion order** — the differential harness
        compares them field by field.
        """
        graph = self.graph
        if graph is None:
            nodes = self.nodes
            virtual = self.virtual_index
            mapping: Dict[Node, Dict[Node, float]] = {}
            for u, neighbors in self.adj.items():
                label = VIRTUAL_SOURCE if u == virtual else nodes[u]
                mapping[label] = {
                    (VIRTUAL_SOURCE if v == virtual else nodes[v]): w
                    for v, w in neighbors.items()
                }
            graph = self.graph = Graph.from_adjacency(mapping)
        return graph


class CSRSubsetSolution:
    """:class:`~repro.core.auxiliary.SubsetSolution` twin from the flat core.

    Same field surface (``combination``, ``used_servers``, ``cost``,
    ``tree``); the tree is decoded lazily — the combination sweep only pays
    the dict materialization for solutions a caller actually reads, i.e.
    the winner.
    """

    __slots__ = ("combination", "used_servers", "cost", "_box")

    def __init__(
        self,
        combination: Tuple[Node, ...],
        used_servers: Tuple[Node, ...],
        cost: float,
        box: _FlatTreeBox,
    ) -> None:
        self.combination = combination
        self.used_servers = used_servers
        self.cost = cost
        self._box = box

    @property
    def tree(self) -> Graph:
        """The pruned Steiner tree, decoded (and memoized) on first access."""
        return self._box.decode()

    def __repr__(self) -> str:
        return (
            f"CSRSubsetSolution(combination={self.combination!r}, "
            f"cost={self.cost!r})"
        )


class CSRCombinationEvaluator:
    """Flat-array replica of :class:`CombinationEvaluator` (CSR-native core).

    Same public surface (:meth:`lower_bound`, :meth:`evaluate`, the
    :data:`PRUNED` sentinel), same memo structure, and the same floats:
    every arithmetic operation runs on the same operands in the same order
    as the dict evaluator (unit Dijkstra rows are multiplied by ``b_k`` at
    each use site, exactly as ``ScaledDistances`` does), and every
    tie-break replicates the ``IndexedHeap`` / stable-sort /
    dict-insertion-order behaviour of the ``Graph`` pipeline.  The decoded
    winner is therefore bit-identical to the reference, dict insertion
    order included — the widened differential harness holds both engines
    to that.

    The whole combination sweep shares one workspace: the substrate CSR
    arrays and Dijkstra rows come from the request's
    :class:`~repro.core.auxiliary.FlatContext`, the metric-closure weight
    matrix is allocated once per zero set, and only the virtual-source row
    (closure node 0) is rewritten per combination — the flat mirror of the
    :class:`~repro.core.auxiliary.AuxiliaryCSR` "one appended row" layout.
    """

    __slots__ = (
        "_ctx",
        "_flat",
        "_aux",
        "_factor",
        "_source",
        "_nodes",
        "_virtual",
        "_dests",
        "_ndest",
        "_dist_rows",
        "_parent_rows",
        "_vweight",
        "_closure_orders",
        "_protected",
        "_ids_memo",
        "_closures",
        "_vrows",
        "_paths",
        "_winner_memo",
        "_solutions",
    )

    def __init__(self, ctx: AuxiliaryContext) -> None:
        flat = ctx.flat
        if flat is None:
            raise ValueError(
                "context has no flat workspace; build it under the 'csr' "
                "backend or use CombinationEvaluator"
            )
        self._ctx = ctx
        self._flat = flat
        self._aux = flat.aux
        self._factor = flat.factor
        self._source = flat.source
        self._nodes = flat.nodes
        self._virtual = flat.aux.virtual_index
        dests = flat.destinations
        self._dests = dests
        m = len(dests)
        self._ndest = m
        # Closure-graph adjacency orders, precomputed once.  The dict
        # evaluator's template adds s' first, then the destinations, then
        # the dest-pair edges in i<j loop order, and `evaluate` appends the
        # s' edges last — so with closure ids 0=s' and i=destination i-1,
        # node 0's adjacency is (1..m) and node i's is (1..m without i, 0).
        orders: List[Tuple[int, ...]] = [tuple(range(1, m + 1))]
        for i in range(1, m + 1):
            orders.append(
                tuple(j for j in range(1, m + 1) if j != i) + (0,)
            )
        self._closure_orders = orders
        self._protected = frozenset((self._virtual,) + dests)
        self._dist_rows = flat.dist_rows
        self._parent_rows = flat.parent_rows
        self._vweight = flat.virtual_weight
        #: combination tuple → (member nodes, member ids, zero ids).
        self._ids_memo: Dict[Tuple[Node, ...], Tuple] = {}
        #: zero ids → (weight matrix, pair cases), or None if infeasible.
        self._closures: Dict[Tuple[int, ...], Optional[Tuple]] = {}
        #: ``(zero ids, server id)`` → per-destination modified distances.
        self._vrows: Dict[Tuple, Tuple] = {}
        #: ``(zero ids, a, b)`` → expanded ``(u, v, w)`` edges (index space).
        self._paths: Dict[Tuple, Tuple] = {}
        #: ``(zero ids, member ids)`` → (winner list, lower bound).
        self._winner_memo: Dict[Tuple, Tuple] = {}
        #: ``(zero ids, winner vector)`` → finished solution (or None).
        self._solutions: Dict[Tuple, Optional[CSRSubsetSolution]] = {}

    # ------------------------------------------------------------------
    # id projection
    # ------------------------------------------------------------------
    def _ids(
        self, combination: Sequence[Node]
    ) -> Tuple[Tuple[Node, ...], Tuple[int, ...], Tuple[int, ...]]:
        """Project a combination once: (member nodes, member ids, zero ids).

        Order-preserving, exactly like the dict evaluator's member and
        zero-key filters; memoized because ``lower_bound`` and ``evaluate``
        both see every combination.
        """
        key = tuple(combination)
        cached = self._ids_memo.get(key)
        if cached is None:
            virtual_weight = self._ctx.virtual_weight
            index = self._flat.index
            member_nodes = tuple(v for v in key if v in virtual_weight)
            members = tuple(index[v] for v in member_nodes)
            adjacent = self._flat.adjacent
            zero = tuple(v for v in members if v in adjacent)
            cached = (member_nodes, members, zero)
            self._ids_memo[key] = cached
        return cached

    # ------------------------------------------------------------------
    # memoized building blocks (flat replicas of the dict versions)
    # ------------------------------------------------------------------
    def _mod(
        self, zero: Tuple[int, ...], a: int, b: int
    ) -> Tuple[float, int, int, int]:
        """Replica of ``auxiliary._modified_distance`` on index rows.

        ``v1``/``v2`` use ``-1`` for "none".  Every comparison happens on
        *scaled* floats — the unit rows are multiplied by ``b_k`` at each
        use site, mirroring ``ScaledDistances`` — so case selection and
        argmin tie-breaks (first strict minimum, in ``zero`` order) agree
        with the dict path bit for bit.
        """
        factor = self._factor
        rows = self._dist_rows
        dist_a = rows[a]
        dist_b = rows[b]
        best_dist = dist_a[b] * factor
        best = (best_dist, _CASE_DIRECT, -1, -1)
        if zero:
            source = self._source
            a_to_source = dist_a[source] * factor
            b_to_source = dist_b[source] * factor
            first = zero[0]
            exit_v = first
            exit_dist = dist_b[first] * factor
            entry_v = first
            entry_dist = dist_a[first] * factor
            for v in zero[1:]:
                d = dist_b[v] * factor
                if d < exit_dist:
                    exit_dist = d
                    exit_v = v
                d = dist_a[v] * factor
                if d < entry_dist:
                    entry_dist = d
                    entry_v = v
            d1 = a_to_source + exit_dist
            if d1 < best_dist:
                best_dist = d1
                best = (d1, _CASE_EXIT, -1, exit_v)
            d2 = entry_dist + b_to_source
            if d2 < best_dist:
                best_dist = d2
                best = (d2, _CASE_ENTRY, entry_v, -1)
            d3 = entry_dist + exit_dist
            if d3 < best_dist:
                best = (d3, _CASE_DOUBLE, entry_v, exit_v)
        return best

    def _closure(
        self, zero: Tuple[int, ...]
    ) -> Optional[Tuple[List[List[float]], Dict]]:
        """Dest–dest closure for a zero set: weight matrix + case table.

        ``matrix[i][j]`` (closure ids, row/column 0 reserved for ``s'``) is
        the modified distance between destinations ``i-1`` and ``j-1``;
        ``None`` marks an infeasible pair, exactly like the dict memo.
        """
        cached = self._closures.get(zero, _MISSING)
        if cached is not _MISSING:
            return cached
        dests = self._dests
        m = self._ndest
        matrix: List[List[float]] = [
            [0.0] * (m + 1) for _ in range(m + 1)
        ]
        pair_cases: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
        data: Optional[Tuple[List[List[float]], Dict]] = (matrix, pair_cases)
        mod = self._mod
        for i in range(m):
            a = dests[i]
            row = matrix[i + 1]
            for j in range(i + 1, m):
                dist, case, v1, v2 = mod(zero, a, dests[j])
                if dist == INFINITY:
                    data = None  # capacitated pruning disconnected a pair
                    break
                row[j + 1] = dist
                matrix[j + 1][i + 1] = dist
                pair_cases[(i + 1, j + 1)] = (case, v1, v2)
            if data is None:
                break
        self._closures[zero] = data
        return data

    def _vrow(self, zero: Tuple[int, ...], server: int) -> Tuple:
        """``server``'s modified distances to every destination (memoized).

        Returns ``(row, totals)``: the per-destination ``_mod`` entries and
        the precomputed ``virtual_weight + distance`` totals (same operands
        in the same order as the dict evaluator's ``weight + dist``, just
        summed once per (zero, server) instead of per combination).
        """
        key = (zero, server)
        data = self._vrows.get(key)
        if data is None:
            mod = self._mod
            row = tuple(mod(zero, server, y) for y in self._dests)
            weight = self._vweight[server]
            totals = tuple(weight + entry[0] for entry in row)
            data = (row, totals)
            self._vrows[key] = data
        return data

    def _winners_for(
        self, zero: Tuple[int, ...], members: Tuple[int, ...]
    ) -> Tuple[Optional[List[Tuple]], float, Optional[Tuple[int, ...]]]:
        """Memoized :meth:`_winners` (lower_bound and evaluate share it).

        The enumeration visits combinations in lexicographic order, so a
        combination's ``(j-1)``-prefix is always memoized first.  When the
        appended member leaves the zero set unchanged (it is not an
        adjacent server), the full member scan reduces to an elementwise
        merge of the prefix winners with the new member's totals — the
        first-strict-minimum scan over ``prefix + (last,)`` is exactly
        "keep the prefix winner unless the last member is strictly
        cheaper", on the same floats.
        """
        key = (zero, members)
        cached = self._winner_memo.get(key)
        if cached is not None:
            return cached
        cached = None
        if len(members) > 1:
            last = members[-1]
            if last not in self._flat.adjacent:
                prev = self._winners_for(zero, members[:-1])
                prev_winners, _, prev_servers = prev
                if prev_winners is not None:
                    row, totals = self._vrow(zero, last)
                    winners: List[Tuple] = []
                    servers: List[int] = []
                    bound = 0.0
                    for index in range(self._ndest):
                        pw = prev_winners[index]
                        total = pw[0]
                        t = totals[index]
                        if t < total:
                            entry = row[index]
                            pw = (t, last, entry[1], entry[2], entry[3])
                            winners.append(pw)
                            servers.append(last)
                            total = t
                        else:
                            winners.append(pw)
                            servers.append(prev_servers[index])
                        if total > bound:
                            bound = total
                    cached = (winners, bound, tuple(servers))
        if cached is None:
            cached = self._winners(zero, members)
        self._winner_memo[key] = cached
        return cached

    def _winners(
        self, zero: Tuple[int, ...], members: Tuple[int, ...]
    ) -> Tuple[Optional[List[Tuple]], float, Optional[Tuple[int, ...]]]:
        """Cheapest ``s'`` closure edge per destination — dict replica.

        Same strict-improvement scan in the same member order, on the same
        floats, so the winner vector (and the admissible bound, the max
        winner total) matches the dict evaluator exactly.  Also returns the
        winning-server vector, a cheap-to-hash stand-in for the winner
        vector in the solution memo: for a fixed zero set every winner
        field is a function of (server, destination), so keying on the
        servers alone induces exactly the same memo partition as keying on
        the full winner tuples.
        """
        vrow = self._vrow
        rows = [(v,) + vrow(zero, v) for v in members]
        winners: List[Tuple] = []
        servers: List[int] = []
        bound = 0.0
        for index in range(self._ndest):
            best_total = INFINITY
            best_v = -1
            best_row = None
            for v, row, totals in rows:
                total = totals[index]
                if total < best_total:
                    best_total = total
                    best_v = v
                    best_row = row
            if best_row is None or best_total == INFINITY:
                return None, INFINITY, None
            entry = best_row[index]
            winners.append(
                (best_total, best_v, entry[1], entry[2], entry[3])
            )
            servers.append(best_v)
            if best_total > bound:
                bound = best_total
        return winners, bound, tuple(servers)

    def _walk(self, origin: int, target: int) -> List[int]:
        """``ShortestPathTree.path_to`` replica on a parent-index row."""
        parent = self._parent_rows[origin]
        path = [target]
        node = parent[target]
        while node != -1:
            path.append(node)
            node = parent[node]
        path.reverse()
        return path

    def _path_edges(
        self,
        zero: Tuple[int, ...],
        a: int,
        b: int,
        case: int,
        v1: int,
        v2: int,
    ) -> Tuple:
        """Expanded ``(u, v, weight)`` edges for one closure edge (memoized).

        Path concatenation replicates ``auxiliary._modified_path`` per
        case (including the degenerate ``v1 == v2`` collapse); weights are
        the scaled substrate weights with the zero-edge override.
        """
        key = (zero, a, b)
        edges = self._paths.get(key)
        if edges is None:
            source = self._source
            if case == _CASE_DIRECT:
                path = self._walk(a, b)
            elif case == _CASE_EXIT:
                path = self._walk(a, source)
                path.extend(reversed(self._walk(b, v2)))
            elif case == _CASE_ENTRY:
                path = self._walk(a, v1)
                path.extend(reversed(self._walk(b, source)))
            else:  # _CASE_DOUBLE
                path = self._walk(a, v1)
                second = self._walk(b, v2)
                second.reverse()
                if v1 == v2:  # degenerate: both zero hops collapse
                    path.extend(second[1:])
                else:
                    path.append(source)
                    path.extend(second)
            zero_set = set(zero)
            factor = self._factor
            adjacency = self._aux.adjacency
            triples: List[Tuple[int, int, float]] = []
            for u, v in zip(path, path[1:]):
                if (u == source and v in zero_set) or (
                    v == source and u in zero_set
                ):
                    triples.append((u, v, 0.0))
                    continue
                for neighbor, unit in adjacency[u]:
                    if neighbor == v:
                        triples.append((u, v, unit * factor))
                        break
                else:  # pragma: no cover - paths only traverse real edges
                    nodes = self._nodes
                    raise EdgeNotFoundError(nodes[u], nodes[v])
            edges = tuple(triples)
            self._paths[key] = edges
        return edges

    def _prim_closure(
        self, matrix: List[List[float]]
    ) -> Dict[int, Dict[int, float]]:
        """``prim_mst`` replica on the closure graph (root = ``s'`` = 0).

        The closure's shape is fixed (complete over ``m + 1`` ids with the
        adjacency orders precomputed in ``_closure_orders``); only the
        weights vary.  The inlined flat heap replicates ``IndexedHeap``
        operation for operation — ``<=`` stop on sift-up, strict ``<``
        child selection and ``>=`` stop on sift-down, last-entry-to-root
        on pop, strict-decrease on ``push_or_decrease`` — so equal-weight
        closure edges attach exactly as the dict evaluator attaches them.
        Returns the tree adjacency with dict-replica insertion order.
        """
        orders = self._closure_orders
        size_nodes = self._ndest + 1
        hprio: List[float] = []
        hkey: List[int] = []
        pos = [-1] * size_nodes
        attach_anchor = [-1] * size_nodes
        attach_weight = [0.0] * size_nodes
        in_tree = [False] * size_nodes
        in_tree[0] = True
        adj: Dict[int, Dict[int, float]] = {0: {}}
        # root's neighbors, pushed in adjacency order (heap.push)
        row0 = matrix[0]
        for neighbor in orders[0]:
            weight = row0[neighbor]
            hole = len(hprio)
            hprio.append(weight)
            hkey.append(neighbor)
            while hole > 0:
                up = (hole - 1) >> 1
                up_prio = hprio[up]
                if up_prio <= weight:
                    break
                moved = hkey[up]
                hprio[hole] = up_prio
                hkey[hole] = moved
                pos[moved] = hole
                hole = up
            hprio[hole] = weight
            hkey[hole] = neighbor
            pos[neighbor] = hole
            attach_anchor[neighbor] = 0
            attach_weight[neighbor] = weight
        while hprio:
            node = hkey[0]
            last_prio = hprio.pop()
            last_key = hkey.pop()
            pos[node] = -1
            size = len(hprio)
            if size:
                hole = 0
                while True:
                    child = 2 * hole + 1
                    if child >= size:
                        break
                    child_prio = hprio[child]
                    right = child + 1
                    if right < size and (
                        right_prio := hprio[right]
                    ) < child_prio:
                        child = right
                        child_prio = right_prio
                    if child_prio >= last_prio:
                        break
                    moved = hkey[child]
                    hprio[hole] = child_prio
                    hkey[hole] = moved
                    pos[moved] = hole
                    hole = child
                hprio[hole] = last_prio
                hkey[hole] = last_key
                pos[last_key] = hole
            anchor = attach_anchor[node]
            weight = attach_weight[node]
            # tree.add_edge(anchor, node, weight): anchor's entry first,
            # then the fresh node's — dict-replica insertion order.
            adj[anchor][node] = weight
            adj[node] = {anchor: weight}
            in_tree[node] = True
            node_row = matrix[node]
            for neighbor in orders[node]:
                if in_tree[neighbor]:
                    continue
                edge_weight = node_row[neighbor]
                hole = pos[neighbor]
                if hole < 0:
                    hole = len(hprio)
                    hprio.append(edge_weight)
                    hkey.append(neighbor)
                elif edge_weight >= hprio[hole]:
                    continue  # push_or_decrease returned False
                else:
                    hprio[hole] = edge_weight
                while hole > 0:
                    up = (hole - 1) >> 1
                    up_prio = hprio[up]
                    if up_prio <= edge_weight:
                        break
                    moved = hkey[up]
                    hprio[hole] = up_prio
                    hkey[hole] = moved
                    pos[moved] = hole
                    hole = up
                hprio[hole] = edge_weight
                hkey[hole] = neighbor
                pos[neighbor] = hole
                attach_anchor[neighbor] = node
                attach_weight[neighbor] = edge_weight
        return adj

    # ------------------------------------------------------------------
    # public interface (mirrors CombinationEvaluator)
    # ------------------------------------------------------------------
    def lower_bound(self, combination: Sequence[Node]) -> float:
        """Admissible cost lower bound for ``combination`` (dict-identical)."""
        _, members, zero = self._ids(combination)
        if not members:
            return INFINITY
        if self._closure(zero) is None:
            return INFINITY
        return self._winners_for(zero, members)[1]

    def evaluate(
        self, combination: Sequence[Node], bound: Optional[float] = None
    ):
        """Flat replay of ``evaluate_combination`` (bit-identical decode).

        Same contract as :meth:`CombinationEvaluator.evaluate`: ``None``
        for infeasible combinations, :data:`PRUNED` when ``bound`` proves
        the combination can't beat the incumbent, otherwise a
        :class:`CSRSubsetSolution` whose decoded tree equals the dict
        evaluator's tree field for field.
        """
        member_nodes, members, zero = self._ids(combination)
        if not members:
            return None
        _obs_inc("fasteval.evaluations")

        closure_data = self._closure(zero)
        if closure_data is None:
            return None

        winners, lower, winner_servers = self._winners_for(zero, members)
        if bound is not None and lower >= bound:
            _obs_inc("fasteval.bound_pruned")
            return PRUNED
        if winners is None:
            return None

        # Keyed on the winning-server vector — same partition as the dict
        # evaluator's winner-tuple key (see _winners), far cheaper to hash.
        memo_key = (zero, winner_servers)
        cached = self._solutions.get(memo_key, _MISSING)
        if cached is not _MISSING:
            _obs_inc("fasteval.solution_memo_hits")
            if cached is None:
                return None
            return CSRSubsetSolution(
                combination=member_nodes,
                used_servers=cached.used_servers,
                cost=cached.cost,
                box=cached._box,
            )

        # Only the virtual block varies across the sweep: select the
        # combination on the shared CSR auxiliary view, rewrite closure
        # row/column 0, and leave every other array untouched.
        self._aux.set_combination(members, zero)
        _obs_inc("fasteval.kmb_trees")
        with _obs_span("kmb"):
            matrix, pair_cases = closure_data
            row0 = matrix[0]
            for i, best in enumerate(winners):
                total = best[0]
                row0[i + 1] = total
                matrix[i + 1][0] = total

            tree_adj = self._prim_closure(matrix)

            # --- expansion, walking closure-tree edges in edges() order
            dests = self._dests
            virtual = self._virtual
            vweight = self._vweight
            exp: Dict[int, Dict[int, float]] = {}
            seen_closure = set()
            for cu, crow in tree_adj.items():
                for cv in crow:
                    ckey = (cu, cv) if cu < cv else (cv, cu)
                    if ckey in seen_closure:
                        continue
                    seen_closure.add(ckey)
                    if cu == 0 or cv == 0:
                        position = (cv if cu == 0 else cu) - 1
                        _, server, case, v1, v2 = winners[position]
                        row = exp.get(virtual)
                        if row is None:
                            row = exp[virtual] = {}
                        row[server] = vweight[server]
                        row = exp.get(server)
                        if row is None:
                            row = exp[server] = {}
                        row[virtual] = vweight[server]
                        path_edges = self._path_edges(
                            zero, server, dests[position], case, v1, v2
                        )
                    else:
                        i, j = (cu, cv) if cu < cv else (cv, cu)
                        case, v1, v2 = pair_cases[(i, j)]
                        path_edges = self._path_edges(
                            zero, dests[i - 1], dests[j - 1], case, v1, v2
                        )
                    for eu, ev, ew in path_edges:
                        row = exp.get(eu)
                        if row is None:
                            row = exp[eu] = {}
                        row[ev] = ew
                        row = exp.get(ev)
                        if row is None:
                            row = exp[ev] = {}
                        row[eu] = ew

            # --- kruskal_mst replica: stable sort + union–find ----------
            edge_list: List[Tuple[int, int, float]] = []
            seen_exp = set()
            for u, urow in exp.items():
                for v, w in urow.items():
                    ekey = (u, v) if u < v else (v, u)
                    if ekey not in seen_exp:
                        seen_exp.add(ekey)
                        edge_list.append((u, v, w))
            edge_list.sort(key=_edge_weight_key)
            dsu = {u: u for u in exp}
            forest: Dict[int, Dict[int, float]] = {u: {} for u in exp}
            for u, v, w in edge_list:
                ru = u
                while dsu[ru] != ru:
                    dsu[ru] = dsu[dsu[ru]]
                    ru = dsu[ru]
                rv = v
                while dsu[rv] != rv:
                    dsu[rv] = dsu[dsu[rv]]
                    rv = dsu[rv]
                if ru != rv:
                    dsu[ru] = rv
                    forest[u][v] = w
                    forest[v][u] = w

            # --- prune_leaves replica (in place: ``forest`` is fresh, so
            # the dict path's defensive copy has nothing to protect) ------
            with _obs_span("prune"):
                protected = self._protected
                pruned = forest
                candidates = deque(
                    node
                    for node, urow in pruned.items()
                    if len(urow) <= 1 and node not in protected
                )
                while candidates:
                    leaf = candidates.popleft()
                    urow = pruned.get(leaf)
                    if urow is None or leaf in protected:
                        continue
                    if len(urow) > 1:
                        continue
                    neighbors = list(urow)
                    for neighbor in neighbors:
                        del pruned[neighbor][leaf]
                    del pruned[leaf]
                    for neighbor in neighbors:
                        if (
                            len(pruned[neighbor]) <= 1
                            and neighbor not in protected
                        ):
                            candidates.append(neighbor)

        virtual_row = pruned.get(self._virtual)
        if virtual_row:
            nodes = self._nodes
            used = tuple(
                sorted((nodes[v] for v in virtual_row), key=repr)
            )
        else:
            used = ()
        if not used:
            self._solutions[memo_key] = None
            return None
        # total_weight() replica: sum in edges() iteration order.
        cost = 0.0
        seen_cost = set()
        for u, urow in pruned.items():
            for v, w in urow.items():
                ekey = (u, v) if u < v else (v, u)
                if ekey not in seen_cost:
                    seen_cost.add(ekey)
                    cost += w
        solution = CSRSubsetSolution(
            combination=member_nodes,
            used_servers=used,
            cost=cost,
            box=_FlatTreeBox(pruned, self._nodes, self._virtual),
        )
        self._solutions[memo_key] = solution
        return solution


def _edge_weight_key(edge: Tuple[int, int, float]) -> float:
    """Sort key replicating ``kruskal_mst``'s ``lambda edge: edge[2]``."""
    return edge[2]


#: Either evaluator — they share the public surface and the results.
AnyEvaluator = Union[CombinationEvaluator, CSRCombinationEvaluator]
#: Either solution type — same field surface, interchangeable downstream.
AnySolution = Union[SubsetSolution, CSRSubsetSolution]


def make_evaluator(ctx: AuxiliaryContext) -> AnyEvaluator:
    """Return the fastest evaluator able to serve ``ctx``.

    Contexts built under the "csr" backend carry a flat workspace and get
    the CSR-native core; dict-backend (and uncached reference) contexts
    get the dict evaluator.  Results are bit-identical either way — the
    backend selects a speed, never an answer.
    """
    if ctx.flat is not None:
        return CSRCombinationEvaluator(ctx)
    return CombinationEvaluator(ctx)
