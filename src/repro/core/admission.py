"""Admission bookkeeping: thresholds and resource reservation for trees.

Two concerns live here:

- :class:`AdmissionPolicy` — the paper's threshold policy (Section V-B):
  reject when any used server's weight reaches ``σ_v`` or the tree's edge
  weight sum reaches ``σ_e``, with the paper's calibration
  ``σ_v = σ_e = |V| − 1``.
- :func:`try_allocate` / :func:`release_tree` — turning a pseudo-multicast
  tree into actual reservations on an :class:`SDNetwork`, transactionally:
  either every link and server reservation succeeds, or nothing is left
  behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.pseudo_tree import PseudoMulticastTree
from repro.exceptions import CapacityExceededError
from repro.network.allocation import AllocationTransaction
from repro.network.sdn import SDNetwork


@dataclass(frozen=True)
class AdmissionPolicy:
    """Threshold-based admission control (Algorithm 2, steps 7 and 9).

    Attributes:
        sigma_v: server-weight threshold ``σ_v``; a candidate server with
            ``w_v(k) ≥ σ_v`` is not considered.
        sigma_e: tree-weight threshold ``σ_e``; a candidate tree with
            ``Σ_{e∈T} w_e(k) ≥ σ_e`` is not considered.
    """

    sigma_v: float
    sigma_e: float

    def __post_init__(self) -> None:
        if self.sigma_v <= 0 or self.sigma_e <= 0:
            raise ValueError(
                f"thresholds must be positive: σ_v={self.sigma_v}, "
                f"σ_e={self.sigma_e}"
            )

    @classmethod
    def for_network(cls, network: SDNetwork) -> "AdmissionPolicy":
        """The paper's calibration: ``σ_v = σ_e = |V| − 1``."""
        sigma = max(1.0, float(network.num_nodes - 1))
        return cls(sigma_v=sigma, sigma_e=sigma)

    def server_admissible(self, server_weight: float) -> bool:
        """Return whether a server passes the ``w_v(k) < σ_v`` test."""
        return server_weight < self.sigma_v

    def tree_admissible(self, tree_weight: float) -> bool:
        """Return whether a tree passes the ``Σ w_e(k) < σ_e`` test."""
        return tree_weight < self.sigma_e


def try_allocate(
    network: SDNetwork, tree: PseudoMulticastTree
) -> Optional[AllocationTransaction]:
    """Reserve the resources a pseudo-multicast tree needs, atomically.

    Bandwidth is reserved per link at ``usage · b_k`` (a link traversed
    twice by the pseudo-multicast routing reserves twice the bandwidth);
    compute is reserved at ``C_v(SC_k)`` on each used server.

    Returns:
        The committed transaction (hold it to release on departure), or
        ``None`` if any reservation failed — in which case the network is
        untouched.
    """
    request = tree.request
    # `with` so *any* exception before commit() — not just the capacity
    # error handled here — rolls the partial reservation back (RL011)
    with AllocationTransaction(network) as txn:
        try:
            for (u, v), count in sorted(
                tree.edge_usage().items(), key=lambda item: repr(item[0])
            ):
                txn.allocate_bandwidth(u, v, count * request.bandwidth)
            for server in tree.servers:
                txn.allocate_compute(server, request.compute_demand)
        except CapacityExceededError:
            return None
        txn.commit()
    return txn


def release_tree(transaction: AllocationTransaction) -> None:
    """Release a previously committed tree's resources (request departure)."""
    transaction.release_all()
