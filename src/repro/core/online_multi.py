"""``Online_CP_K`` — online admission with multi-server chains (K > 1).

The paper proves its competitive ratio only for ``K = 1`` and leaves the
multi-server online case open (Section V states the single-server
assumption explicitly).  This module implements the natural extension the
paper's machinery suggests: per request, run the ``Appro_Multi`` combination
search *on the congestion-priced graph* — virtual-edge weights combine the
weighted distance to each server with the server's exponential weight
``w_v(k)`` — and admit through the same threshold policy.

For ``K = 1`` this closely tracks ``Online_CP`` (the candidate structures
differ only in how the source connects: a dedicated virtual edge versus
being a Steiner terminal with an LCA detour).  For ``K > 1`` it can split a
chain across servers when congestion makes a single placement expensive,
which is exactly the regime the offline algorithm exploits.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.admission import AdmissionPolicy
from repro.core.auxiliary import (
    VIRTUAL_SOURCE,
    build_context,
    iter_combinations,
)
from repro.core.cost_model import CostModel, ExponentialCostModel
from repro.core.fasteval import PRUNED, make_evaluator
from repro.core.online_base import OnlineAlgorithm, OnlineDecision, RejectReason
from repro.core.pseudo_tree import PseudoMulticastTree
from repro.exceptions import InfeasibleRequestError
from repro.graph.spcache import ShortestPathCache, VersionedCacheRegistry
from repro.network.sdn import SDNetwork
from repro.obs import inc as _obs_inc, span as _obs_span
from repro.workload.request import MulticastRequest

Node = Hashable


class OnlineCPK(OnlineAlgorithm):
    """Congestion-priced online admission with up to ``K`` servers.

    Args:
        network: the capacitated SDN.
        max_servers: the server budget ``K ≥ 1`` per request.
        cost_model: resource pricing (default: the paper's exponential
            model at ``α = β = 2|V|``).
        policy: admission thresholds (default ``σ = |V| − 1``).
    """

    def __init__(
        self,
        network: SDNetwork,
        max_servers: int = 2,
        cost_model: Optional[CostModel] = None,
        policy: Optional[AdmissionPolicy] = None,
    ) -> None:
        if max_servers < 1:
            raise ValueError(f"K must be >= 1, got {max_servers}")
        super().__init__(network)
        self._max_servers = max_servers
        self._model = cost_model or ExponentialCostModel.for_network(network)
        self._policy = policy or AdmissionPolicy.for_network(network)
        # Epoch-keyed cache of the congestion-priced graph and its Dijkstra
        # trees (see OnlineCP): valid until the next admission mutates
        # residual capacities.
        self._sp_registry = VersionedCacheRegistry()

    def _weighted_cache(self, request: MulticastRequest) -> ShortestPathCache:
        """Shortest-path cache on the congestion-priced graph for ``b_k``."""
        network = self._network
        return self._sp_registry.get(
            ("weighted", request.bandwidth),
            network.epoch,
            lambda: self._model.weight_graph(
                network, min_residual_bandwidth=request.bandwidth
            ),
        )

    @property
    def max_servers(self) -> int:
        """The per-request server budget ``K``."""
        return self._max_servers

    @property
    def cost_model(self) -> CostModel:
        """The resource pricing model in use."""
        return self._model

    def _decide(self, request: MulticastRequest) -> OnlineDecision:
        network = self._network
        demand = request.compute_demand
        eligible = [
            v
            for v in network.server_nodes
            if network.server(v).can_allocate(demand)
        ]
        if not eligible:
            return self._reject(request, RejectReason.NO_FEASIBLE_SERVER)

        admissible = [
            v
            for v in eligible
            if self._policy.server_admissible(
                self._model.node_weight(network, v)
            )
        ]
        if not admissible:
            return self._reject(request, RejectReason.SERVER_THRESHOLD)

        cache = self._weighted_cache(request)
        server_weight = {
            v: self._model.node_weight(network, v) for v in admissible
        }
        try:
            with _obs_span("aux_build"):
                ctx = build_context(
                    graph=cache.graph,
                    source=request.source,
                    destinations=sorted(request.destinations, key=repr),
                    servers=admissible,
                    chain_cost=server_weight,
                    bandwidth=1.0,  # weights are already congestion-priced
                    cache=cache,
                )
        except InfeasibleRequestError:
            return self._reject(request, RejectReason.DISCONNECTED)

        # CSR-native flat core under the "csr" backend, dict evaluator
        # under "dict" — identical decisions either way.
        evaluator = make_evaluator(ctx)
        best = None
        with _obs_span("evaluate"):
            for combination in iter_combinations(
                ctx.candidate_servers, self._max_servers
            ):
                _obs_inc("online_cpk.combinations")
                bound = None
                if best is not None:
                    bound = best.cost
                    floor = min(
                        ctx.virtual_weight[v] for v in combination
                    )
                    if floor >= bound:
                        continue
                solution = evaluator.evaluate(combination, bound=bound)
                if solution is PRUNED or solution is None:
                    continue
                if best is None or solution.cost < best.cost:
                    best = solution
        if best is None:
            return self._reject(request, RejectReason.DISCONNECTED)

        # threshold check on the selected tree's *link* weight (the server
        # weights were pre-filtered per σ_v): subtract the virtual edges.
        server_part = sum(server_weight[v] for v in best.used_servers)
        physical_weight = best.cost - server_part
        if not self._policy.tree_admissible(physical_weight):
            return self._reject(request, RejectReason.TREE_THRESHOLD)

        tree = self._to_pseudo_tree(request, ctx, best)
        return self._admit(request, tree, best.cost)

    def _to_pseudo_tree(self, request, ctx, solution) -> PseudoMulticastTree:
        """Convert the weighted-graph solution into operational terms."""
        network = self._network
        distribution = tuple(
            (u, v)
            for u, v, _ in solution.tree.edges()
            if u is not VIRTUAL_SOURCE and v is not VIRTUAL_SOURCE
        )
        server_paths = {
            server: tuple(ctx.path(request.source, server))
            for server in solution.used_servers
        }
        # costs are not validated at construction, so a zero-cost shell is a
        # convenient way to reuse edge_usage() for the real accounting
        shell = PseudoMulticastTree(
            request=request,
            servers=solution.used_servers,
            server_paths=server_paths,
            distribution_edges=distribution,
            return_paths=(),
            bandwidth_cost=0.0,
            compute_cost=0.0,
        )
        bandwidth_cost = sum(
            count * request.bandwidth * network.link_unit_cost(u, v)
            for (u, v), count in shell.edge_usage().items()
        )
        compute_cost = sum(
            network.chain_cost(server, request.compute_demand)
            for server in solution.used_servers
        )
        return PseudoMulticastTree(
            request=request,
            servers=solution.used_servers,
            server_paths=server_paths,
            distribution_edges=distribution,
            return_paths=(),
            bandwidth_cost=bandwidth_cost,
            compute_cost=compute_cost,
        )
