"""Baseline algorithms the paper compares against.

- :func:`alg_one_server` — the state of the art for single-request
  NFV-multicast (Zhang et al. [22], the paper's ``Alg_One_Server``): route
  the stream to one server, then span the destinations with an
  MST-of-metric-closure tree; try every server and keep the cheapest
  combination.
- :class:`SPOnline` — the online ``SP`` heuristic of Section VI-A: prune
  resource-exhausted elements, treat every remaining link as weight 1, and
  route via a shortest path to a server followed by a shortest-path tree to
  the destinations, ignoring load entirely.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.online_base import OnlineAlgorithm, OnlineDecision, RejectReason
from repro.core.pseudo_tree import PseudoMulticastTree
from repro.exceptions import InfeasibleRequestError
from repro.graph.graph import Graph, edge_key
from repro.graph.mst import prim_mst
from repro.graph.shortest_paths import ShortestPathTree, dijkstra
from repro.graph.tree import prune_leaves
from repro.network.sdn import SDNetwork
from repro.workload.request import MulticastRequest

Node = Hashable


# ----------------------------------------------------------------------
# Alg_One_Server (Zhang et al. [22])
# ----------------------------------------------------------------------
def alg_one_server(
    network: SDNetwork, request: MulticastRequest
) -> PseudoMulticastTree:
    """Single-server baseline for the uncapacitated problem.

    Implements the description in Section VI-A of the paper: the algorithm
    *first* routes the traffic of ``r_k`` to a server — the stream travels
    ``s_k → v`` for processing and the processed stream returns to the
    source — and *then* multicasts over an MST-of-metric-closure tree built
    over the destinations and rooted at the source (the expansion of the
    complete-graph MST into its underlying shortest paths).  Every server is
    priced and the cheapest combination of server round-trip and destination
    subgraph wins.

    This is the "worst scenario" routing of the pseudo-multicast-tree
    discussion (Section V-B): processed packets come all the way back to
    ``s_k`` before distribution, which is exactly why the joint
    server/route optimization of ``Appro_Multi`` beats it — and by more on
    larger networks, where the round trip grows.

    Raises:
        InfeasibleRequestError: if no server can reach the source and every
            destination.
    """
    from repro.core.auxiliary import scale_graph  # local: avoids cycle

    scaled = scale_graph(network.graph, request.bandwidth)  # repro-lint: disable=RL001
    destinations = sorted(request.destinations, key=repr)
    # Searches run on the materialized b_k-scaled graph: the topology cache's
    # lazily scaled distances associate the float multiplication differently
    # (sum(w)*b vs sum(w*b)), and this reproduction pins bit-identical series.
    # repro-lint: disable=RL001
    source_tree = dijkstra(scaled, request.source)
    unreachable = [d for d in destinations if not source_tree.reaches(d)]
    if unreachable:
        raise InfeasibleRequestError(
            f"request {request.request_id}: destinations {unreachable!r} "
            "unreachable"
        )

    # Destination tree rooted at the source: metric-closure MST over
    # {s_k} ∪ D_k, expanded into its underlying shortest paths.
    terminal_trees: Dict[Node, ShortestPathTree] = {
        d: dijkstra(scaled, d)  # repro-lint: disable=RL001 (same as above)
        for d in destinations
    }
    terminal_trees[request.source] = source_tree
    terminals = [request.source] + destinations
    closure = Graph()
    for terminal in terminals:
        closure.add_node(terminal)
    for i, a in enumerate(terminals):
        tree_a = terminal_trees[a]
        for b in terminals[i + 1 :]:
            closure.add_edge(a, b, tree_a.distance[b])
    closure_mst = prim_mst(closure)
    subgraph = Graph()
    for node in terminals:
        subgraph.add_node(node)
    for a, b, _ in closure_mst.edges():
        path = terminal_trees[a].path_to(b)
        for u, v in zip(path, path[1:]):
            subgraph.add_edge(u, v, scaled.weight(u, v))
    subgraph = prune_leaves(subgraph, keep=terminals)
    subgraph_cost = subgraph.total_weight()

    # Pick the server minimizing the processing round trip + chain cost.
    best: Optional[Tuple[float, Node]] = None
    for server in network.server_nodes:
        if not source_tree.reaches(server):
            continue
        round_trip = 2.0 * source_tree.distance[server]
        chain_cost = network.chain_cost(server, request.compute_demand)
        total = round_trip + chain_cost + subgraph_cost
        if best is None or total < best[0]:
            best = (total, server)

    if best is None:
        raise InfeasibleRequestError(
            f"request {request.request_id}: no reachable server"
        )
    _, server = best
    chain_cost = network.chain_cost(server, request.compute_demand)
    source_path = tuple(source_tree.path_to(server))
    path_cost = sum(
        scaled.weight(u, v) for u, v in zip(source_path, source_path[1:])
    )
    return_path = tuple(reversed(source_path))
    return PseudoMulticastTree(
        request=request,
        servers=(server,),
        server_paths={server: source_path},
        distribution_edges=tuple(
            (u, v) for u, v, _ in subgraph.edges()
        ),
        return_paths=(return_path,) if len(return_path) > 1 else (),
        bandwidth_cost=2.0 * path_cost + subgraph_cost,
        compute_cost=chain_cost,
    )


# ----------------------------------------------------------------------
# SP (online shortest-path heuristic)
# ----------------------------------------------------------------------
class SPOnline(OnlineAlgorithm):
    """The load-oblivious online baseline of Section VI-A.

    For each request: drop links/servers without enough residual resources,
    give every remaining link weight 1, and for each candidate server ``v``
    combine a shortest (fewest-hop) path ``s_k → v`` with the shortest-path
    tree from ``v`` to the destinations; the candidate with the fewest total
    hops is admitted if its resources can be reserved.
    """

    def _decide(self, request: MulticastRequest) -> OnlineDecision:
        network = self._network
        demand = request.compute_demand
        candidates = [
            v
            for v in network.server_nodes
            if network.server(v).can_allocate(demand)
        ]
        if not candidates:
            return self._reject(request, RejectReason.NO_FEASIBLE_SERVER)

        # Epoch-keyed hop-count trees: identical to running Dijkstra on a
        # freshly built unit graph, but shared across same-epoch requests.
        sp_cache = network.unit_path_cache(request.bandwidth)

        destinations = sorted(request.destinations, key=repr)
        source_tree = sp_cache.tree(request.source)
        if any(not source_tree.reaches(d) for d in destinations):
            return self._reject(request, RejectReason.DISCONNECTED)

        best: Optional[Tuple[float, Node, Tuple, List]] = None
        for server in sorted(candidates, key=repr):
            if not source_tree.reaches(server):
                continue
            server_tree = sp_cache.tree(server)
            if any(not server_tree.reaches(d) for d in destinations):
                continue
            source_path = tuple(source_tree.path_to(server))
            union_edges = set()
            for destination in destinations:
                path = server_tree.path_to(destination)
                for u, v in zip(path, path[1:]):
                    union_edges.add(edge_key(u, v))
            hops = (len(source_path) - 1) + len(union_edges)
            if best is None or hops < best[0]:
                best = (hops, server, source_path, sorted(union_edges, key=repr))

        if best is None:
            return self._reject(request, RejectReason.DISCONNECTED)

        hops, server, source_path, union_edges = best
        usage: Counter = Counter()
        for u, v in zip(source_path, source_path[1:]):
            usage[edge_key(u, v)] += 1
        for edge in union_edges:
            usage[edge] += 1
        bandwidth_cost = sum(
            count * request.bandwidth * network.link_unit_cost(u, v)
            for (u, v), count in usage.items()
        )
        tree = PseudoMulticastTree(
            request=request,
            servers=(server,),
            server_paths={server: source_path},
            distribution_edges=tuple(union_edges),
            return_paths=(),
            bandwidth_cost=bandwidth_cost,
            compute_cost=network.chain_cost(server, demand),
        )
        return self._admit(request, tree, float(hops))
