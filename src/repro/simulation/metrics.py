"""Result records for offline and online experiment runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.online_base import RejectReason


@dataclass
class OfflineRunStats:
    """Aggregates for a batch of single-request solves (Figs. 5–7).

    Attributes:
        solved: how many requests produced a tree.
        infeasible: how many requests had no feasible tree (capacitated
            runs only; always 0 in the uncapacitated figures).
        costs: per-request operational cost of the returned tree.
        runtimes: per-request wall-clock solve time in seconds.
        servers_used: per-request number of servers in the returned tree.
        telemetry: counter deltas accumulated during this run (empty when
            :mod:`repro.obs` recording is disabled) — solver invocations,
            cache hits/misses, KMB calls, and friends.
    """

    solved: int = 0
    infeasible: int = 0
    costs: List[float] = field(default_factory=list)
    runtimes: List[float] = field(default_factory=list)
    servers_used: List[int] = field(default_factory=list)
    telemetry: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_cost(self) -> float:
        """Average operational cost over solved requests (0 if none)."""
        return sum(self.costs) / len(self.costs) if self.costs else 0.0

    @property
    def mean_runtime(self) -> float:
        """Average per-request solve time in seconds (0 if none)."""
        return sum(self.runtimes) / len(self.runtimes) if self.runtimes else 0.0

    @property
    def total_runtime(self) -> float:
        """Total solve time in seconds."""
        return sum(self.runtimes)

    @property
    def mean_servers_used(self) -> float:
        """Average number of servers per tree (the paper's ``l``)."""
        if not self.servers_used:
            return 0.0
        return sum(self.servers_used) / len(self.servers_used)


@dataclass
class OnlineRunStats:
    """Aggregates for one online admission run (Figs. 8–9).

    Attributes:
        admitted: number of admitted requests (the throughput objective).
        rejected: number of rejected requests.
        reject_reasons: histogram of rejection causes.
        operational_costs: cost of each admitted tree.
        admitted_timeline: cumulative admitted count after each arrival
            (drives the figures' x-axis sweeps).
        total_runtime: wall-clock seconds spent deciding.
        final_link_utilization: mean link utilization at the end of the run.
        final_server_utilization: mean server utilization at the end.
        telemetry: counter deltas accumulated during this run (empty when
            :mod:`repro.obs` recording is disabled).
    """

    admitted: int = 0
    rejected: int = 0
    reject_reasons: Dict[RejectReason, int] = field(default_factory=dict)
    operational_costs: List[float] = field(default_factory=list)
    admitted_timeline: List[int] = field(default_factory=list)
    total_runtime: float = 0.0
    final_link_utilization: float = 0.0
    final_server_utilization: float = 0.0
    telemetry: Dict[str, float] = field(default_factory=dict)

    @property
    def processed(self) -> int:
        """Total requests considered."""
        return self.admitted + self.rejected

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of requests admitted (0 when nothing processed)."""
        return self.admitted / self.processed if self.processed else 0.0

    @property
    def total_operational_cost(self) -> float:
        """Sum of admitted trees' operational costs."""
        return sum(self.operational_costs)

    def record_rejection(self, reason: Optional[RejectReason]) -> None:
        """Bump the histogram for one rejection."""
        if reason is not None:
            self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1


@dataclass
class ResilienceRunStats(OnlineRunStats):
    """Aggregates for an online run with failure injection and repair.

    Extends :class:`OnlineRunStats` (the admission-side fields keep their
    exact semantics, so a failure-free run is directly comparable to a
    :func:`~repro.simulation.engine.run_online_with_departures` run) with
    the resilience measurements the experiment reports.

    Attributes:
        failures: failure events that actually took an element down.
        recoveries: recovery events that actually brought one back.
        broken_requests: installed requests whose service a failure broke
            (counted once per disruption; a request can be broken — and
            repaired — multiple times over its lifetime).
        repairs: histogram of repair outcomes, keyed by
            ``RepairAction.value`` (``"dropped"`` / ``"readmitted"`` /
            ``"grafted"``).
        repair_costs: cost of each successful repair — the resources the
            strategy (re)programmed (drops contribute nothing here).
        destination_downtime: total destination-time lost to drops: each
            dropped request contributes ``|D_k| × (service end − drop
            time)``, where service end is its departure time (or the run
            horizon if it never departs).
    """

    failures: int = 0
    recoveries: int = 0
    broken_requests: int = 0
    repairs: Dict[str, int] = field(default_factory=dict)
    repair_costs: List[float] = field(default_factory=list)
    destination_downtime: float = 0.0

    def record_repair(self, action_value: str) -> None:
        """Bump the repair-outcome histogram."""
        self.repairs[action_value] = self.repairs.get(action_value, 0) + 1

    @property
    def dropped_by_failure(self) -> int:
        """Broken requests that ended up dropped instead of repaired."""
        return self.repairs.get("dropped", 0)

    @property
    def repaired(self) -> int:
        """Broken requests whose service was restored (graft or readmit)."""
        return self.repairs.get("grafted", 0) + self.repairs.get(
            "readmitted", 0
        )

    @property
    def disruption_ratio(self) -> float:
        """Fraction of admitted requests that lost service to a failure."""
        return self.dropped_by_failure / self.admitted if self.admitted else 0.0

    @property
    def mean_repair_cost(self) -> float:
        """Average cost of a successful repair (0 when none happened)."""
        if not self.repair_costs:
            return 0.0
        return sum(self.repair_costs) / len(self.repair_costs)

    @property
    def repairs_per_failure(self) -> float:
        """Successful repairs per effective failure event."""
        return self.repaired / self.failures if self.failures else 0.0
