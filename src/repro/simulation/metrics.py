"""Result records for offline and online experiment runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.online_base import RejectReason


@dataclass
class OfflineRunStats:
    """Aggregates for a batch of single-request solves (Figs. 5–7).

    Attributes:
        solved: how many requests produced a tree.
        infeasible: how many requests had no feasible tree (capacitated
            runs only; always 0 in the uncapacitated figures).
        costs: per-request operational cost of the returned tree.
        runtimes: per-request wall-clock solve time in seconds.
        servers_used: per-request number of servers in the returned tree.
        telemetry: counter deltas accumulated during this run (empty when
            :mod:`repro.obs` recording is disabled) — solver invocations,
            cache hits/misses, KMB calls, and friends.
    """

    solved: int = 0
    infeasible: int = 0
    costs: List[float] = field(default_factory=list)
    runtimes: List[float] = field(default_factory=list)
    servers_used: List[int] = field(default_factory=list)
    telemetry: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_cost(self) -> float:
        """Average operational cost over solved requests (0 if none)."""
        return sum(self.costs) / len(self.costs) if self.costs else 0.0

    @property
    def mean_runtime(self) -> float:
        """Average per-request solve time in seconds (0 if none)."""
        return sum(self.runtimes) / len(self.runtimes) if self.runtimes else 0.0

    @property
    def total_runtime(self) -> float:
        """Total solve time in seconds."""
        return sum(self.runtimes)

    @property
    def mean_servers_used(self) -> float:
        """Average number of servers per tree (the paper's ``l``)."""
        if not self.servers_used:
            return 0.0
        return sum(self.servers_used) / len(self.servers_used)


@dataclass
class OnlineRunStats:
    """Aggregates for one online admission run (Figs. 8–9).

    Attributes:
        admitted: number of admitted requests (the throughput objective).
        rejected: number of rejected requests.
        reject_reasons: histogram of rejection causes.
        operational_costs: cost of each admitted tree.
        admitted_timeline: cumulative admitted count after each arrival
            (drives the figures' x-axis sweeps).
        total_runtime: wall-clock seconds spent deciding.
        final_link_utilization: mean link utilization at the end of the run.
        final_server_utilization: mean server utilization at the end.
        telemetry: counter deltas accumulated during this run (empty when
            :mod:`repro.obs` recording is disabled).
    """

    admitted: int = 0
    rejected: int = 0
    reject_reasons: Dict[RejectReason, int] = field(default_factory=dict)
    operational_costs: List[float] = field(default_factory=list)
    admitted_timeline: List[int] = field(default_factory=list)
    total_runtime: float = 0.0
    final_link_utilization: float = 0.0
    final_server_utilization: float = 0.0
    telemetry: Dict[str, float] = field(default_factory=dict)

    @property
    def processed(self) -> int:
        """Total requests considered."""
        return self.admitted + self.rejected

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of requests admitted (0 when nothing processed)."""
        return self.admitted / self.processed if self.processed else 0.0

    @property
    def total_operational_cost(self) -> float:
        """Sum of admitted trees' operational costs."""
        return sum(self.operational_costs)

    def record_rejection(self, reason: Optional[RejectReason]) -> None:
        """Bump the histogram for one rejection."""
        if reason is not None:
            self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1
