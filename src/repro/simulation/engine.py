"""Drivers that replay request workloads against solvers and networks.

Three run shapes cover every figure in the paper:

- :func:`run_offline` — independent single-request solves on a fixed
  network (Figs. 5 and 6: the uncapacitated cost/runtime comparisons).
- :func:`run_sequential_capacitated` — single-request solves that *commit*
  their resources before the next request arrives (Fig. 7:
  ``Appro_Multi_Cap`` under load).
- :func:`run_online` — a true online run driving an
  :class:`~repro.core.online_base.OnlineAlgorithm` (Figs. 8 and 9), with
  optional departure events for churn experiments.

The resilience extension adds :func:`run_online_with_failures`, which
replays a merged arrival/departure/failure/recovery stream and hands every
failure-broken request to a :class:`~repro.resilience.repair.RepairStrategy`.
With an empty failure schedule it reproduces
:func:`run_online_with_departures` exactly.
"""

from __future__ import annotations

# The engines read time.perf_counter() to *report* per-request solver
# runtime as a figure metric (Figs. 6/8 running-time panels); the value is
# never a control input, so determinism is unaffected.
# repro-lint: disable-file=RL007

import time
from typing import Callable, Iterable, Optional, Sequence

from repro.core.admission import try_allocate
from repro.core.online_base import OnlineAlgorithm, OnlineDecision, RejectReason
from repro.core.pseudo_tree import PseudoMulticastTree
from repro.exceptions import InfeasibleRequestError
from repro.network.controller import Controller, TableCapacityExceededError
from repro.network.sdn import SDNetwork
from repro.obs import (
    DEFAULT_COST_BOUNDS as _COST_BOUNDS,
    counters as _obs_counters,
    counters_since as _obs_counters_since,
    enabled as _obs_enabled,
    hist as _obs_hist,
    inc as _obs_inc,
    request_scope as _obs_request,
    span as _obs_span,
    trace_instant as _obs_instant,
)
from repro.obs.emitter import SnapshotEmitter
from repro.resilience.events import FailureEvent, apply_event
from repro.resilience.impact import (
    affected_request_ids,
    check_residual_consistency,
    classify_impact,
)
from repro.resilience.repair import (
    ActiveRequest,
    DropAffected,
    RepairContext,
    RepairStrategy,
)
from repro.simulation.metrics import (
    OfflineRunStats,
    OnlineRunStats,
    ResilienceRunStats,
)
from repro.workload.arrivals import EventKind, RequestEvent
from repro.workload.request import MulticastRequest

OfflineSolver = Callable[[SDNetwork, MulticastRequest], PseudoMulticastTree]


def _install_admitted(
    algorithm: OnlineAlgorithm,
    controller: Controller,
    decision: OnlineDecision,
) -> bool:
    """Program the data plane for an admitted decision.

    If the controller rejects the tree (flow-table capacity), the admission
    is *evicted*: resources are released and the decision is rewritten as a
    rejection, modelling control-plane admission control.  Returns whether
    installation succeeded.
    """
    assert decision.tree is not None
    request = decision.request
    try:
        controller.install_tree(
            request.request_id,
            decision.tree.routing_hops(),
            list(decision.tree.servers),
        )
        return True
    except TableCapacityExceededError:
        algorithm.depart(request.request_id)
        decision.admitted = False
        decision.reason = RejectReason.TABLE_CAPACITY
        decision.tree = None
        decision.transaction = None
        return False


def run_offline(
    solver: OfflineSolver,
    network: SDNetwork,
    requests: Sequence[MulticastRequest],
) -> OfflineRunStats:
    """Solve each request independently (no resource state carries over).

    Matches Figs. 5 and 6, which average the cost and running time of
    admitting each request on an otherwise idle network.
    """
    stats = OfflineRunStats()
    observing = _obs_enabled()
    before = _obs_counters() if observing else None
    with _obs_span("run_offline"):
        for request in requests:
            _obs_inc("engine.requests")
            with _obs_request(request.request_id):
                started = time.perf_counter()
                try:
                    tree = solver(network, request)
                except InfeasibleRequestError:
                    stats.infeasible += 1
                    _obs_inc("engine.infeasible")
                    continue
                finally:
                    elapsed = time.perf_counter() - started
            stats.solved += 1
            _obs_inc("engine.solved")
            if observing:
                _obs_hist("engine.admission_seconds", elapsed)
                _obs_hist("engine.tree_cost", tree.total_cost, _COST_BOUNDS)
            stats.runtimes.append(elapsed)
            stats.costs.append(tree.total_cost)
            stats.servers_used.append(tree.num_servers)
    stats.telemetry = _obs_counters_since(before)
    return stats


def run_sequential_capacitated(
    solver: OfflineSolver,
    network: SDNetwork,
    requests: Sequence[MulticastRequest],
    controller: Optional[Controller] = None,
) -> OfflineRunStats:
    """Admit requests one after another, committing resources (Fig. 7).

    Each solved tree's bandwidth and compute are reserved before the next
    request is considered; a request whose tree cannot be reserved (or for
    which the pruned network is infeasible) counts as infeasible.
    """
    stats = OfflineRunStats()
    observing = _obs_enabled()
    before = _obs_counters() if observing else None
    with _obs_span("run_sequential_capacitated"):
        for request in requests:
            _obs_inc("engine.requests")
            with _obs_request(request.request_id):
                started = time.perf_counter()
                try:
                    tree = solver(network, request)
                except InfeasibleRequestError:
                    stats.infeasible += 1
                    _obs_inc("engine.infeasible")
                    stats.runtimes.append(time.perf_counter() - started)
                    continue
                elapsed = time.perf_counter() - started
                transaction = try_allocate(network, tree)
                if transaction is None:
                    stats.infeasible += 1
                    _obs_inc("engine.infeasible")
                    stats.runtimes.append(elapsed)
                    continue
                if controller is not None:
                    try:
                        controller.install_tree(
                            request.request_id, tree.routing_hops(),
                            list(tree.servers),
                        )
                    except TableCapacityExceededError:
                        transaction.release_all()
                        stats.infeasible += 1
                        _obs_inc("engine.infeasible")
                        stats.runtimes.append(elapsed)
                        continue
            stats.solved += 1
            _obs_inc("engine.solved")
            if observing:
                _obs_hist("engine.admission_seconds", elapsed)
                _obs_hist("engine.tree_cost", tree.total_cost, _COST_BOUNDS)
            stats.runtimes.append(elapsed)
            stats.costs.append(tree.total_cost)
            stats.servers_used.append(tree.num_servers)
    stats.telemetry = _obs_counters_since(before)
    return stats


def run_online(
    algorithm: OnlineAlgorithm,
    requests: Iterable[MulticastRequest],
    controller: Optional[Controller] = None,
    emitter: Optional[SnapshotEmitter] = None,
) -> OnlineRunStats:
    """Drive an online algorithm over an arrival-only request iterable.

    ``requests`` may be any iterable — a materialized list (the figure
    replays) or a lazy generator (long streams); the sequence is consumed
    exactly once, in order, and the resulting statistics are bit-identical
    either way (locked by the list-vs-generator differential test).

    With an ``emitter``, every processed request ticks it so delta
    snapshots stream out at the emitter's cadence (the final flush stays
    the caller's responsibility — typically ``emitter.finish()`` or the
    emitter's context manager).
    """
    stats = OnlineRunStats()
    network = algorithm.network
    observing = _obs_enabled()
    before = _obs_counters() if observing else None
    started = time.perf_counter()
    with _obs_span("run_online"):
        for request in requests:
            with _obs_request(request.request_id):
                arrived = time.perf_counter()
                decision = algorithm.process(request)
                if decision.admitted and controller is not None:
                    _install_admitted(algorithm, controller, decision)
                if observing:
                    _obs_hist(
                        "engine.admission_seconds",
                        time.perf_counter() - arrived,
                    )
                if decision.admitted:
                    assert decision.tree is not None
                    stats.admitted += 1
                    cost = decision.tree.total_cost
                    stats.operational_costs.append(cost)
                    if observing:
                        _obs_hist("engine.tree_cost", cost, _COST_BOUNDS)
                    _obs_instant("engine.admit", cost=cost)
                else:
                    stats.rejected += 1
                    stats.record_rejection(decision.reason)
                    _obs_instant(
                        "engine.reject",
                        reason=decision.reason.value
                        if decision.reason is not None
                        else None,
                    )
                stats.admitted_timeline.append(stats.admitted)
            if emitter is not None:
                emitter.tick()
    stats.total_runtime = time.perf_counter() - started
    stats.final_link_utilization = network.mean_link_utilization()
    stats.final_server_utilization = network.mean_server_utilization()
    stats.telemetry = _obs_counters_since(before)
    return stats


def run_online_with_departures(
    algorithm: OnlineAlgorithm,
    events: Iterable[RequestEvent],
    controller: Optional[Controller] = None,
    emitter: Optional[SnapshotEmitter] = None,
) -> OnlineRunStats:
    """Drive an online algorithm over a timed arrival/departure iterable.

    ``events`` may be a materialized list or a lazy generator; it is
    consumed once, in order, with bit-identical results either way.
    Departures release the resources of previously admitted requests;
    departures of rejected requests are ignored (they hold nothing).
    With an ``emitter``, every *arrival* ticks it (departures ride along
    in whatever flush follows).
    """
    stats = OnlineRunStats()
    network = algorithm.network
    admitted_ids = set()
    observing = _obs_enabled()
    before = _obs_counters() if observing else None
    started = time.perf_counter()
    with _obs_span("run_online_with_departures"):
        for event in events:
            request = event.request
            if event.kind is EventKind.ARRIVAL:
                with _obs_request(request.request_id):
                    arrived = time.perf_counter()
                    decision = algorithm.process(request)
                    if decision.admitted and controller is not None:
                        _install_admitted(algorithm, controller, decision)
                    if observing:
                        _obs_hist(
                            "engine.admission_seconds",
                            time.perf_counter() - arrived,
                        )
                    if decision.admitted:
                        assert decision.tree is not None
                        admitted_ids.add(request.request_id)
                        stats.admitted += 1
                        cost = decision.tree.total_cost
                        stats.operational_costs.append(cost)
                        if observing:
                            _obs_hist("engine.tree_cost", cost, _COST_BOUNDS)
                        _obs_instant("engine.admit", cost=cost)
                    else:
                        stats.rejected += 1
                        stats.record_rejection(decision.reason)
                        _obs_instant(
                            "engine.reject",
                            reason=decision.reason.value
                            if decision.reason is not None
                            else None,
                        )
                    stats.admitted_timeline.append(stats.admitted)
                if emitter is not None:
                    emitter.tick()
            else:
                if request.request_id in admitted_ids:
                    _obs_inc("engine.departures")
                    with _obs_request(request.request_id):
                        algorithm.depart(request.request_id)
                        admitted_ids.discard(request.request_id)
                        if controller is not None:
                            controller.uninstall(request.request_id)
                        _obs_instant("engine.depart")
    stats.total_runtime = time.perf_counter() - started
    stats.final_link_utilization = network.mean_link_utilization()
    stats.final_server_utilization = network.mean_server_utilization()
    stats.telemetry = _obs_counters_since(before)
    return stats


def _touches_failure(
    active: ActiveRequest, down_links: set, down_servers: set
) -> bool:
    """Whether a live tree uses any currently failed link or server."""
    if down_servers and any(s in down_servers for s in active.tree.servers):
        return True
    if not down_links:
        return False
    return any(key in down_links for key in active.tree.edge_usage())


def run_online_with_failures(
    algorithm: OnlineAlgorithm,
    events: Iterable,
    controller: Optional[Controller] = None,
    strategy: Optional[RepairStrategy] = None,
    audit: bool = False,
    emitter: Optional[SnapshotEmitter] = None,
) -> ResilienceRunStats:
    """Drive an online algorithm through arrivals, departures, and failures.

    ``events`` is a merged, time-ordered stream (see
    :func:`repro.workload.arrivals.interleave`) of
    :class:`~repro.workload.arrivals.RequestEvent` and
    :class:`~repro.resilience.events.FailureEvent` records.  Arrivals and
    departures behave exactly as in :func:`run_online_with_departures`; a
    failure additionally walks the installed requests it breaks (through
    the controller's flow-rule records when a controller is attached) and
    hands each to ``strategy``, which repairs it or drops it.  Recoveries
    restore capacity for future admissions and repairs but never
    re-admit a previously dropped request.

    Args:
        algorithm: the online admission algorithm under test.
        events: the merged event stream.
        controller: optional data plane; required for flow-rule-level
            impact matching (without it, trees are matched directly).
        strategy: the repair strategy for broken requests (defaults to the
            :class:`~repro.resilience.repair.DropAffected` baseline).
        audit: when set, re-check the network/controller residual-
            consistency invariants after every event (tests; slow).

    Returns:
        :class:`ResilienceRunStats` — admission fields identical in
        meaning to :func:`run_online_with_departures`, plus failure,
        repair, and downtime aggregates.
    """
    if strategy is None:
        strategy = DropAffected()
    stats = ResilienceRunStats()
    network = algorithm.network
    context = RepairContext(
        network=network, controller=controller, algorithm=algorithm
    )
    active: dict = {}
    #: request_id -> (drop time, destination count) for downtime accounting
    dropped: dict = {}
    horizon = 0.0
    observing = _obs_enabled()
    before = _obs_counters() if observing else None
    started = time.perf_counter()
    with _obs_span("run_online_with_failures"):
        for event in events:
            horizon = max(horizon, event.time)
            if isinstance(event, FailureEvent):
                _handle_failure_event(
                    event, context, strategy, active, dropped, stats
                )
            elif event.kind is EventKind.ARRIVAL:
                request = event.request
                with _obs_request(request.request_id):
                    arrived = time.perf_counter()
                    decision = algorithm.process(request)
                    if decision.admitted and controller is not None:
                        _install_admitted(algorithm, controller, decision)
                    if observing:
                        _obs_hist(
                            "engine.admission_seconds",
                            time.perf_counter() - arrived,
                        )
                    if decision.admitted:
                        assert decision.tree is not None
                        assert decision.transaction is not None
                        active[request.request_id] = ActiveRequest(
                            request=request,
                            tree=decision.tree,
                            transaction=decision.transaction,
                            via_algorithm=True,
                        )
                        stats.admitted += 1
                        cost = decision.tree.total_cost
                        stats.operational_costs.append(cost)
                        if observing:
                            _obs_hist("engine.tree_cost", cost, _COST_BOUNDS)
                        _obs_instant("engine.admit", cost=cost)
                    else:
                        stats.rejected += 1
                        stats.record_rejection(decision.reason)
                        _obs_instant(
                            "engine.reject",
                            reason=decision.reason.value
                            if decision.reason is not None
                            else None,
                        )
                    stats.admitted_timeline.append(stats.admitted)
                if emitter is not None:
                    emitter.tick()
            else:
                request = event.request
                record = active.pop(request.request_id, None)
                if record is not None:
                    _obs_inc("engine.departures")
                    if record.via_algorithm:
                        algorithm.depart(request.request_id)
                    else:
                        record.transaction.release_all()
                    if controller is not None:
                        controller.uninstall(request.request_id)
                elif request.request_id in dropped:
                    # the request would have departed now; its downtime ends
                    drop_time, destinations = dropped.pop(request.request_id)
                    stats.destination_downtime += destinations * (
                        event.time - drop_time
                    )
            if audit and controller is not None:
                check_residual_consistency(
                    network, controller, [a.tree for a in active.values()]
                )
    # requests dropped and never departing are down until the run's horizon
    for drop_time, destinations in dropped.values():
        stats.destination_downtime += destinations * (horizon - drop_time)
    stats.total_runtime = time.perf_counter() - started
    stats.final_link_utilization = network.mean_link_utilization()
    stats.final_server_utilization = network.mean_server_utilization()
    stats.telemetry = _obs_counters_since(before)
    return stats


def _handle_failure_event(
    event: FailureEvent,
    context: RepairContext,
    strategy: RepairStrategy,
    active: dict,
    dropped: dict,
    stats: ResilienceRunStats,
) -> None:
    """Apply one failure/recovery and repair the requests it breaks."""
    network = context.network
    changed = apply_event(network, event)
    if event.up:
        if changed:
            stats.recoveries += 1
            _obs_inc("engine.recoveries")
        return
    if not changed:
        return
    stats.failures += 1
    _obs_inc("engine.failures")
    with _obs_span("failure_repair"):
        if context.controller is not None:
            candidates = [
                rid
                for rid in affected_request_ids(context.controller, network)
                if rid in active
            ]
        else:
            down_links = set(network.failed_links())
            down_servers = set(network.failed_servers())
            candidates = [
                rid
                for rid, record in active.items()
                if _touches_failure(record, down_links, down_servers)
            ]
        for rid in candidates:
            impact = classify_impact(network, active[rid].tree)
            if not impact.broken:
                continue
            stats.broken_requests += 1
            _obs_inc("engine.broken_requests")
            record = active.pop(rid)
            with _obs_request(rid):
                result = strategy.repair(context, record, impact)
                _obs_instant(
                    "engine.repair", action=result.action.value
                )
            stats.record_repair(result.action.value)
            if result.active is not None:
                active[rid] = result.active
                stats.repair_costs.append(result.repair_cost)
            else:
                dropped[rid] = (
                    event.time,
                    len(record.request.destinations),
                )
