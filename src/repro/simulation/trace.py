"""Structured simulation traces: one JSON-serializable event per decision.

Experiments aggregate; debugging and post-hoc analysis need the raw
sequence.  A :class:`TraceRecorder` passed to :func:`record_online_run`
captures, per request: the decision, rejection reason, selected servers,
operational cost, and network utilization *at that instant* — everything a
notebook needs to reconstruct an admission race without re-running it.

Recording is optional-cost: :class:`NullTraceRecorder` shares the recorder
interface but records nothing (and, crucially, never reads the network's
utilization — the expensive part of a real event), so callers that only
want the run statistics pass ``recorder=None`` and the run loop still
calls ``recorder.record(...)`` unconditionally, with no per-decision
branching anywhere.
"""

from __future__ import annotations

# Wall-clock reads here stamp the *reported* total_runtime statistic of a
# recorded run; no decision ever branches on them.
# repro-lint: disable-file=RL007

import json
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, Hashable, Iterable, List, Optional, Union

from repro.core.online_base import OnlineAlgorithm, OnlineDecision
from repro.obs import (
    counters as _obs_counters,
    counters_since as _obs_counters_since,
    enabled as _obs_enabled,
    request_scope as _obs_request,
    span as _obs_span,
    trace_instant as _obs_instant,
)
from repro.obs.emitter import SnapshotEmitter
from repro.simulation.metrics import OnlineRunStats
from repro.workload.request import MulticastRequest


@dataclass(frozen=True)
class TraceEvent:
    """One admission decision with its context snapshot.

    Attributes mirror what an SDN operator's audit log would hold.
    """

    sequence: int
    request_id: Hashable
    source: str
    num_destinations: int
    bandwidth: float
    compute_demand: float
    admitted: bool
    reason: Optional[str]
    servers: List[str]
    operational_cost: Optional[float]
    selection_weight: Optional[float]
    link_utilization: float
    server_utilization: float

    def to_json(self) -> str:
        """Serialize to one JSON line."""
        return json.dumps(asdict(self), sort_keys=True, default=str)


class TraceRecorder:
    """Collects :class:`TraceEvent` records during an online run.

    Args:
        max_events: optional retention bound.  ``None`` (the default, and
            the historical behavior) retains the full trace; a positive
            bound keeps only the *latest* ``max_events`` records in a ring
            (like the obs layer's ``TraceLog``), so a recorder attached to
            an unbounded stream cannot grow without bound.  ``sequence``
            numbers keep counting across evictions, so a truncated trace
            is recognizable as such.
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self._sequence = 0

    def record(
        self, algorithm: OnlineAlgorithm, decision: OnlineDecision
    ) -> TraceEvent:
        """Append the event for one decision (network state read *now*)."""
        request = decision.request
        network = algorithm.network
        event = TraceEvent(
            sequence=self._sequence,
            request_id=request.request_id,
            source=str(request.source),
            num_destinations=request.num_destinations,
            bandwidth=request.bandwidth,
            compute_demand=request.compute_demand,
            admitted=decision.admitted,
            reason=decision.reason.value if decision.reason else None,
            servers=(
                [str(s) for s in decision.tree.servers]
                if decision.tree is not None
                else []
            ),
            operational_cost=(
                decision.tree.total_cost if decision.tree is not None else None
            ),
            selection_weight=decision.selection_weight,
            link_utilization=network.mean_link_utilization(),
            server_utilization=network.mean_server_utilization(),
        )
        self._events.append(event)
        self._sequence += 1
        # Mirror the decision onto the obs timeline (no-op unless a
        # trace is active), unifying recorder events with phase spans.
        _obs_instant(
            "trace.decision",
            admitted=event.admitted,
            reason=event.reason,
            operational_cost=event.operational_cost,
        )
        return event

    @property
    def events(self) -> List[TraceEvent]:
        """All retained events, in decision order."""
        return list(self._events)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded, including any evicted by ``max_events``."""
        return self._sequence

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # analysis conveniences
    # ------------------------------------------------------------------
    def admitted_events(self) -> List[TraceEvent]:
        """Only the admissions."""
        return [e for e in self._events if e.admitted]

    def rejection_histogram(self) -> Dict[str, int]:
        """Counts per rejection reason."""
        histogram: Dict[str, int] = {}
        for event in self._events:
            if not event.admitted and event.reason:
                histogram[event.reason] = histogram.get(event.reason, 0) + 1
        return histogram

    def utilization_series(self) -> List[float]:
        """Mean link utilization after each decision (plots saturation)."""
        return [event.link_utilization for event in self._events]

    def to_jsonl(self) -> str:
        """The whole trace as JSON Lines."""
        return "\n".join(event.to_json() for event in self._events)

    def write_jsonl(self, path: str) -> None:
        """Write the trace to a ``.jsonl`` file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
            if self._events:
                handle.write("\n")


class NullTraceRecorder:
    """A recorder that records nothing, at no cost.

    Interface-compatible with :class:`TraceRecorder`, so run loops call
    ``recorder.record(...)`` unconditionally; this variant returns
    immediately without building an event or touching the network's
    utilization aggregates.  A single shared instance
    (:data:`NULL_RECORDER`) serves every untraced run — it holds no state.
    """

    __slots__ = ()

    def record(
        self, algorithm: OnlineAlgorithm, decision: OnlineDecision
    ) -> None:
        """Discard the decision (interface parity with TraceRecorder)."""
        return None

    @property
    def events(self) -> List[TraceEvent]:
        """Always empty."""
        return []

    def __len__(self) -> int:
        return 0

    def admitted_events(self) -> List[TraceEvent]:
        """Always empty."""
        return []

    def rejection_histogram(self) -> Dict[str, int]:
        """Always empty."""
        return {}

    def utilization_series(self) -> List[float]:
        """Always empty."""
        return []

    def to_jsonl(self) -> str:
        """The empty trace."""
        return ""

    def write_jsonl(self, path: str) -> None:
        """Write an empty trace file (keeps downstream tooling uniform)."""
        with open(path, "w", encoding="utf-8"):
            pass


#: Shared stateless instance used whenever tracing is switched off.
NULL_RECORDER = NullTraceRecorder()

#: Any object honouring the recorder interface.
TraceRecorderLike = Union[TraceRecorder, NullTraceRecorder]

#: Distinguishes "no argument" (record a full trace, the historical
#: default) from an explicit ``recorder=None`` (trace nothing).
_DEFAULT_RECORDER = object()


def record_online_run(
    algorithm: OnlineAlgorithm,
    requests: Iterable[MulticastRequest],
    recorder=_DEFAULT_RECORDER,
    emitter: Optional[SnapshotEmitter] = None,
) -> tuple:
    """Like :func:`repro.simulation.run_online`, but with a full trace.

    Args:
        algorithm: the online algorithm to drive.
        requests: the arrival sequence.
        recorder: a :class:`TraceRecorder` to append to; omitted, a fresh
            one is created.  Pass ``None`` to disable tracing — the run
            then uses the shared :data:`NULL_RECORDER` and skips all
            per-event snapshot work without any per-decision branching.
        emitter: an optional :class:`~repro.obs.emitter.SnapshotEmitter`
            ticked once per request, exactly as in the engine runners.

    Returns ``(stats, recorder)``.
    """
    if recorder is _DEFAULT_RECORDER:
        recorder = TraceRecorder()
    elif recorder is None:
        recorder = NULL_RECORDER
    stats = OnlineRunStats()
    before = _obs_counters() if _obs_enabled() else None
    started = time.perf_counter()
    with _obs_span("record_online_run"):
        for request in requests:
            with _obs_request(request.request_id):
                decision = algorithm.process(request)
                recorder.record(algorithm, decision)
                if decision.admitted:
                    assert decision.tree is not None
                    stats.admitted += 1
                    stats.operational_costs.append(decision.tree.total_cost)
                else:
                    stats.rejected += 1
                    stats.record_rejection(decision.reason)
                stats.admitted_timeline.append(stats.admitted)
            if emitter is not None:
                emitter.tick()
    stats.total_runtime = time.perf_counter() - started
    network = algorithm.network
    stats.final_link_utilization = network.mean_link_utilization()
    stats.final_server_utilization = network.mean_server_utilization()
    stats.telemetry = _obs_counters_since(before)
    return stats, recorder
