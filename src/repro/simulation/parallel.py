"""Process-pool fan-out for independent experiment trials.

Every figure driver reduces to a grid of *data points* — one per (topology,
ratio, size, …) tuple — and each point derives all of its randomness from
explicit ``ExperimentProfile.seed_for(...)`` arguments.  Points therefore
share no state and can run in any order on any worker, and the output is a
pure function of the argument tuple.  This module exploits that:

- :func:`parallel_map` fans ``func(*args)`` calls out across a process pool
  and returns results **in submission order**, so a driver's series are
  byte-identical to a serial run regardless of worker count or scheduling.
- :func:`default_workers` reads the ``REPRO_WORKERS`` environment variable
  (the CLI's ``--workers`` flag sets the same knob via
  :func:`set_default_workers`), defaulting to the machine's CPU count.

Determinism contract (see docs/API.md): a point function must be a
module-level callable (picklable), must take every seed it uses as an
explicit argument, and must not read mutable globals.  Under those rules
``parallel_map(f, grid)`` ≡ ``[f(*args) for args in grid]`` for every
worker count — the differential and figure tests rely on this equivalence.

If the pool itself fails (a sandbox without working semaphores, a worker
killed by the OOM killer), the runner falls back to serial execution rather
than losing the experiment; genuine exceptions *raised by the point
function* are re-raised unchanged.

Telemetry crosses the process boundary too: when :mod:`repro.obs`
recording is enabled in the parent, every pool task runs with a fresh
worker-local registry, snapshots it into the returned payload, and the
parent merges the snapshots *in submission order* — so ``--workers N``
reports exactly the counter totals a serial run accumulates in place (the
merge rules in :meth:`repro.obs.MetricsRegistry.merge` are additive for
counters, timers, *and* fixed-bucket histograms: bucket counts are
integers, so any worker partition of a deterministic value stream merges
to bit-identical counts — wall-clock-valued histograms agree on total
count only).  With recording disabled, the pool path is untouched and
pays nothing.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from functools import partial
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs import enable as _obs_enable, enabled as _obs_enabled
from repro.obs import merge as _obs_merge
from repro.obs import registry as _obs_registry
from repro.obs import snapshot as _obs_snapshot

__all__ = [
    "default_workers",
    "parallel_map",
    "set_default_workers",
]

#: Explicit override installed by :func:`set_default_workers` (CLI flag).
_worker_override: Optional[int] = None


def set_default_workers(count: Optional[int]) -> None:
    """Set (or clear, with ``None``) the process-wide worker default.

    Raises:
        ValueError: if ``count`` is given and is less than 1.
    """
    global _worker_override
    if count is not None and count < 1:
        raise ValueError(f"worker count must be >= 1, got {count}")
    _worker_override = count


def default_workers() -> int:
    """Resolve the worker count: override → ``REPRO_WORKERS`` → CPU count."""
    if _worker_override is not None:
        return _worker_override
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value >= 1:
            return value
    return max(1, os.cpu_count() or 1)


def _serial_map(
    func: Callable[..., Any], grid: Sequence[Tuple]
) -> List[Any]:
    return [func(*args) for args in grid]


def _isolated_serial_map(
    func: Callable[..., Any], grid: Sequence[Tuple]
) -> List[Any]:
    """Serial execution with pooled-path registry semantics.

    Each point runs on a *clean* registry and its deltas are merged back
    afterwards — exactly what :func:`_instrumented_point` does in a worker
    process.  Point functions that read the registry mid-run (the stream
    shard runner's per-shard emitters) therefore see identical contents at
    every worker count, which is what makes merged shard snapshots
    bit-identical between ``--workers 1`` and ``--workers N``.
    """
    results = []
    for args in grid:
        parent = _obs_snapshot()
        _obs_registry().clear()
        result = func(*args)
        point = _obs_snapshot()
        _obs_registry().clear()
        _obs_merge(parent)
        _obs_merge(point)
        results.append(result)
    return results


def _instrumented_point(func: Callable[..., Any], args: Tuple) -> Tuple:
    """Pool task wrapper: run one point with a clean worker registry.

    Enables recording (workers spawned without fork would otherwise start
    disabled), clears whatever a previous point on this worker process
    accumulated, and ships the point's own counters/timers back alongside
    its result so the parent can merge deltas additively.
    """
    _obs_enable()
    _obs_registry().clear()
    result = func(*args)
    return result, _obs_snapshot()


def parallel_map(
    func: Callable[..., Any],
    grid: Sequence[Tuple],
    workers: Optional[int] = None,
    isolate_registry: bool = False,
) -> List[Any]:
    """Evaluate ``func(*args)`` for every ``args`` in ``grid``.

    Args:
        func: a module-level (picklable) point function obeying the
            determinism contract in the module docstring.
        grid: argument tuples, one per data point.
        workers: process count; ``None`` uses :func:`default_workers`.
            A count of 1 (or a grid of at most one point) runs serially in
            this process with no pool overhead.
        isolate_registry: give every point a clean telemetry registry even
            on the serial path (the pooled path always does), merging each
            point's deltas back in submission order.  Required by point
            functions that *read* the registry while running — e.g. a
            per-shard :class:`~repro.obs.emitter.SnapshotEmitter` — so
            their payloads are identical at every worker count.  No effect
            while recording is disabled.

    Returns:
        The point results in the same order as ``grid`` — identical to
        ``[func(*args) for args in grid]``.
    """
    grid = list(grid)
    count = default_workers() if workers is None else workers
    if count < 1:
        raise ValueError(f"worker count must be >= 1, got {count}")
    count = min(count, len(grid))
    serial = (
        _isolated_serial_map
        if isolate_registry and _obs_enabled()
        else _serial_map
    )
    if count <= 1:
        return serial(func, grid)
    if _obs_enabled():
        try:
            with ProcessPoolExecutor(max_workers=count) as pool:
                pairs = list(pool.map(partial(_instrumented_point, func), grid))
        except (BrokenExecutor, OSError, PermissionError):
            # Serial fallback keeps the requested registry semantics.
            return serial(func, grid)
        results = []
        for result, snap in pairs:
            _obs_merge(snap)
            results.append(result)
        return results
    try:
        with ProcessPoolExecutor(max_workers=count) as pool:
            return list(pool.map(func, *zip(*grid)))
    except (BrokenExecutor, OSError, PermissionError):
        # Pool infrastructure failure (not a point-function error): the
        # experiment still matters more than the speedup.
        return serial(func, grid)
