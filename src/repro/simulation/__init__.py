"""Simulation: workload replay engines and result metrics."""

from repro.simulation.engine import (
    run_offline,
    run_online,
    run_online_with_departures,
    run_online_with_failures,
    run_sequential_capacitated,
)
from repro.simulation.metrics import (
    OfflineRunStats,
    OnlineRunStats,
    ResilienceRunStats,
)
from repro.simulation.parallel import (
    default_workers,
    parallel_map,
    set_default_workers,
)
from repro.simulation.trace import (
    NULL_RECORDER,
    NullTraceRecorder,
    TraceEvent,
    TraceRecorder,
    record_online_run,
)

__all__ = [
    "run_offline",
    "run_online",
    "run_online_with_departures",
    "run_online_with_failures",
    "run_sequential_capacitated",
    "default_workers",
    "parallel_map",
    "set_default_workers",
    "OfflineRunStats",
    "OnlineRunStats",
    "ResilienceRunStats",
    "NULL_RECORDER",
    "NullTraceRecorder",
    "TraceEvent",
    "TraceRecorder",
    "record_online_run",
]
