"""Random network topologies in the style of GT-ITM.

The paper generates its synthetic SDNs with GT-ITM [6], whose flat random
model places nodes uniformly in a unit square and connects each pair with the
Waxman probability ``P(u, v) = a · exp(−d(u, v) / (b · L))`` where ``d`` is
Euclidean distance and ``L`` the maximum possible distance.  This module
implements that model from scratch, plus a two-level transit–stub variant and
the classic Erdős–Rényi / Barabási–Albert generators used for robustness
experiments.  All generators:

- are fully deterministic given a ``seed``;
- return a connected :class:`~repro.graph.graph.Graph` (extra edges between
  nearest components are added if the random draw leaves the graph
  disconnected, mirroring GT-ITM's common "regenerate until connected" usage
  without unbounded retries);
- weight each edge with the Euclidean distance of its endpoints (scaled so
  weights are in a convenient ``[1, 10]`` band), which downstream code
  interprets as a per-unit-bandwidth usage cost.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import TopologyError
from repro.graph.components import connected_components
from repro.graph.graph import Graph, Node

#: Edge weights are Euclidean distances rescaled into [_MIN_WEIGHT, _MAX_WEIGHT].
_MIN_WEIGHT = 1.0
_MAX_WEIGHT = 10.0


@dataclass(frozen=True)
class Coordinates:
    """2-D node placements accompanying a generated topology."""

    positions: Dict[Node, Tuple[float, float]]

    def distance(self, u: Node, v: Node) -> float:
        """Return the Euclidean distance between two placed nodes."""
        ux, uy = self.positions[u]
        vx, vy = self.positions[v]
        return math.hypot(ux - vx, uy - vy)


def _scaled_weight(distance: float, scale: float) -> float:
    """Map a Euclidean distance in ``[0, scale]`` into the weight band."""
    if scale <= 0:
        return _MIN_WEIGHT
    fraction = min(1.0, distance / scale)
    return _MIN_WEIGHT + fraction * (_MAX_WEIGHT - _MIN_WEIGHT)


def _connect_components(
    graph: Graph, coords: Coordinates
) -> None:
    """Stitch a disconnected graph together with nearest-pair bridges."""
    while True:
        components = connected_components(graph)
        if len(components) <= 1:
            return
        base = components[0]
        best: Tuple[float, Node, Node] = (math.inf, None, None)  # type: ignore
        for other in components[1:]:
            for u in base:
                for v in other:
                    d = coords.distance(u, v)
                    if d < best[0]:
                        best = (d, u, v)
        _, u, v = best
        graph.add_edge(u, v, _scaled_weight(best[0], math.sqrt(2.0)))


def waxman_graph(
    n: int,
    alpha: float = 0.4,
    beta: float = 0.2,
    seed: int = 0,
) -> Tuple[Graph, Coordinates]:
    """Generate a connected Waxman random graph with ``n`` nodes.

    Args:
        n: number of nodes (labelled ``0 … n-1``).
        alpha: maximum edge probability (GT-ITM's ``a``); larger → denser.
        beta: distance decay (GT-ITM's ``b``); larger → more long edges.
        seed: RNG seed for reproducibility.

    Returns:
        ``(graph, coordinates)`` with Euclidean-distance edge weights.
    """
    if n <= 0:
        raise TopologyError(f"need a positive node count, got {n}")
    if not (0 < alpha <= 1):
        raise TopologyError(f"alpha must be in (0, 1], got {alpha}")
    if beta <= 0:
        raise TopologyError(f"beta must be positive, got {beta}")

    rng = random.Random(seed)
    positions = {i: (rng.random(), rng.random()) for i in range(n)}
    coords = Coordinates(positions=positions)
    max_distance = math.sqrt(2.0)

    graph = Graph()
    for node in range(n):
        graph.add_node(node)
    for u in range(n):
        for v in range(u + 1, n):
            d = coords.distance(u, v)
            probability = alpha * math.exp(-d / (beta * max_distance))
            if rng.random() < probability:
                graph.add_edge(u, v, _scaled_weight(d, max_distance))
    _connect_components(graph, coords)
    return graph, coords


def gt_itm_flat(n: int, seed: int = 0) -> Graph:
    """GT-ITM flat random model with the paper's default density.

    Thin wrapper around :func:`waxman_graph` using parameters tuned so that
    the average degree lands near 4 across the 50–250 node range the paper
    sweeps, matching typical GT-ITM configurations.
    """
    # alpha ∝ 1/(n-1) keeps the expected degree near 4 across network sizes
    # (expected degree ≈ alpha · (n-1) · E[exp(−d/(βL))] ≈ 0.32 · alpha · (n-1)
    # for beta = 0.3 and uniform placements in the unit square).
    alpha = min(1.0, 12.5 / max(1, n - 1))
    graph, _ = waxman_graph(n, alpha=alpha, beta=0.3, seed=seed)
    return graph


def erdos_renyi_graph(n: int, p: float, seed: int = 0) -> Graph:
    """Generate a connected Erdős–Rényi ``G(n, p)`` graph with unit weights.

    Connectivity is enforced by bridging components with random edges.
    """
    if n <= 0:
        raise TopologyError(f"need a positive node count, got {n}")
    if not (0 <= p <= 1):
        raise TopologyError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    graph = Graph()
    for node in range(n):
        graph.add_node(node)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v, 1.0)
    components = connected_components(graph)
    while len(components) > 1:
        u = rng.choice(sorted(components[0]))
        v = rng.choice(sorted(components[1]))
        graph.add_edge(u, v, 1.0)
        components = connected_components(graph)
    return graph


def barabasi_albert_graph(n: int, m: int, seed: int = 0) -> Graph:
    """Generate a Barabási–Albert preferential-attachment graph.

    Starts from an ``m``-node clique; each new node attaches to ``m``
    distinct existing nodes chosen proportionally to degree.  Always
    connected.  Edge weights are 1.
    """
    if m < 1:
        raise TopologyError(f"m must be >= 1, got {m}")
    if n <= m:
        raise TopologyError(f"need n > m, got n={n}, m={m}")
    rng = random.Random(seed)
    graph = Graph()
    repeated: List[int] = []  # degree-weighted node pool
    for u in range(m):
        graph.add_node(u)
    for u in range(m):
        for v in range(u + 1, m):
            graph.add_edge(u, v, 1.0)
            repeated.extend((u, v))
    if m == 1:
        repeated.append(0)
    for new in range(m, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for target in targets:
            graph.add_edge(new, target, 1.0)
            repeated.extend((new, target))
    return graph


def transit_stub_graph(
    transit_nodes: int = 4,
    stubs_per_transit: int = 3,
    stub_size: int = 4,
    seed: int = 0,
) -> Graph:
    """Generate a two-level GT-ITM transit–stub topology.

    A Waxman transit core is generated first; each transit node sponsors
    ``stubs_per_transit`` stub domains, each a small dense Waxman graph hung
    off the core by a single access link.  Node labels are strings
    ``"t<i>"`` for transit and ``"s<i>.<j>.<k>"`` for stub nodes so that the
    hierarchy is visible in traces.
    """
    if transit_nodes < 2:
        raise TopologyError("need at least 2 transit nodes")
    if stubs_per_transit < 1 or stub_size < 1:
        raise TopologyError("stub parameters must be positive")
    rng = random.Random(seed)
    core, core_coords = waxman_graph(
        transit_nodes, alpha=0.9, beta=0.5, seed=rng.randrange(2**30)
    )
    graph = Graph()
    for u, v, w in core.edges():
        graph.add_edge(f"t{u}", f"t{v}", w)
    for node in core.nodes():
        graph.add_node(f"t{node}")

    for t in range(transit_nodes):
        for s in range(stubs_per_transit):
            stub, _ = waxman_graph(
                stub_size, alpha=0.95, beta=0.6, seed=rng.randrange(2**30)
            )
            prefix = f"s{t}.{s}."
            for u, v, w in stub.edges():
                graph.add_edge(prefix + str(u), prefix + str(v), w)
            for node in stub.nodes():
                graph.add_node(prefix + str(node))
            gateway = prefix + str(rng.randrange(stub_size))
            graph.add_edge(f"t{t}", gateway, _MAX_WEIGHT / 2.0)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """Generate a ``rows × cols`` grid with unit weights (deterministic).

    Handy in tests: shortest paths and Steiner trees on grids are easy to
    reason about by hand.
    """
    if rows < 1 or cols < 1:
        raise TopologyError("grid dimensions must be positive")
    graph = Graph()
    for r in range(rows):
        for c in range(cols):
            graph.add_node((r, c))
            if r > 0:
                graph.add_edge((r - 1, c), (r, c), 1.0)
            if c > 0:
                graph.add_edge((r, c - 1), (r, c), 1.0)
    return graph
