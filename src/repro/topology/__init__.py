"""Topology substrate: synthetic generators and embedded real networks.

Provides everything Section VI of the paper draws topologies from: GT-ITM
style random graphs (Waxman / transit–stub), the real GÉANT backbone, and
Rocketfuel-scale ISP stand-ins for AS1755 and AS4755.
"""

from repro.topology.geant import (
    GEANT_EDGES,
    GEANT_POSITIONS,
    GEANT_SERVER_CITIES,
    geant_graph,
    geant_servers,
)
from repro.topology.random_graphs import (
    Coordinates,
    barabasi_albert_graph,
    erdos_renyi_graph,
    grid_graph,
    gt_itm_flat,
    transit_stub_graph,
    waxman_graph,
)
from repro.topology.rocketfuel import (
    ISP_PROFILES,
    ISPProfile,
    rocketfuel_graph,
    rocketfuel_servers,
)

__all__ = [
    "Coordinates",
    "waxman_graph",
    "gt_itm_flat",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "transit_stub_graph",
    "grid_graph",
    "geant_graph",
    "geant_servers",
    "GEANT_EDGES",
    "GEANT_POSITIONS",
    "GEANT_SERVER_CITIES",
    "ISPProfile",
    "ISP_PROFILES",
    "rocketfuel_graph",
    "rocketfuel_servers",
]
