"""ISP topologies in the style of the Rocketfuel measurement study.

The paper's real-network experiments use ISP maps measured by Rocketfuel [20]:
AS1755 (Ebone, Europe) and AS4755 (VSNL, India).  The raw Rocketfuel traces
are not redistributable inside this repository, so this module synthesizes
deterministic stand-ins that match the published POP-level scale of each AS —
node count, edge count, and the heavy-tailed degree mix characteristic of
measured ISP backbones (a small dense core plus a preferential-attachment
periphery).  Because the paper's algorithms consume only the weighted graph,
matching scale and degree shape preserves the qualitative behaviour the
evaluation section reports.  The substitution is recorded in DESIGN.md.

Each AS is generated once per process and cached; generation is seeded by the
AS number, so every run of every experiment sees the identical topology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List

from repro.exceptions import TopologyError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class ISPProfile:
    """Published POP-level scale of a Rocketfuel-measured AS."""

    asn: int
    name: str
    num_nodes: int
    num_edges: int
    core_size: int  # size of the densely-meshed backbone core
    num_servers: int  # NFV locations, following the SIMPLE setup [19]


#: POP-level profiles for the two ASes used in the paper's figures.
ISP_PROFILES: Dict[int, ISPProfile] = {
    1755: ISPProfile(
        asn=1755, name="Ebone (EU)", num_nodes=87, num_edges=161,
        core_size=10, num_servers=9,
    ),
    4755: ISPProfile(
        asn=4755, name="VSNL (India)", num_nodes=41, num_edges=68,
        core_size=6, num_servers=5,
    ),
}

_MIN_WEIGHT = 1.0
_MAX_WEIGHT = 10.0


def _isp_like_graph(profile: ISPProfile) -> Graph:
    """Synthesize a connected ISP-like graph matching ``profile``'s scale."""
    n, m = profile.num_nodes, profile.num_edges
    if m < n - 1:
        raise TopologyError(
            f"AS{profile.asn}: {m} edges cannot connect {n} nodes"
        )
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise TopologyError(f"AS{profile.asn}: {m} edges exceed simple-graph max")

    rng = random.Random(profile.asn * 7919)
    graph = Graph()
    for node in range(n):
        graph.add_node(node)

    # 1. Dense backbone core: each core pair linked with high probability.
    core = list(range(profile.core_size))
    for i in core:
        for j in core:
            if i < j and rng.random() < 0.55 and graph.num_edges < m:
                graph.add_edge(i, j, rng.uniform(_MIN_WEIGHT, _MAX_WEIGHT / 2))

    # 2. Periphery: preferential attachment onto the existing graph,
    #    guaranteeing connectivity (every new node gets >= 1 link).
    pool: List[int] = []
    for u, v, _ in graph.edges():
        pool.extend((u, v))
    if not pool:
        graph.add_edge(0, 1, rng.uniform(_MIN_WEIGHT, _MAX_WEIGHT))
        pool.extend((0, 1))
    for new in range(profile.core_size, n):
        target = rng.choice(pool)
        graph.add_edge(new, target, rng.uniform(_MIN_WEIGHT, _MAX_WEIGHT))
        pool.extend((new, target))

    # 3. Fill to the exact published edge count with degree-biased extras.
    guard = 0
    while graph.num_edges < m:
        u = rng.choice(pool)
        v = rng.choice(pool)
        guard += 1
        if guard > 100 * m:
            # fall back to uniform pairs if the pool keeps colliding
            u = rng.randrange(n)
            v = rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.uniform(_MIN_WEIGHT, _MAX_WEIGHT))
    return graph


@lru_cache(maxsize=None)
def rocketfuel_graph(asn: int) -> Graph:
    """Return the deterministic stand-in topology for ``asn``.

    Supported AS numbers are the keys of :data:`ISP_PROFILES` (1755, 4755).
    The returned graph is cached; callers that mutate it must ``copy()``.
    """
    try:
        profile = ISP_PROFILES[asn]
    except KeyError:
        raise TopologyError(
            f"unknown AS number {asn}; available: {sorted(ISP_PROFILES)}"
        ) from None
    graph = _isp_like_graph(profile)
    assert graph.num_nodes == profile.num_nodes
    assert graph.num_edges == profile.num_edges
    return graph


def rocketfuel_servers(asn: int) -> List[int]:
    """Return the NFV server locations for ``asn`` (highest-degree POPs)."""
    try:
        profile = ISP_PROFILES[asn]
    except KeyError:
        raise TopologyError(
            f"unknown AS number {asn}; available: {sorted(ISP_PROFILES)}"
        ) from None
    graph = rocketfuel_graph(asn)
    by_degree = sorted(
        graph.nodes(), key=lambda node: (-graph.degree(node), node)
    )
    return by_degree[: profile.num_servers]
