"""The GÉANT pan-European research network topology.

The paper evaluates on the real GÉANT topology [5] with nine server locations
as configured in Gushchin et al. [7].  This module embeds a 40-node,
61-edge approximation of the GÉANT (2012) backbone: node set and adjacency
follow the public Topology Zoo map of the network, with link weights derived
from great-circle distances between the POP cities (rescaled into the
library's standard ``[1, 10]`` cost band).  Where the exact fibre routes
differ from this reconstruction, only edge weights shift slightly; the
algorithms consume nothing but the weighted graph.

The nine default server locations are the highest-degree POPs, matching the
"consolidated middlebox" placement spirit of [7].
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.graph.graph import Graph

#: City -> (latitude, longitude) for every GÉANT point of presence.
GEANT_POSITIONS: Dict[str, Tuple[float, float]] = {
    "Amsterdam": (52.37, 4.90),
    "Athens": (37.98, 23.73),
    "Belgrade": (44.79, 20.45),
    "Bratislava": (48.15, 17.11),
    "Brussels": (50.85, 4.35),
    "Bucharest": (44.43, 26.10),
    "Budapest": (47.50, 19.04),
    "Copenhagen": (55.68, 12.57),
    "Dublin": (53.33, -6.25),
    "Frankfurt": (50.11, 8.68),
    "Geneva": (46.20, 6.14),
    "Hamburg": (53.55, 9.99),
    "Helsinki": (60.17, 24.94),
    "Istanbul": (41.01, 28.98),
    "Kaunas": (54.90, 23.89),
    "Kiev": (50.45, 30.52),
    "Lisbon": (38.72, -9.14),
    "Ljubljana": (46.05, 14.51),
    "London": (51.51, -0.13),
    "Luxembourg": (49.61, 6.13),
    "Madrid": (40.42, -3.70),
    "Malta": (35.90, 14.51),
    "Marseille": (43.30, 5.37),
    "Milan": (45.46, 9.19),
    "Moscow": (55.76, 37.62),
    "Nicosia": (35.19, 33.38),
    "Oslo": (59.91, 10.75),
    "Paris": (48.86, 2.35),
    "Podgorica": (42.44, 19.26),
    "Prague": (50.09, 14.42),
    "Reykjavik": (64.15, -21.94),
    "Riga": (56.95, 24.11),
    "Sofia": (42.70, 23.32),
    "Stockholm": (59.33, 18.07),
    "Tallinn": (59.44, 24.75),
    "Tel Aviv": (32.07, 34.79),
    "Vienna": (48.21, 16.37),
    "Vilnius": (54.69, 25.28),
    "Zagreb": (45.81, 15.98),
    "Zurich": (47.37, 8.54),
}

#: The 61 backbone adjacencies (city-name pairs).
GEANT_EDGES: List[Tuple[str, str]] = [
    ("Amsterdam", "Brussels"),
    ("Amsterdam", "Copenhagen"),
    ("Amsterdam", "Frankfurt"),
    ("Amsterdam", "Hamburg"),
    ("Amsterdam", "London"),
    ("Athens", "Milan"),
    ("Athens", "Sofia"),
    ("Belgrade", "Budapest"),
    ("Belgrade", "Sofia"),
    ("Belgrade", "Zagreb"),
    ("Bratislava", "Budapest"),
    ("Bratislava", "Vienna"),
    ("Brussels", "Luxembourg"),
    ("Brussels", "Paris"),
    ("Bucharest", "Budapest"),
    ("Bucharest", "Sofia"),
    ("Bucharest", "Istanbul"),
    ("Budapest", "Prague"),
    ("Budapest", "Vienna"),
    ("Copenhagen", "Hamburg"),
    ("Copenhagen", "Oslo"),
    ("Copenhagen", "Stockholm"),
    ("Dublin", "London"),
    ("Dublin", "Reykjavik"),
    ("Frankfurt", "Geneva"),
    ("Frankfurt", "Hamburg"),
    ("Frankfurt", "Luxembourg"),
    ("Frankfurt", "Paris"),
    ("Frankfurt", "Prague"),
    ("Frankfurt", "Vienna"),
    ("Frankfurt", "Moscow"),
    ("Geneva", "Madrid"),
    ("Geneva", "Marseille"),
    ("Geneva", "Milan"),
    ("Geneva", "Paris"),
    ("Geneva", "Zurich"),
    ("Hamburg", "Kaunas"),
    ("Helsinki", "Stockholm"),
    ("Helsinki", "Tallinn"),
    ("Istanbul", "Nicosia"),
    ("Kaunas", "Riga"),
    ("Kaunas", "Vilnius"),
    ("Kiev", "Moscow"),
    ("Kiev", "Vienna"),
    ("Lisbon", "London"),
    ("Lisbon", "Madrid"),
    ("Ljubljana", "Vienna"),
    ("Ljubljana", "Zagreb"),
    ("London", "Paris"),
    ("London", "Reykjavik"),
    ("Luxembourg", "Paris"),
    ("Madrid", "Marseille"),
    ("Malta", "Milan"),
    ("Marseille", "Tel Aviv"),
    ("Milan", "Vienna"),
    ("Milan", "Zurich"),
    ("Nicosia", "Tel Aviv"),
    ("Oslo", "Stockholm"),
    ("Podgorica", "Zagreb"),
    ("Prague", "Vienna"),
    ("Riga", "Tallinn"),
]

#: The nine default server POPs (highest-degree backbone hubs).
GEANT_SERVER_CITIES: List[str] = [
    "Frankfurt",
    "Geneva",
    "Vienna",
    "Amsterdam",
    "London",
    "Paris",
    "Budapest",
    "Milan",
    "Copenhagen",
]

_EARTH_RADIUS_KM = 6371.0
_MIN_WEIGHT = 1.0
_MAX_WEIGHT = 10.0


def _haversine_km(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Great-circle distance in kilometres between two (lat, lon) points."""
    lat1, lon1 = map(math.radians, a)
    lat2, lon2 = map(math.radians, b)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(
        dlon / 2
    ) ** 2
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def geant_graph() -> Graph:
    """Return the GÉANT topology as a weighted :class:`Graph`.

    Edge weights are great-circle distances rescaled into ``[1, 10]`` so that
    they are commensurate with the random-topology generators.
    """
    distances = {
        (u, v): _haversine_km(GEANT_POSITIONS[u], GEANT_POSITIONS[v])
        for u, v in GEANT_EDGES
    }
    longest = max(distances.values())
    graph = Graph()
    for city in GEANT_POSITIONS:
        graph.add_node(city)
    for (u, v), km in distances.items():
        weight = _MIN_WEIGHT + (km / longest) * (_MAX_WEIGHT - _MIN_WEIGHT)
        graph.add_edge(u, v, weight)
    return graph


def geant_servers() -> List[str]:
    """Return the nine default server locations for GÉANT."""
    return list(GEANT_SERVER_CITIES)
