"""NFV-enabled multicast requests ``r_k = (s_k, D_k; b_k, SC_k)``."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable

from repro.exceptions import RequestError
from repro.nfv.service_chain import ServiceChain

Node = Hashable


@dataclass(frozen=True)
class MulticastRequest:
    """One NFV-enabled multicast request (Section III-B of the paper).

    Attributes:
        request_id: sequence number ``k`` (unique within a workload).
        source: the source switch ``s_k``.
        destinations: the terminal set ``D_k`` (non-empty, excludes the
            source).
        bandwidth: demanded bandwidth ``b_k`` in Mbps.
        chain: the service chain ``SC_k`` every packet must traverse.
    """

    request_id: int
    source: Node
    destinations: FrozenSet[Node]
    bandwidth: float
    chain: ServiceChain

    def __post_init__(self) -> None:
        if not self.destinations:
            raise RequestError(
                f"request {self.request_id}: destination set is empty"
            )
        if self.source in self.destinations:
            raise RequestError(
                f"request {self.request_id}: source {self.source!r} appears "
                "among its destinations"
            )
        if self.bandwidth <= 0:
            raise RequestError(
                f"request {self.request_id}: bandwidth must be positive, "
                f"got {self.bandwidth}"
            )

    @classmethod
    def create(
        cls,
        request_id: int,
        source: Node,
        destinations: Iterable[Node],
        bandwidth: float,
        chain: ServiceChain,
    ) -> "MulticastRequest":
        """Build a request, freezing the destination set."""
        return cls(
            request_id=request_id,
            source=source,
            destinations=frozenset(destinations),
            bandwidth=bandwidth,
            chain=chain,
        )

    @property
    def compute_demand(self) -> float:
        """``C_v(SC_k)``: MHz required to host this request's chain."""
        return self.chain.compute_demand(self.bandwidth)

    @property
    def num_destinations(self) -> int:
        """``|D_k|``."""
        return len(self.destinations)

    def describe(self) -> str:
        """Return a compact human-readable summary."""
        destinations = ", ".join(sorted(str(d) for d in self.destinations))
        return (
            f"r{self.request_id}: {self.source} -> [{destinations}] "
            f"@{self.bandwidth:g} Mbps, chain {self.chain.describe()}"
        )
