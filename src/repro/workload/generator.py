"""Random multicast-request workloads with the paper's parameter ranges.

Section VI-A of the paper: each request's source and destinations are drawn
uniformly at random; the ratio of the maximum destination count ``D_max`` to
the network size ``|V|`` lies in ``[0.05, 0.2]``; bandwidth demand is uniform
in ``[50, 200]`` Mbps; service chains are drawn from the five-function
catalogue.  The generator is deterministic given its seed so every figure is
exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterator, List, Optional

from repro.exceptions import RequestError
from repro.graph.graph import Graph
from repro.nfv.service_chain import random_service_chain
from repro.workload.request import MulticastRequest

Node = Hashable

#: Paper defaults (Section VI-A).  ``D_max/|V|`` is drawn per request from
#: this range; figures that sweep the ratio pass a fixed float instead.
DEFAULT_BANDWIDTH_RANGE = (50.0, 200.0)  # Mbps
DEFAULT_DMAX_RATIO = (0.05, 0.2)
DEFAULT_CHAIN_LENGTH_RANGE = (1, 3)


@dataclass(frozen=True)
class WorkloadConfig:
    """Tunable knobs of the request generator.

    Attributes:
        dmax_ratio: ``D_max / |V|``.  Either a fixed float or a ``(low,
            high)`` range drawn uniformly per request (the paper's default);
            each request then draws its destination count uniformly from
            ``[1, max(1, round(ratio · |V|))]``.
        bandwidth_range: uniform band for ``b_k`` in Mbps.
        chain_length_range: inclusive bounds on service-chain length.
        seed: RNG seed.
    """

    dmax_ratio: object = DEFAULT_DMAX_RATIO
    bandwidth_range: tuple = DEFAULT_BANDWIDTH_RANGE
    chain_length_range: tuple = DEFAULT_CHAIN_LENGTH_RANGE
    seed: int = 0

    def __post_init__(self) -> None:
        low, high = self.ratio_bounds
        if not 0 < low <= high <= 1:
            raise RequestError(f"dmax_ratio must be in (0, 1]: {self.dmax_ratio}")
        blow, bhigh = self.bandwidth_range
        if not 0 < blow <= bhigh:
            raise RequestError(f"bad bandwidth range {self.bandwidth_range}")
        lo, hi = self.chain_length_range
        if not 1 <= lo <= hi:
            raise RequestError(f"bad chain length range {self.chain_length_range}")

    @property
    def ratio_bounds(self) -> tuple:
        """The ``(low, high)`` bounds of the destination ratio."""
        if isinstance(self.dmax_ratio, (int, float)):
            return (float(self.dmax_ratio), float(self.dmax_ratio))
        low, high = self.dmax_ratio  # type: ignore[misc]
        return (float(low), float(high))


class RequestGenerator:
    """Draws i.i.d. multicast requests over a fixed topology.

    >>> from repro.topology import gt_itm_flat
    >>> gen = RequestGenerator(gt_itm_flat(50, seed=1), WorkloadConfig(seed=7))
    >>> requests = gen.generate(3)
    >>> [r.request_id for r in requests]
    [1, 2, 3]
    """

    def __init__(self, graph: Graph, config: Optional[WorkloadConfig] = None):
        if graph.num_nodes < 2:
            raise RequestError("workloads need at least two switches")
        self._nodes: List[Node] = sorted(graph.nodes(), key=repr)
        self._config = config or WorkloadConfig()
        self._rng = random.Random(self._config.seed)
        self._next_id = 1

    @property
    def config(self) -> WorkloadConfig:
        """The generator's configuration."""
        return self._config

    def _max_destinations(self) -> int:
        low, high = self._config.ratio_bounds
        ratio = low if low == high else self._rng.uniform(low, high)
        return max(1, round(ratio * len(self._nodes)))

    def next_request(self) -> MulticastRequest:
        """Draw the next request in the sequence."""
        rng = self._rng
        source = rng.choice(self._nodes)
        dmax = min(self._max_destinations(), len(self._nodes) - 1)
        count = rng.randint(1, dmax)
        candidates = [node for node in self._nodes if node != source]
        destinations = rng.sample(candidates, count)
        bandwidth = rng.uniform(*self._config.bandwidth_range)
        lo, hi = self._config.chain_length_range
        chain = random_service_chain(rng, min_length=lo, max_length=hi)
        request = MulticastRequest.create(
            request_id=self._next_id,
            source=source,
            destinations=destinations,
            bandwidth=bandwidth,
            chain=chain,
        )
        self._next_id += 1
        return request

    def generate(self, count: int) -> List[MulticastRequest]:
        """Draw ``count`` requests."""
        if count < 0:
            raise RequestError(f"cannot generate {count} requests")
        return [self.next_request() for _ in range(count)]

    def stream(self, count: int) -> Iterator[MulticastRequest]:
        """Lazily yield ``count`` requests (for long online simulations)."""
        for _ in range(count):
            yield self.next_request()

    # ------------------------------------------------------------------
    # checkpoint support (repro.stream)
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """JSON-serializable drawing state (RNG + next request id).

        Restoring this state into a generator built with the same graph
        and config resumes the request sequence exactly where it stopped —
        the bit-identity anchor of the streaming checkpoint layer.
        """
        version, internal, gauss_next = self._rng.getstate()
        return {
            "rng": [version, list(internal), gauss_next],
            "next_id": self._next_id,
        }

    def restore(self, state: dict) -> None:
        """Resume drawing from a :meth:`state` snapshot."""
        version, internal, gauss_next = state["rng"]
        self._rng.setstate((version, tuple(internal), gauss_next))
        self._next_id = int(state["next_id"])


def generate_workload(
    graph: Graph,
    count: int,
    dmax_ratio: object = DEFAULT_DMAX_RATIO,
    seed: int = 0,
    bandwidth_range: tuple = DEFAULT_BANDWIDTH_RANGE,
    chain_length_range: tuple = DEFAULT_CHAIN_LENGTH_RANGE,
) -> List[MulticastRequest]:
    """One-call convenience wrapper around :class:`RequestGenerator`."""
    config = WorkloadConfig(
        dmax_ratio=dmax_ratio,
        bandwidth_range=bandwidth_range,
        chain_length_range=chain_length_range,
        seed=seed,
    )
    return RequestGenerator(graph, config).generate(count)
