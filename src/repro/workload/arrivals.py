"""Arrival processes layering timing onto request sequences.

The paper's online model is a plain adversarial sequence (requests arrive one
by one and never leave).  For the extension experiments — and because any
production admission controller faces churn — this module also provides a
Poisson arrival process with exponential holding times, producing an event
list of arrivals and departures that the simulation engine can replay.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.exceptions import RequestError
from repro.workload.request import MulticastRequest


class EventKind(enum.Enum):
    """Arrival or departure of a request."""

    ARRIVAL = "arrival"
    DEPARTURE = "departure"


#: Rank of each event kind at equal times.  Departures precede arrivals so
#: capacity freed by a departure is usable by a simultaneous arrival.  The
#: resilience layer slots its events *before* both (recoveries at −2,
#: failures at −1 — see :mod:`repro.resilience.events`), so a simultaneous
#: arrival always sees the post-failure network.
DEPARTURE_RANK = 0
ARRIVAL_RANK = 1


def event_tiebreak(value: object) -> tuple:
    """A total, deterministic ordering key over arbitrary hashable ids.

    Numeric ids keep their natural order; everything else falls back to
    ``repr``.  The two classes never compare against each other (the leading
    tag separates them), so mixed-type id sets still sort without raising —
    which is what makes :func:`interleave` total.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return (1, 0.0, repr(value))
    return (0, float(value), "")


@dataclass(frozen=True)
class RequestEvent:
    """A timestamped arrival or departure.

    Ordering is by ``(time, rank, request id)``: departures before arrivals
    at equal times, and coincident events of the same kind tie-broken by
    request id (see :func:`event_tiebreak`), so every interleaving is
    reproducible across runs and worker processes.
    """

    time: float
    kind: EventKind
    request: MulticastRequest

    def sort_key(self) -> tuple:
        """Total ordering key: departures ahead of coincident arrivals."""
        rank = (
            DEPARTURE_RANK if self.kind is EventKind.DEPARTURE
            else ARRIVAL_RANK
        )
        return (self.time, rank, event_tiebreak(self.request.request_id))


def one_by_one(requests: Sequence[MulticastRequest]) -> List[RequestEvent]:
    """The paper's model: unit-spaced arrivals, no departures."""
    return [
        RequestEvent(time=float(i), kind=EventKind.ARRIVAL, request=request)
        for i, request in enumerate(requests)
    ]


def poisson_process(
    requests: Sequence[MulticastRequest],
    arrival_rate: float,
    mean_holding_time: float,
    seed: int = 0,
) -> List[RequestEvent]:
    """Poisson arrivals with exponential holding times.

    Args:
        requests: the request bodies, consumed in order.
        arrival_rate: mean arrivals per unit time (λ > 0).
        mean_holding_time: mean residence time of an admitted request (1/μ).
        seed: RNG seed.

    Returns:
        The merged, time-sorted arrival + departure event list.
    """
    if arrival_rate <= 0:
        raise RequestError(f"arrival_rate must be positive: {arrival_rate}")
    if mean_holding_time <= 0:
        raise RequestError(
            f"mean_holding_time must be positive: {mean_holding_time}"
        )
    rng = random.Random(seed)
    events: List[RequestEvent] = []
    clock = 0.0
    for request in requests:
        clock += rng.expovariate(arrival_rate)
        holding = rng.expovariate(1.0 / mean_holding_time)
        events.append(RequestEvent(clock, EventKind.ARRIVAL, request))
        events.append(RequestEvent(clock + holding, EventKind.DEPARTURE, request))
    events.sort(key=RequestEvent.sort_key)
    return events


def interleave(*streams: Sequence) -> List:
    """Merge event streams into one total-ordered list.

    Accepts any mix of event types exposing a ``sort_key()`` method whose
    keys are mutually comparable — request events and the resilience
    layer's failure events share the ``(time, rank, tiebreak)`` shape, so
    arrival/departure/failure/recovery streams interleave deterministically.
    The sort is stable, so events with fully equal keys keep the order of
    the argument streams; the combined key is total (no unordered ties), so
    the merged sequence is identical across runs and ``--workers`` values.
    """
    merged: List = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda event: event.sort_key())
    return merged
