"""Arrival processes layering timing onto request sequences.

The paper's online model is a plain adversarial sequence (requests arrive one
by one and never leave).  For the extension experiments — and because any
production admission controller faces churn — this module also provides a
Poisson arrival process with exponential holding times, producing an event
list of arrivals and departures that the simulation engine can replay.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.exceptions import RequestError
from repro.workload.request import MulticastRequest


class EventKind(enum.Enum):
    """Arrival or departure of a request."""

    ARRIVAL = "arrival"
    DEPARTURE = "departure"


@dataclass(frozen=True)
class RequestEvent:
    """A timestamped arrival or departure.

    Ordering is by ``(time, kind)`` with departures before arrivals at equal
    times, so capacity freed by a departure is usable by a simultaneous
    arrival.
    """

    time: float
    kind: EventKind
    request: MulticastRequest

    def sort_key(self) -> tuple:
        """Key ordering departures ahead of coincident arrivals."""
        return (self.time, 0 if self.kind is EventKind.DEPARTURE else 1,
                self.request.request_id)


def one_by_one(requests: Sequence[MulticastRequest]) -> List[RequestEvent]:
    """The paper's model: unit-spaced arrivals, no departures."""
    return [
        RequestEvent(time=float(i), kind=EventKind.ARRIVAL, request=request)
        for i, request in enumerate(requests)
    ]


def poisson_process(
    requests: Sequence[MulticastRequest],
    arrival_rate: float,
    mean_holding_time: float,
    seed: int = 0,
) -> List[RequestEvent]:
    """Poisson arrivals with exponential holding times.

    Args:
        requests: the request bodies, consumed in order.
        arrival_rate: mean arrivals per unit time (λ > 0).
        mean_holding_time: mean residence time of an admitted request (1/μ).
        seed: RNG seed.

    Returns:
        The merged, time-sorted arrival + departure event list.
    """
    if arrival_rate <= 0:
        raise RequestError(f"arrival_rate must be positive: {arrival_rate}")
    if mean_holding_time <= 0:
        raise RequestError(
            f"mean_holding_time must be positive: {mean_holding_time}"
        )
    rng = random.Random(seed)
    events: List[RequestEvent] = []
    clock = 0.0
    for request in requests:
        clock += rng.expovariate(arrival_rate)
        holding = rng.expovariate(1.0 / mean_holding_time)
        events.append(RequestEvent(clock, EventKind.ARRIVAL, request))
        events.append(RequestEvent(clock + holding, EventKind.DEPARTURE, request))
    events.sort(key=RequestEvent.sort_key)
    return events


def interleave(*streams: Sequence[RequestEvent]) -> List[RequestEvent]:
    """Merge several event streams into one time-ordered list."""
    merged: List[RequestEvent] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=RequestEvent.sort_key)
    return merged
