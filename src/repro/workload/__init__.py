"""Workload substrate: requests, generators, and arrival processes."""

from repro.workload.arrivals import (
    EventKind,
    RequestEvent,
    interleave,
    one_by_one,
    poisson_process,
)
from repro.workload.generator import (
    DEFAULT_BANDWIDTH_RANGE,
    DEFAULT_CHAIN_LENGTH_RANGE,
    DEFAULT_DMAX_RATIO,
    RequestGenerator,
    WorkloadConfig,
    generate_workload,
)
from repro.workload.request import MulticastRequest

__all__ = [
    "MulticastRequest",
    "RequestGenerator",
    "WorkloadConfig",
    "generate_workload",
    "DEFAULT_BANDWIDTH_RANGE",
    "DEFAULT_CHAIN_LENGTH_RANGE",
    "DEFAULT_DMAX_RATIO",
    "EventKind",
    "RequestEvent",
    "one_by_one",
    "poisson_process",
    "interleave",
]
