"""Fig. 7 — ``Appro_Multi_Cap`` under resource capacity constraints.

The paper evaluates the capacitated variant at ``D_max/|V| = 0.2`` over the
network-size sweep, observing that its operational cost exceeds that of the
uncapacitated ``Appro_Multi`` (Fig. 5(c)): pruning exhausted links and
servers shrinks the pool of server combinations the search can exploit.

This driver admits the request batch *sequentially*, committing each tree's
bandwidth and compute before the next arrival, and reports mean cost,
running time, and how many requests were rejected for lack of resources.
The same requests solved by uncapacitated ``Appro_Multi`` on an idle copy of
the network provide the Fig. 5(c) reference curve.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.common import build_random_network, make_requests
from repro.analysis.profiles import ExperimentProfile
from repro.analysis.series import FigureResult
from repro.core import appro_multi, appro_multi_cap
from repro.simulation import (
    parallel_map,
    run_offline,
    run_sequential_capacitated,
)

#: The destination ratio the paper fixes for Fig. 7.
FIG7_RATIO = 0.2

#: Cap on the sequential batch length.  The capacitated-vs-uncapacitated
#: cost gap saturates once the network carries sustained load (well under
#: this many admissions); beyond that extra requests only add runtime.
FIG7_MAX_REQUESTS = 120


def _fig7_point(
    profile: ExperimentProfile, size: int
) -> Tuple[float, float, float, float]:
    """One network-size data point; all randomness from ``seed_for``."""
    seed = profile.seed_for("fig7", size)
    requests_seed = seed + 1
    capacitated = build_random_network(size, seed)
    # A long sequential batch so later requests really do see depleted
    # links and servers (with a short batch the capacitated and
    # uncapacitated curves coincide trivially), capped where the gap
    # has already saturated.
    batch = min(
        max(profile.online_requests, profile.offline_requests),
        FIG7_MAX_REQUESTS,
    )
    requests = make_requests(
        capacitated.graph, batch, FIG7_RATIO, requests_seed,
    )
    cap_stats = run_sequential_capacitated(
        lambda net, req: appro_multi_cap(
            net, req, max_servers=profile.max_servers
        ),
        capacitated,
        requests,
    )
    reference = build_random_network(size, seed)
    uncap_stats = run_offline(
        lambda net, req: appro_multi(
            net, req, max_servers=profile.max_servers
        ),
        reference,
        requests,
    )
    return (
        cap_stats.mean_cost,
        cap_stats.mean_runtime,
        uncap_stats.mean_cost,
        float(cap_stats.infeasible),
    )


def run_fig7(profile: ExperimentProfile) -> List[FigureResult]:
    """Reproduce Fig. 7's cost and running-time panels."""
    cost_panel = FigureResult(
        figure_id="fig7-cost",
        title=(
            "Operational cost of Appro_Multi_Cap (sequential, capacitated) "
            f"vs Appro_Multi (D_max/|V| = {FIG7_RATIO})"
        ),
        x_label="network size |V|",
        xs=list(profile.network_sizes),
        metadata={
            "profile": profile.name,
            "requests_per_point": min(
                max(profile.online_requests, profile.offline_requests),
                FIG7_MAX_REQUESTS,
            ),
            "K": profile.max_servers,
        },
    )
    time_panel = FigureResult(
        figure_id="fig7-time",
        title="Running time (s/request) of Appro_Multi_Cap",
        x_label="network size |V|",
        xs=list(profile.network_sizes),
        metadata={"profile": profile.name},
    )
    reject_panel = FigureResult(
        figure_id="fig7-rejections",
        title="Requests rejected by Appro_Multi_Cap for lack of resources",
        x_label="network size |V|",
        xs=list(profile.network_sizes),
        metadata={"profile": profile.name},
    )

    grid = [(profile, size) for size in profile.network_sizes]
    points = parallel_map(_fig7_point, grid)

    cap_costs, cap_times, uncap_costs, rejections = [], [], [], []
    for cap_cost, cap_time, uncap_cost, rejected in points:
        cap_costs.append(cap_cost)
        cap_times.append(cap_time)
        uncap_costs.append(uncap_cost)
        rejections.append(rejected)

    cost_panel.add_series("Appro_Multi_Cap", cap_costs)
    cost_panel.add_series("Appro_Multi (uncapacitated)", uncap_costs)
    time_panel.add_series("Appro_Multi_Cap", cap_times)
    reject_panel.add_series("rejected", rejections)
    return [cost_panel, time_panel, reject_panel]
