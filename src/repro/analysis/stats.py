"""Statistics helpers: summaries and confidence intervals for experiments.

The paper reports point averages; a production experiment harness should
quantify run-to-run spread.  :func:`summarize` computes mean / stdev / a
t-based confidence interval for a sample, and :func:`aggregate_over_seeds`
re-runs a measurement under several seeds and folds the spread into a
:class:`~repro.analysis.series.FigureResult` with ``mean`` and ``ci95``
columns per series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.analysis.series import FigureResult

#: Two-sided 97.5 % Student-t quantiles for small samples (df 1…30).
_T_975 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t_quantile_975(degrees_of_freedom: int) -> float:
    """97.5 % two-sided Student-t quantile (normal limit beyond df 30)."""
    if degrees_of_freedom < 1:
        raise ValueError("need at least 1 degree of freedom")
    if degrees_of_freedom <= len(_T_975):
        return _T_975[degrees_of_freedom - 1]
    return 1.96


@dataclass(frozen=True)
class SampleSummary:
    """Mean, spread, and a 95 % confidence half-width for one sample."""

    count: int
    mean: float
    stdev: float
    ci95: float

    @property
    def low(self) -> float:
        """Lower end of the 95 % confidence interval."""
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        """Upper end of the 95 % confidence interval."""
        return self.mean + self.ci95


def summarize(values: Sequence[float]) -> SampleSummary:
    """Summarize a sample; a single observation has zero spread."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return SampleSummary(count=1, mean=mean, stdev=0.0, ci95=0.0)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stdev = math.sqrt(variance)
    ci95 = t_quantile_975(n - 1) * stdev / math.sqrt(n)
    return SampleSummary(count=n, mean=mean, stdev=stdev, ci95=ci95)


def aggregate_over_seeds(
    measure: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
    figure_id: str,
    title: str,
    x_label: str = "series",
) -> FigureResult:
    """Run ``measure(seed)`` per seed and tabulate mean ± CI per metric.

    ``measure`` returns a flat ``{metric_name: value}`` dict; the resulting
    panel has one x entry per metric and two series (``mean``, ``ci95``).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    samples: Dict[str, List[float]] = {}
    for seed in seeds:
        for metric, value in measure(seed).items():
            samples.setdefault(metric, []).append(float(value))
    metrics = sorted(samples)
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        xs=list(range(len(metrics))),
        metadata={"seeds": len(seeds), "metrics": ", ".join(metrics)},
    )
    summaries = [summarize(samples[m]) for m in metrics]
    result.add_series("mean", [s.mean for s in summaries])
    result.add_series("ci95", [s.ci95 for s in summaries])
    return result


def curves_with_confidence(
    measure: Callable[[int, object], Dict[str, float]],
    seeds: Sequence[int],
    xs: Sequence[object],
    figure_id: str,
    title: str,
    x_label: str,
) -> FigureResult:
    """Sweep ``xs``, repeating each point over ``seeds``; emit mean±CI curves.

    ``measure(seed, x)`` returns ``{series_label: value}``.  The panel gets,
    for each series label, a ``<label>`` (mean) and a ``<label> ±`` (CI
    half-width) column.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if not xs:
        raise ValueError("need at least one x value")
    per_label: Dict[str, List[SampleSummary]] = {}
    labels: List[str] = []
    for x in xs:
        collected: Dict[str, List[float]] = {}
        for seed in seeds:
            for label, value in measure(seed, x).items():
                collected.setdefault(label, []).append(float(value))
        if not labels:
            labels = sorted(collected)
        for label in labels:
            per_label.setdefault(label, []).append(
                summarize(collected[label])
            )
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        xs=[float(x) if isinstance(x, (int, float)) else x for x in xs],
        metadata={"seeds": len(seeds)},
    )
    for label in labels:
        result.add_series(label, [s.mean for s in per_label[label]])
        result.add_series(f"{label} ±", [s.ci95 for s in per_label[label]])
    return result
