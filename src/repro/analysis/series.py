"""Result containers for figure reproductions.

Every driver in :mod:`repro.analysis` returns a :class:`FigureResult`: a set
of named series over a shared x-axis, plus free-form metadata.  The paper
presents all results as line plots, so this shape covers every figure; the
:func:`render_table` helper prints the same numbers as an aligned text table
for terminals, logs, and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class Series:
    """One labelled curve: ``values[i]`` corresponds to ``FigureResult.xs[i]``."""

    label: str
    values: List[float]


@dataclass
class FigureResult:
    """All series of one reproduced figure (or one of its panels).

    Attributes:
        figure_id: e.g. ``"fig5a"``.
        title: human-readable description of the panel.
        x_label: meaning of the x axis.
        xs: x-axis points.
        series: the curves.
        metadata: provenance (profile name, seeds, request counts, …).
    """

    figure_id: str
    title: str
    x_label: str
    xs: List[float]
    series: List[Series] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_series(self, label: str, values: Sequence[float]) -> None:
        """Append a curve, checking it matches the x axis."""
        if len(values) != len(self.xs):
            raise ValueError(
                f"series {label!r} has {len(values)} points for "
                f"{len(self.xs)} x values"
            )
        self.series.append(Series(label=label, values=list(values)))

    def series_by_label(self, label: str) -> Series:
        """Return the curve with the given label."""
        for candidate in self.series:
            if candidate.label == label:
                return candidate
        raise KeyError(label)


def render_table(result: FigureResult, float_format: str = "{:.3f}") -> str:
    """Render a figure's series as an aligned text table.

    The first column is the x axis; one column per series follows.
    """
    headers = [result.x_label] + [series.label for series in result.series]
    rows: List[List[str]] = []
    for i, x in enumerate(result.xs):
        row = [_format_number(x, float_format)]
        row.extend(
            _format_number(series.values[i], float_format)
            for series in result.series
        )
        rows.append(row)

    widths = [
        max(len(headers[c]), *(len(row[c]) for row in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = [
        f"{result.figure_id}: {result.title}",
        "  " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  " + "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  " + " | ".join(c.rjust(w) for c, w in zip(row, widths)))
    if result.metadata:
        meta = ", ".join(f"{k}={v}" for k, v in sorted(result.metadata.items()))
        lines.append(f"  ({meta})")
    return "\n".join(lines)


def _format_number(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return float_format.format(value)
    return str(value)
