"""Resilience experiment — repair strategies under link failures (GÉANT).

An extension beyond the paper: the online model of Section V assumes the
network never breaks, but NFV-enabled multicasting is deployed on real WANs
where links fail.  This experiment drives ``Online_CP`` over a Poisson
arrival/departure workload on GÉANT, injects a seeded exponential link
failure/recovery process, and compares the three repair strategies of
:mod:`repro.resilience.repair` on the *same* workload and failure trace:

- ``drop`` — tear down every broken request (the do-nothing baseline);
- ``readmit`` — re-run ``Appro_Multi_Cap`` from scratch per broken request;
- ``graft`` — keep the surviving subtree, reconnect severed destinations
  via cheapest residual paths.

Expected shape: grafting restores service at a strictly lower mean repair
cost than full readmission (it only programs the reconnecting paths), and
both repair strategies drop far fewer requests than the baseline, so the
disruption ratio ordering is ``graft ≤ readmit < drop``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.common import build_real_network, calibrated_online_cp
from repro.analysis.profiles import ExperimentProfile
from repro.analysis.series import FigureResult
from repro.network.controller import Controller
from repro.resilience.events import exponential_failures, horizon_of
from repro.resilience.repair import STRATEGIES, strategy_by_name
from repro.simulation import parallel_map, run_online_with_failures
from repro.workload.arrivals import interleave, poisson_process
from repro.workload.generator import generate_workload

#: The topology the failure study runs on.
TOPOLOGY = "GEANT"

#: Churn calibration: λ and 1/μ chosen so ~λ/μ requests are concurrently
#: installed — enough live trees that most failures break something.
ARRIVAL_RATE = 2.0
MEAN_HOLDING_TIME = 15.0

#: Failure-process calibration relative to the workload horizon ``H``:
#: a sampled link fails about ``H / (MTTF_FACTOR · H) ≈ 1.3`` times per
#: run and stays down for 4% of it, so failures are frequent enough to
#: measure repair behaviour but the network is mostly healthy.
LINK_FRACTION = 0.3
MTTF_FACTOR = 0.75
MTTR_FACTOR = 0.04


def _scenario(profile: ExperimentProfile):
    """The shared workload + failure trace every strategy replays."""
    seed = profile.seed_for("resilience", TOPOLOGY)
    network = build_real_network(TOPOLOGY, seed)
    requests = generate_workload(
        network.graph, count=profile.online_requests, seed=seed + 1
    )
    workload = poisson_process(
        requests, ARRIVAL_RATE, MEAN_HOLDING_TIME, seed=seed + 2
    )
    horizon = horizon_of(workload)
    failures = exponential_failures(
        network,
        mean_time_to_failure=MTTF_FACTOR * horizon,
        mean_time_to_repair=MTTR_FACTOR * horizon,
        horizon=horizon,
        seed=seed + 3,
        links=True,
        servers=False,
        fraction=LINK_FRACTION,
    )
    return network, interleave(workload, failures)


def _resilience_point(
    profile: ExperimentProfile, strategy_name: str
) -> Dict[str, float]:
    """Run one repair strategy over the shared scenario."""
    network, events = _scenario(profile)
    algorithm = calibrated_online_cp(network)
    controller = Controller()
    stats = run_online_with_failures(
        algorithm,
        events,
        controller=controller,
        strategy=strategy_by_name(strategy_name),
    )
    return {
        "admitted": float(stats.admitted),
        "failures": float(stats.failures),
        "broken": float(stats.broken_requests),
        "dropped": float(stats.dropped_by_failure),
        "repaired": float(stats.repaired),
        "disruption_ratio": stats.disruption_ratio,
        "mean_repair_cost": stats.mean_repair_cost,
        "total_repair_cost": float(sum(stats.repair_costs)),
        "destination_downtime": stats.destination_downtime,
        "repairs_per_failure": stats.repairs_per_failure,
    }


def run_resilience(profile: ExperimentProfile) -> List[FigureResult]:
    """Compare the repair strategies on one seeded failure scenario."""
    names = [cls.name for cls in STRATEGIES]
    grid: List[Tuple[ExperimentProfile, str]] = [
        (profile, name) for name in names
    ]
    points = parallel_map(_resilience_point, grid)
    by_name = dict(zip(names, points))

    service = FigureResult(
        figure_id="resilience-service",
        title=(
            "Service continuity under link failures "
            f"({TOPOLOGY}, Online_CP)"
        ),
        x_label="repair strategy",
        xs=list(names),
        metadata={
            "profile": profile.name,
            "topology": TOPOLOGY,
            "requests": profile.online_requests,
            "link_fraction": LINK_FRACTION,
        },
    )
    for metric in (
        "admitted", "failures", "broken", "dropped", "repaired",
        "disruption_ratio", "destination_downtime",
    ):
        service.add_series(metric, [by_name[n][metric] for n in names])

    cost = FigureResult(
        figure_id="resilience-cost",
        title="Cost of repairing failure-broken trees",
        x_label="repair strategy",
        xs=list(names),
        metadata={"profile": profile.name, "topology": TOPOLOGY},
    )
    for metric in (
        "mean_repair_cost", "total_repair_cost", "repairs_per_failure",
    ):
        cost.add_series(metric, [by_name[n][metric] for n in names])
    return [service, cost]
