"""Fig. 6 — ``Appro_Multi`` vs ``Alg_One_Server`` on real topologies.

The paper's panels plot operational cost (a, b) and running time (c, d) in
GÉANT and AS1755 while sweeping ``D_max/|V|`` from 0.05 to 0.2.  AS4755 is
named in the figure caption, so this driver reproduces it as well.

Expected shape: ``Appro_Multi`` clearly cheaper (the paper quotes ≈30 %
lower cost in AS1755 at ratio 0.15) at slightly higher running time; both
costs grow with the ratio (more destinations → bigger trees).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analysis.common import build_real_network, make_requests
from repro.analysis.profiles import ExperimentProfile
from repro.analysis.series import FigureResult
from repro.core import alg_one_server, appro_multi
from repro.simulation import parallel_map, run_offline

#: The ratio sweep shown in the paper's Fig. 6.
FIG6_RATIOS = (0.05, 0.1, 0.15, 0.2)
FIG6_TOPOLOGIES = ("GEANT", "AS1755", "AS4755")


def _fig6_point(
    profile: ExperimentProfile, name: str, ratio: float
) -> Tuple[float, float, float, float]:
    """One (topology, ratio) data point; all randomness from ``seed_for``."""
    seed = profile.seed_for("fig6", name, ratio)
    network = build_real_network(name, seed)
    requests = make_requests(
        network.graph, profile.offline_requests, ratio, seed + 1
    )
    appro_stats = run_offline(
        lambda net, req: appro_multi(
            net, req, max_servers=profile.max_servers
        ),
        network,
        requests,
    )
    base_stats = run_offline(alg_one_server, network, requests)
    return (
        appro_stats.mean_cost,
        appro_stats.mean_runtime,
        base_stats.mean_cost,
        base_stats.mean_runtime,
    )


def run_fig6(
    profile: ExperimentProfile,
    topologies: Sequence[str] = FIG6_TOPOLOGIES,
) -> List[FigureResult]:
    """Reproduce the cost and running-time panels of Fig. 6."""
    results: List[FigureResult] = []
    ratios = list(FIG6_RATIOS)
    grid = [
        (profile, name, ratio) for name in topologies for ratio in ratios
    ]
    points = parallel_map(_fig6_point, grid)
    by_key = {
        (name, ratio): point
        for (_, name, ratio), point in zip(grid, points)
    }
    for name in topologies:
        cost_panel = FigureResult(
            figure_id=f"fig6-cost-{name.lower()}",
            title=f"Operational cost in {name}",
            x_label="D_max/|V|",
            xs=ratios,
            metadata={
                "profile": profile.name,
                "requests_per_point": profile.offline_requests,
                "K": profile.max_servers,
            },
        )
        time_panel = FigureResult(
            figure_id=f"fig6-time-{name.lower()}",
            title=f"Running time (s/request) in {name}",
            x_label="D_max/|V|",
            xs=ratios,
            metadata={"profile": profile.name},
        )
        appro_costs, appro_times, base_costs, base_times = [], [], [], []
        for ratio in ratios:
            appro_cost, appro_time, base_cost, base_time = by_key[
                (name, ratio)
            ]
            appro_costs.append(appro_cost)
            appro_times.append(appro_time)
            base_costs.append(base_cost)
            base_times.append(base_time)
        cost_panel.add_series("Appro_Multi", appro_costs)
        cost_panel.add_series("Alg_One_Server", base_costs)
        time_panel.add_series("Appro_Multi", appro_times)
        time_panel.add_series("Alg_One_Server", base_times)
        results.extend([cost_panel, time_panel])
    return results
