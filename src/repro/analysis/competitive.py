"""Empirical competitive-ratio study (extension experiment).

Theorem 2 bounds ``Online_CP`` against the *optimal offline* algorithm,
which is NP-hard to compute.  This study measures the empirical ratio
against a strong offline oracle that sees the whole request sequence in
advance:

- **offline oracle** — sorts all requests by resource footprint
  (`b_k · (|D_k| + 1) +` normalized compute) so small requests are packed
  first, then admits greedily with the capacitated solver.  Greedy
  smallest-first packing with full lookahead is a classic upper-bound proxy
  for offline admission (it is not OPT, but it dominates any online
  algorithm on these workloads in practice).

The resulting ``admitted(online) / admitted(oracle)`` curves put the
``O(log |V|)`` guarantee in empirical context: the measured ratio should sit
far above the worst-case bound.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.common import (
    build_random_network,
    calibrated_online_cp,
    make_requests,
    make_sp_online,
)
from repro.analysis.profiles import ExperimentProfile
from repro.analysis.series import FigureResult
from repro.core import appro_multi_cap, try_allocate
from repro.exceptions import InfeasibleRequestError
from repro.network.sdn import SDNetwork
from repro.simulation import run_online
from repro.workload.request import MulticastRequest


def offline_oracle_admissions(
    network: SDNetwork,
    requests: Sequence[MulticastRequest],
    max_servers: int = 1,
) -> int:
    """Greedy smallest-footprint-first offline admission; returns the count.

    The network is mutated (resources committed); pass a fresh instance.
    """
    def footprint(request: MulticastRequest) -> float:
        compute_share = request.compute_demand / 40.0  # MHz ≈ Mbps scale
        return request.bandwidth * (request.num_destinations + 1) + compute_share

    admitted = 0
    for request in sorted(requests, key=footprint):
        try:
            tree = appro_multi_cap(network, request, max_servers=max_servers)
        except InfeasibleRequestError:
            continue
        if try_allocate(network, tree) is not None:
            admitted += 1
    return admitted


def run_competitive(profile: ExperimentProfile) -> List[FigureResult]:
    """Measure Online_CP / SP against the offline oracle per network size."""
    admitted_panel = FigureResult(
        figure_id="competitive-admitted",
        title=(
            f"Admissions out of {profile.online_requests}: online algorithms "
            "vs an offline greedy oracle with full lookahead"
        ),
        x_label="network size |V|",
        xs=list(profile.network_sizes),
        metadata={"profile": profile.name},
    )
    ratio_panel = FigureResult(
        figure_id="competitive-ratio",
        title="Empirical competitive ratio (admitted / oracle admitted)",
        x_label="network size |V|",
        xs=list(profile.network_sizes),
        metadata={"profile": profile.name},
    )
    cp_counts, sp_counts, oracle_counts = [], [], []
    for size in profile.network_sizes:
        seed = profile.seed_for("competitive", size)
        graph = build_random_network(size, seed).graph
        requests = make_requests(
            graph, profile.online_requests, None, seed + 1
        )
        cp_stats = run_online(
            calibrated_online_cp(build_random_network(size, seed)), requests
        )
        sp_stats = run_online(
            make_sp_online(build_random_network(size, seed)), requests
        )
        oracle = offline_oracle_admissions(
            build_random_network(size, seed), requests
        )
        cp_counts.append(float(cp_stats.admitted))
        sp_counts.append(float(sp_stats.admitted))
        oracle_counts.append(float(max(1, oracle)))
    admitted_panel.add_series("Online_CP", cp_counts)
    admitted_panel.add_series("SP", sp_counts)
    admitted_panel.add_series("offline oracle", oracle_counts)
    ratio_panel.add_series(
        "Online_CP / oracle",
        [c / o for c, o in zip(cp_counts, oracle_counts)],
    )
    ratio_panel.add_series(
        "SP / oracle",
        [s / o for s, o in zip(sp_counts, oracle_counts)],
    )
    return [admitted_panel, ratio_panel]
