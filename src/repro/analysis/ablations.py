"""Ablations of the design choices DESIGN.md calls out.

Four studies, each isolating one knob:

- :func:`ablate_k` — the server budget ``K`` in ``Appro_Multi`` (cost vs
  search time; the 2K bound loosens as K grows, but the empirical cost can
  only improve).
- :func:`ablate_cost_model` — ``Online_CP``'s pricing: the paper's
  exponential model at both calibrations, linear-in-utilization, and the
  strawman static-linear model (Section V-A's motivation).
- :func:`ablate_thresholds` — the admission thresholds ``σ``: the paper's
  ``|V| − 1`` versus effectively-disabled.
- :func:`ablate_kmb_quality` — the KMB heuristic against exact
  Dreyfus–Wagner optima on small instances: the empirical approximation
  ratio, which Theorem 1 bounds by ``2K``.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.analysis.common import build_random_network, make_requests
from repro.analysis.profiles import ONLINE_ALPHA_BETA, ExperimentProfile
from repro.analysis.series import FigureResult
from repro.core import (
    AdmissionPolicy,
    ExponentialCostModel,
    LinearCostModel,
    OnlineCP,
    UtilizationCostModel,
    appro_multi_detailed,
    optimal_auxiliary_cost,
)
from repro.network.sdn import build_sdn
from repro.simulation import parallel_map, run_offline, run_online
from repro.topology.random_graphs import gt_itm_flat


def _ablate_k_point(
    profile: ExperimentProfile, size: int, k: int
) -> Tuple[float, float, float]:
    """One ``K`` data point: (mean cost, mean time, combinations/request)."""
    seed = profile.seed_for("ablate-k", size)
    network = build_random_network(size, seed)
    requests = make_requests(
        network.graph, profile.offline_requests, 0.1, seed + 1
    )
    total_combos = 0

    def solver(net, req):
        nonlocal total_combos
        detailed = appro_multi_detailed(net, req, max_servers=k)
        total_combos += (
            detailed.combinations_evaluated + detailed.combinations_pruned
        )
        return detailed.tree

    stats = run_offline(solver, network, requests)
    return (
        stats.mean_cost,
        stats.mean_runtime,
        total_combos / max(1, stats.solved),
    )


def ablate_k(profile: ExperimentProfile) -> FigureResult:
    """Sweep ``K`` ∈ {1, 2, 3} on a mid-size random network."""
    size = profile.network_sizes[-1] if profile.name == "fast" else 100
    ks = [1, 2, 3]
    result = FigureResult(
        figure_id="ablation-k",
        title=f"Appro_Multi cost and search effort vs K (|V| = {size})",
        x_label="K (max servers)",
        xs=[float(k) for k in ks],
        metadata={"profile": profile.name, "network_size": size},
    )
    points = parallel_map(
        _ablate_k_point, [(profile, size, k) for k in ks]
    )
    costs, times, combos = [], [], []
    for cost, runtime, combos_per_request in points:
        costs.append(cost)
        times.append(runtime)
        combos.append(combos_per_request)
    result.add_series("mean cost", costs)
    result.add_series("mean time (s)", times)
    result.add_series("combinations/request", combos)
    return result


def _cost_model_variants() -> List[Tuple[str, Callable]]:
    """The pricing variants, in a fixed order shared by point and driver."""
    return [
        (
            f"exponential (α=β={ONLINE_ALPHA_BETA:g})",
            lambda: ExponentialCostModel(
                alpha=ONLINE_ALPHA_BETA, beta=ONLINE_ALPHA_BETA
            ),
        ),
        ("exponential (α=β=2|V|)", lambda: ExponentialCostModel()),
        ("linear-in-utilization", UtilizationCostModel),
        ("static linear (strawman)", LinearCostModel),
    ]


def _ablate_cost_model_point(
    profile: ExperimentProfile, size: int
) -> Tuple[float, ...]:
    """Admissions per pricing variant (order of ``_cost_model_variants``)."""
    seed = profile.seed_for("ablate-model", size)
    graph = gt_itm_flat(size, seed=seed)
    requests = make_requests(
        graph, profile.online_requests, None, seed + 1
    )
    admitted = []
    for _, make_model in _cost_model_variants():
        network = build_sdn(graph, seed=seed)
        algorithm = OnlineCP(network, cost_model=make_model())
        stats = run_online(algorithm, requests)
        admitted.append(float(stats.admitted))
    return tuple(admitted)


def ablate_cost_model(profile: ExperimentProfile) -> FigureResult:
    """Compare Online_CP admissions under four pricing models."""
    sizes = list(profile.network_sizes)
    result = FigureResult(
        figure_id="ablation-cost-model",
        title=(
            f"Online_CP admissions out of {profile.online_requests} "
            "under different cost models"
        ),
        x_label="network size |V|",
        xs=[float(s) for s in sizes],
        metadata={"profile": profile.name},
    )
    labels = [label for label, _ in _cost_model_variants()]
    points = parallel_map(
        _ablate_cost_model_point, [(profile, size) for size in sizes]
    )
    for column, label in enumerate(labels):
        result.add_series(label, [point[column] for point in points])
    return result


def _threshold_variants() -> List[Tuple[str, Callable]]:
    """Admission-policy variants, in a fixed order shared by point/driver."""
    unlimited = AdmissionPolicy(sigma_v=float("inf"), sigma_e=float("inf"))
    return [
        ("2|V| base, σ=|V|−1", lambda net: OnlineCP(net)),
        (
            "2|V| base, σ=∞",
            lambda net: OnlineCP(net, policy=unlimited),
        ),
        (
            f"{ONLINE_ALPHA_BETA:g} base, σ=|V|−1",
            lambda net: OnlineCP(
                net,
                cost_model=ExponentialCostModel(
                    alpha=ONLINE_ALPHA_BETA, beta=ONLINE_ALPHA_BETA
                ),
            ),
        ),
    ]


def _ablate_thresholds_point(
    profile: ExperimentProfile, size: int
) -> Tuple[float, ...]:
    """Admissions per policy variant (order of ``_threshold_variants``)."""
    seed = profile.seed_for("ablate-sigma", size)
    graph = gt_itm_flat(size, seed=seed)
    requests = make_requests(
        graph, profile.online_requests, None, seed + 1
    )
    admitted = []
    for _, make_algorithm in _threshold_variants():
        network = build_sdn(graph, seed=seed)
        stats = run_online(make_algorithm(network), requests)
        admitted.append(float(stats.admitted))
    return tuple(admitted)


def ablate_thresholds(profile: ExperimentProfile) -> FigureResult:
    """Compare the paper's σ = |V|−1 thresholds against disabled ones."""
    sizes = list(profile.network_sizes)
    result = FigureResult(
        figure_id="ablation-thresholds",
        title=(
            f"Online_CP admissions out of {profile.online_requests}: "
            "σ = |V|−1 vs σ = ∞ (per cost-model base)"
        ),
        x_label="network size |V|",
        xs=[float(s) for s in sizes],
        metadata={"profile": profile.name},
    )
    labels = [label for label, _ in _threshold_variants()]
    points = parallel_map(
        _ablate_thresholds_point, [(profile, size) for size in sizes]
    )
    for column, label in enumerate(labels):
        result.add_series(label, [point[column] for point in points])
    return result


def _ablate_kmb_point(profile: ExperimentProfile, seed: int) -> float:
    """One small-instance cost ratio (Appro_Multi / exact optimum)."""
    import random

    from repro.graph.graph import Graph
    from repro.topology.random_graphs import waxman_graph

    # high-variance random weights make the KMB heuristic actually miss
    # the optimum sometimes (uniform geometric weights are too easy)
    base, _ = waxman_graph(24, alpha=0.45, beta=0.45, seed=seed)
    rng = random.Random(seed + 1000)
    graph = Graph()
    for u, v, _ in base.edges():
        graph.add_edge(u, v, rng.uniform(1.0, 60.0))
    network = build_sdn(graph, seed=seed, server_fraction=0.25)
    request = make_requests(graph, 1, 0.25, seed + 500)[0]
    detailed = appro_multi_detailed(network, request, max_servers=2)
    exact_cost, _ = optimal_auxiliary_cost(network, request, max_servers=2)
    return detailed.tree.total_cost / exact_cost


def ablate_kmb_quality(profile: ExperimentProfile) -> FigureResult:
    """Empirical ``Appro_Multi`` / exact-auxiliary-optimum ratio.

    Instances are small enough for the Dreyfus–Wagner oracle.  The KMB step
    guarantees the ratio is at most 2; observing it well below 2 on random
    instances is the expected outcome.
    """
    seeds = list(range(8 if profile.name == "fast" else 20))
    result = FigureResult(
        figure_id="ablation-kmb",
        title="Appro_Multi cost / exact auxiliary optimum (small instances)",
        x_label="instance seed",
        xs=[float(s) for s in seeds],
        metadata={"profile": profile.name, "bound": 2.0},
    )
    ratios = parallel_map(
        _ablate_kmb_point, [(profile, seed) for seed in seeds]
    )
    result.add_series("cost ratio", ratios)
    return result


def _online_k_variants() -> List[Tuple[str, Callable]]:
    """Online-algorithm variants, in a fixed order shared by point/driver."""
    from repro.core import OnlineCPK, SPOnline

    model = lambda: ExponentialCostModel(
        alpha=ONLINE_ALPHA_BETA, beta=ONLINE_ALPHA_BETA
    )
    return [
        ("Online_CP (paper, K=1)", lambda net: OnlineCP(net, cost_model=model())),
        ("OnlineCPK K=1", lambda net: OnlineCPK(net, 1, cost_model=model())),
        ("OnlineCPK K=2", lambda net: OnlineCPK(net, 2, cost_model=model())),
        ("SP", SPOnline),
    ]


def _ablate_online_k_point(
    profile: ExperimentProfile, size: int
) -> Tuple[float, ...]:
    """Admissions per online variant (order of ``_online_k_variants``)."""
    seed = profile.seed_for("ablate-online-k", size)
    graph = gt_itm_flat(size, seed=seed)
    requests = make_requests(
        graph, profile.online_requests, None, seed + 1
    )
    admitted = []
    for _, make_algorithm in _online_k_variants():
        network = build_sdn(graph, seed=seed)
        stats = run_online(make_algorithm(network), requests)
        admitted.append(float(stats.admitted))
    return tuple(admitted)


def ablate_online_k(profile: ExperimentProfile) -> FigureResult:
    """The multi-server *online* extension: OnlineCPK at K ∈ {1, 2} vs the
    paper's OnlineCP (K = 1) and SP, per network size."""
    sizes = list(profile.network_sizes)
    result = FigureResult(
        figure_id="ablation-online-k",
        title=(
            f"Online admissions out of {profile.online_requests}: the "
            "multi-server online extension"
        ),
        x_label="network size |V|",
        xs=[float(s) for s in sizes],
        metadata={"profile": profile.name},
    )
    labels = [label for label, _ in _online_k_variants()]
    points = parallel_map(
        _ablate_online_k_point, [(profile, size) for size in sizes]
    )
    for column, label in enumerate(labels):
        result.add_series(label, [point[column] for point in points])
    return result


def _topology_families() -> List[Tuple[str, Callable]]:
    """Topology factories, in a fixed order shared by point and driver."""
    from repro.topology.random_graphs import (
        barabasi_albert_graph,
        erdos_renyi_graph,
        transit_stub_graph,
    )

    return [
        ("GT-ITM flat", lambda seed: gt_itm_flat(60, seed=seed)),
        (
            "transit-stub",
            lambda seed: transit_stub_graph(4, 3, 4, seed=seed),
        ),
        ("Barabasi-Albert", lambda seed: barabasi_albert_graph(60, 2, seed=seed)),
        ("Erdos-Renyi", lambda seed: erdos_renyi_graph(60, 0.07, seed=seed)),
    ]


def _ablate_topology_point(
    profile: ExperimentProfile, name: str
) -> Tuple[float, float]:
    """Mean Appro_Multi and Alg_One_Server cost on one topology family."""
    from repro.core import alg_one_server, appro_multi

    make_graph = dict(_topology_families())[name]
    seed = profile.seed_for("ablate-topology", name)
    graph = make_graph(seed)
    network = build_sdn(graph, seed=seed)
    requests = make_requests(
        graph, profile.offline_requests, 0.1, seed + 1
    )
    appro_stats = run_offline(
        lambda net, req: appro_multi(net, req, max_servers=2),
        network,
        requests,
    )
    base_stats = run_offline(alg_one_server, network, requests)
    return (appro_stats.mean_cost, base_stats.mean_cost)


def ablate_topology_family(profile: ExperimentProfile) -> FigureResult:
    """Robustness of the Fig. 5 gap across topology families.

    The paper only evaluates GT-ITM flat random graphs and two real
    networks; this study checks that ``Appro_Multi``'s advantage over
    ``Alg_One_Server`` is not an artifact of the Waxman model by repeating
    the cost comparison on transit–stub, Barabási–Albert, and Erdős–Rényi
    topologies of comparable scale.
    """
    families = _topology_families()
    result = FigureResult(
        figure_id="ablation-topology",
        title=(
            "Appro_Multi vs Alg_One_Server cost across topology families "
            f"({profile.offline_requests} requests each)"
        ),
        x_label="family index",
        xs=[float(i) for i in range(len(families))],
        metadata={
            "profile": profile.name,
            "families": ", ".join(name for name, _ in families),
        },
    )
    points = parallel_map(
        _ablate_topology_point,
        [(profile, name) for name, _ in families],
    )
    appro_means, base_means, gap_ratios = [], [], []
    for appro_mean, base_mean in points:
        appro_means.append(appro_mean)
        base_means.append(base_mean)
        gap_ratios.append(
            appro_mean / base_mean if base_mean else 1.0
        )
    result.add_series("Appro_Multi mean cost", appro_means)
    result.add_series("Alg_One_Server mean cost", base_means)
    result.add_series("cost ratio", gap_ratios)
    return result


def run_ablations(profile: ExperimentProfile) -> List[FigureResult]:
    """Run every ablation study."""
    return [
        ablate_k(profile),
        ablate_cost_model(profile),
        ablate_thresholds(profile),
        ablate_kmb_quality(profile),
        ablate_online_k(profile),
        ablate_topology_family(profile),
    ]
