"""Confidence-interval variants of the noisiest figures.

The paper plots single-run points.  Online admission counts are noisy in
the workload draw, so this driver repeats Fig. 8 under several workload
seeds and reports mean ± 95 % CI per algorithm — the columns ``Online_CP``
and ``Online_CP ±`` etc.  A non-overlapping CI between the two algorithms
is the statistically honest version of "Online_CP outperforms SP".
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.common import (
    build_random_network,
    calibrated_online_cp,
    make_requests,
    make_sp_online,
)
from repro.analysis.profiles import ExperimentProfile
from repro.analysis.series import FigureResult
from repro.analysis.stats import curves_with_confidence
from repro.simulation import run_online

#: Workload seeds per data point (3 keeps the driver affordable).
DEFAULT_SEED_COUNT = 3


def run_fig8_ci(
    profile: ExperimentProfile,
    seed_count: int = DEFAULT_SEED_COUNT,
) -> List[FigureResult]:
    """Fig. 8 with mean ± 95 % CI over ``seed_count`` workload draws."""

    def measure(seed_index: int, size) -> Dict[str, float]:
        size = int(size)
        base = profile.seed_for("fig8ci", size, seed_index)
        graph = build_random_network(size, base).graph
        requests = make_requests(
            graph, profile.online_requests, None, base + 1
        )
        cp_stats = run_online(
            calibrated_online_cp(build_random_network(size, base)), requests
        )
        sp_stats = run_online(
            make_sp_online(build_random_network(size, base)), requests
        )
        return {
            "Online_CP": float(cp_stats.admitted),
            "SP": float(sp_stats.admitted),
        }

    panel = curves_with_confidence(
        measure,
        seeds=list(range(seed_count)),
        xs=list(profile.network_sizes),
        figure_id="fig8ci",
        title=(
            f"Fig. 8 with spread: admissions out of "
            f"{profile.online_requests}, mean ± 95% CI over "
            f"{seed_count} workload draws"
        ),
        x_label="network size |V|",
    )
    panel.metadata["profile"] = profile.name
    return [panel]
