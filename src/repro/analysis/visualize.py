"""Graphviz-DOT export of networks and pseudo-multicast trees.

No rendering dependency: these functions emit plain DOT text that any
Graphviz install (or online viewer) turns into a picture.  Server switches
are drawn as boxes, the request source as a double circle, destinations
filled, tree links bold.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.pseudo_tree import PseudoMulticastTree
from repro.graph.graph import Graph, edge_key
from repro.network.sdn import SDNetwork

Node = Hashable


def _quote(node: Node) -> str:
    text = str(node).replace('"', r"\"")
    return f'"{text}"'


def graph_to_dot(graph: Graph, name: str = "topology") -> str:
    """Serialize a bare graph (weights as edge labels)."""
    lines = [f"graph {name} {{", "  node [shape=circle, fontsize=10];"]
    for node in sorted(graph.nodes(), key=repr):
        lines.append(f"  {_quote(node)};")
    for u, v, w in sorted(graph.edges(), key=lambda e: repr(edge_key(e[0], e[1]))):
        lines.append(
            f"  {_quote(u)} -- {_quote(v)} [label=\"{w:.2f}\"];"
        )
    lines.append("}")
    return "\n".join(lines)


def network_to_dot(
    network: SDNetwork,
    tree: Optional[PseudoMulticastTree] = None,
    name: str = "sdn",
) -> str:
    """Serialize an SDN, optionally highlighting one pseudo-multicast tree.

    Styling:

    - server switches: ``shape=box``;
    - with a ``tree``: the source is a double circle, destinations are
      filled grey, chain-hosting servers filled blue-ish, links on the tree
      bold (with their usage multiplicity when > 1).
    """
    lines = [f"graph {name} {{", "  node [shape=circle, fontsize=10];"]
    source = tree.request.source if tree is not None else None
    destinations = set(tree.request.destinations) if tree is not None else set()
    chain_servers = set(tree.servers) if tree is not None else set()
    usage = tree.edge_usage() if tree is not None else {}

    for node in sorted(network.graph.nodes(), key=repr):
        attributes = []
        if network.is_server(node):
            attributes.append("shape=box")
        if node == source:
            attributes.append("shape=doublecircle")
        if node in destinations:
            attributes.append('style=filled, fillcolor="grey85"')
        if node in chain_servers:
            attributes.append('style=filled, fillcolor="lightblue"')
        suffix = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"  {_quote(node)}{suffix};")

    for u, v, w in sorted(
        network.graph.edges(), key=lambda e: repr(edge_key(e[0], e[1]))
    ):
        key = edge_key(u, v)
        attributes = [f'label="{w:.3f}"']
        count = usage.get(key, 0)
        if count:
            attributes.append("penwidth=3")
            if count > 1:
                attributes.append(f'xlabel="x{count}"')
        lines.append(
            f"  {_quote(u)} -- {_quote(v)} [{', '.join(attributes)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def tree_to_dot(
    network: SDNetwork, tree: PseudoMulticastTree, name: str = "pseudo_tree"
) -> str:
    """Serialize only the routing structure of a pseudo-multicast tree.

    Directed: arrows follow the stream (source→server legs, return paths,
    distribution hops).
    """
    lines = [f"digraph {name} {{", "  node [shape=circle, fontsize=10];"]
    seen = set()

    def declare(node: Node) -> None:
        if node in seen:
            return
        seen.add(node)
        attributes = []
        if node == tree.request.source:
            attributes.append("shape=doublecircle")
        elif node in tree.servers:
            attributes.append('shape=box, style=filled, fillcolor="lightblue"')
        elif node in tree.request.destinations:
            attributes.append('style=filled, fillcolor="grey85"')
        suffix = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"  {_quote(node)}{suffix};")

    for parent, child in tree.routing_hops():
        declare(parent)
        declare(child)
        lines.append(f"  {_quote(parent)} -> {_quote(child)};")
    lines.append("}")
    return "\n".join(lines)


def write_dot(text: str, path: str) -> None:
    """Write DOT text to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
