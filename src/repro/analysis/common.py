"""Shared plumbing for the figure drivers."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core import ExponentialCostModel, OnlineCP, SPOnline
from repro.analysis.profiles import ONLINE_ALPHA_BETA
from repro.graph.graph import Graph, Node
from repro.network.sdn import SDNetwork, build_sdn
from repro.topology.geant import geant_graph, geant_servers
from repro.topology.random_graphs import gt_itm_flat
from repro.topology.rocketfuel import rocketfuel_graph, rocketfuel_servers
from repro.workload.generator import DEFAULT_DMAX_RATIO, generate_workload
from repro.workload.request import MulticastRequest


def build_random_network(size: int, seed: int) -> SDNetwork:
    """A GT-ITM-style network with the paper's default provisioning."""
    return build_sdn(gt_itm_flat(size, seed=seed), seed=seed)


def real_topologies() -> Dict[str, Tuple[Graph, List[Node]]]:
    """The paper's real networks: GÉANT, AS1755, and AS4755."""
    return {
        "GEANT": (geant_graph(), geant_servers()),
        "AS1755": (rocketfuel_graph(1755).copy(), rocketfuel_servers(1755)),
        "AS4755": (rocketfuel_graph(4755).copy(), rocketfuel_servers(4755)),
    }


def build_real_network(name: str, seed: int) -> SDNetwork:
    """Provision one of the real topologies with the paper's parameters."""
    graph, servers = real_topologies()[name]
    return build_sdn(graph, server_nodes=servers, seed=seed)


def make_requests(
    graph: Graph, count: int, ratio: object, seed: int
) -> List[MulticastRequest]:
    """Generate a request batch with a fixed or ranged ``D_max/|V|``.

    ``ratio=None`` selects the paper's per-request random ratio range.
    """
    if ratio is None:
        ratio = DEFAULT_DMAX_RATIO
    return generate_workload(graph, count=count, dmax_ratio=ratio, seed=seed)


def calibrated_online_cp(network: SDNetwork) -> OnlineCP:
    """``Online_CP`` with the documented experimental calibration.

    Uses the exponential cost model with base
    :data:`~repro.analysis.profiles.ONLINE_ALPHA_BETA` (see that constant's
    docstring for the rationale) and the paper's ``σ = |V| − 1`` thresholds.
    """
    model = ExponentialCostModel(
        alpha=ONLINE_ALPHA_BETA, beta=ONLINE_ALPHA_BETA
    )
    return OnlineCP(network, cost_model=model)


def make_sp_online(network: SDNetwork) -> SPOnline:
    """The ``SP`` baseline (kept as a factory for symmetry)."""
    return SPOnline(network)
