"""Fig. 5 — ``Appro_Multi`` vs ``Alg_One_Server`` on random networks.

Panels (a)–(c) of the paper plot the mean operational cost of the two
algorithms against the network size (50 … 250) for increasing values of the
destination ratio ``D_max/|V|``; panels (d)–(f) plot their running times.
Each driver call reproduces one (cost, time) panel pair per configured
ratio.

Expected shape: ``Appro_Multi`` costs roughly 70–90 % of
``Alg_One_Server``, the absolute gap widens with network size, and
``Appro_Multi`` is slower (it searches ``Σ_j C(|V_S|, j)`` server
combinations).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.common import build_random_network, make_requests
from repro.analysis.profiles import ExperimentProfile
from repro.analysis.series import FigureResult
from repro.core import alg_one_server, appro_multi
from repro.simulation import parallel_map, run_offline


def _fig5_point(
    profile: ExperimentProfile, ratio: float, size: int
) -> Tuple[float, float, float, float]:
    """One (ratio, size) data point; all randomness from ``seed_for``."""
    seed = profile.seed_for("fig5", ratio, size)
    network = build_random_network(size, seed)
    requests = make_requests(
        network.graph, profile.offline_requests, ratio, seed + 1
    )
    appro_stats = run_offline(
        lambda net, req: appro_multi(
            net, req, max_servers=profile.max_servers
        ),
        network,
        requests,
    )
    base_stats = run_offline(alg_one_server, network, requests)
    return (
        appro_stats.mean_cost,
        appro_stats.mean_runtime,
        base_stats.mean_cost,
        base_stats.mean_runtime,
    )


def run_fig5(profile: ExperimentProfile) -> List[FigureResult]:
    """Reproduce every panel of Fig. 5 under ``profile``.

    Returns one cost panel and one running-time panel per ratio in
    ``profile.ratios``.  Data points are independent trials and run on the
    process pool (see :mod:`repro.simulation.parallel`).
    """
    grid = [
        (profile, ratio, size)
        for ratio in profile.ratios
        for size in profile.network_sizes
    ]
    points = parallel_map(_fig5_point, grid)
    by_key = {
        (ratio, size): point
        for (_, ratio, size), point in zip(grid, points)
    }

    results: List[FigureResult] = []
    for ratio in profile.ratios:
        cost_panel = FigureResult(
            figure_id=f"fig5-cost-r{ratio:g}",
            title=(
                "Operational cost, Appro_Multi vs Alg_One_Server "
                f"(D_max/|V| = {ratio:g})"
            ),
            x_label="network size |V|",
            xs=list(profile.network_sizes),
            metadata={
                "profile": profile.name,
                "requests_per_point": profile.offline_requests,
                "K": profile.max_servers,
            },
        )
        time_panel = FigureResult(
            figure_id=f"fig5-time-r{ratio:g}",
            title=(
                "Running time (s/request), Appro_Multi vs Alg_One_Server "
                f"(D_max/|V| = {ratio:g})"
            ),
            x_label="network size |V|",
            xs=list(profile.network_sizes),
            metadata={"profile": profile.name},
        )

        appro_costs, appro_times = [], []
        base_costs, base_times = [], []
        for size in profile.network_sizes:
            appro_cost, appro_time, base_cost, base_time = by_key[
                (ratio, size)
            ]
            appro_costs.append(appro_cost)
            appro_times.append(appro_time)
            base_costs.append(base_cost)
            base_times.append(base_time)

        cost_panel.add_series("Appro_Multi", appro_costs)
        cost_panel.add_series("Alg_One_Server", base_costs)
        time_panel.add_series("Appro_Multi", appro_times)
        time_panel.add_series("Alg_One_Server", base_times)
        results.extend([cost_panel, time_panel])
    return results
