"""Executable paper-claim verification.

EXPERIMENTS.md's "expected shape" prose is turned into code here: every
qualitative claim the paper makes about its figures becomes a checkable
predicate over the reproduced series, and :func:`verify_results` grades a
full experiment run.  The CLI prints the verdict table after ``all`` runs
and embeds it at the top of the generated markdown, so a reader can see at
a glance which claims reproduce and which (if any) drift.

Claims are graded as:

- ``PASS`` / ``FAIL`` — the predicate held / did not;
- ``SKIP`` — the experiment was not part of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis.series import FigureResult

Results = Dict[str, List[FigureResult]]


@dataclass(frozen=True)
class ClaimVerdict:
    """The outcome of checking one paper claim against measured data."""

    claim_id: str
    description: str
    status: str  # PASS / FAIL / SKIP
    detail: str = ""


def _panels(results: Results, experiment: str) -> Optional[List[FigureResult]]:
    return results.get(experiment)


# ----------------------------------------------------------------------
# individual claim checks; each returns (passed, detail)
# ----------------------------------------------------------------------
def _check_fig5_cost(panels: List[FigureResult]):
    ratios = []
    for panel in panels:
        if not panel.figure_id.startswith("fig5-cost"):
            continue
        appro = panel.series_by_label("Appro_Multi").values
        base = panel.series_by_label("Alg_One_Server").values
        if not all(a < b for a, b in zip(appro, base)):
            return False, f"{panel.figure_id}: Appro_Multi not always cheaper"
        ratios.extend(a / b for a, b in zip(appro, base))
    return True, f"cost ratios {min(ratios):.2f}–{max(ratios):.2f}"


def _check_fig5_gap_growth(panels: List[FigureResult]):
    for panel in panels:
        if not panel.figure_id.startswith("fig5-cost"):
            continue
        appro = panel.series_by_label("Appro_Multi").values
        base = panel.series_by_label("Alg_One_Server").values
        gaps = [b - a for a, b in zip(appro, base)]
        if gaps[-1] <= gaps[0]:
            return False, (
                f"{panel.figure_id}: gap {gaps[0]:.2f} → {gaps[-1]:.2f}"
            )
    return True, "absolute gap grows with network size in every panel"


def _check_fig5_runtime(panels: List[FigureResult]):
    for panel in panels:
        if not panel.figure_id.startswith("fig5-time"):
            continue
        appro = panel.series_by_label("Appro_Multi").values
        base = panel.series_by_label("Alg_One_Server").values
        if not all(a > b for a, b in zip(appro, base)):
            return False, f"{panel.figure_id}: Appro_Multi not slower"
    return True, "Appro_Multi slower at every point (combination search)"


def _check_fig6_cost(panels: List[FigureResult]):
    for panel in panels:
        if not panel.figure_id.startswith("fig6-cost"):
            continue
        appro = panel.series_by_label("Appro_Multi").values
        base = panel.series_by_label("Alg_One_Server").values
        if not all(a < b for a, b in zip(appro, base)):
            return False, f"{panel.figure_id}: not always cheaper"
    return True, "Appro_Multi cheaper at every ratio on every real topology"


def _check_fig7(panels: List[FigureResult]):
    panel = panels[0]
    cap = panel.series_by_label("Appro_Multi_Cap").values
    uncap = panel.series_by_label("Appro_Multi (uncapacitated)").values
    if not all(c >= u - 1e-9 for c, u in zip(cap, uncap)):
        return False, "capacitated tree cheaper than uncapacitated"
    worst = max(c / u for c, u in zip(cap, uncap) if u)
    return True, f"capacity constraints inflate cost by up to {worst:.3f}x"


def _check_fig8(panels: List[FigureResult]):
    panel = panels[0]
    cp = panel.series_by_label("Online_CP").values
    sp = panel.series_by_label("SP").values
    if not all(c >= s for c, s in zip(cp, sp)):
        return False, "SP admitted more at some size"
    if not sum(cp) > sum(sp):
        return False, "no overall advantage"
    return True, f"Online_CP/SP totals {sum(cp):.0f}/{sum(sp):.0f}"


def _check_fig8_nonmonotone(panels: List[FigureResult]):
    cp = panels[0].series_by_label("Online_CP").values
    monotone = cp == sorted(cp) or cp == sorted(cp, reverse=True)
    if len(cp) < 3:
        return True, "sweep too short to assess (needs ≥ 3 sizes)"
    if monotone:
        return False, f"admissions monotone across sizes: {cp}"
    return True, f"admissions non-monotone: {cp}"


def _check_fig9(panels: List[FigureResult]):
    for panel in panels:
        cp = panel.series_by_label("Online_CP").values
        sp = panel.series_by_label("SP").values
        if cp[0] < 0.8 * panel.xs[0]:
            return False, f"{panel.figure_id}: heavy rejection at light load"
        if cp[-1] < sp[-1]:
            return False, f"{panel.figure_id}: SP ahead at full load"
    return True, "light load ≈ everything admitted; Online_CP ahead under load"


def _check_kmb_bound(panels: List[FigureResult]):
    for panel in panels:
        if panel.figure_id != "ablation-kmb":
            continue
        ratios = panel.series_by_label("cost ratio").values
        if not all(r <= 2.0 + 1e-9 for r in ratios):
            return False, f"ratio above 2: {max(ratios):.3f}"
        return True, f"worst empirical ratio {max(ratios):.3f} (bound 2.0)"
    return False, "ablation-kmb panel missing"


def _check_topology_robustness(panels: List[FigureResult]):
    for panel in panels:
        if panel.figure_id != "ablation-topology":
            continue
        ratios = panel.series_by_label("cost ratio").values
        if not all(r < 1.0 for r in ratios):
            return False, f"gap lost on some family: {ratios}"
        return True, (
            f"Appro_Multi wins on all families "
            f"(ratios {min(ratios):.2f}–{max(ratios):.2f})"
        )
    return False, "ablation-topology panel missing"


def _check_competitive(panels: List[FigureResult]):
    ratio_panel = panels[1]
    cp = ratio_panel.series_by_label("Online_CP / oracle").values
    if not all(r > 0.5 for r in cp):
        return False, f"ratio fell to {min(cp):.2f}"
    return True, (
        f"empirical ratio {min(cp):.2f}–{max(cp):.2f}, far above the "
        "Ω(1/log|V|) guarantee"
    )


def _check_resilience_cost(panels: List[FigureResult]):
    cost = next(p for p in panels if p.figure_id == "resilience-cost")
    names = [str(x) for x in cost.xs]
    mean_cost = cost.series_by_label("mean_repair_cost").values
    graft = mean_cost[names.index("graft")]
    readmit = mean_cost[names.index("readmit")]
    if not graft < readmit:
        return False, (
            f"graft repairs not cheaper: graft={graft:.2f} "
            f"readmit={readmit:.2f}"
        )
    return True, (
        f"mean repair cost graft={graft:.2f} < readmit={readmit:.2f}"
    )


def _check_resilience_disruption(panels: List[FigureResult]):
    service = next(
        p for p in panels if p.figure_id == "resilience-service"
    )
    names = [str(x) for x in service.xs]
    ratio = service.series_by_label("disruption_ratio").values
    drop = ratio[names.index("drop")]
    graft = ratio[names.index("graft")]
    readmit = ratio[names.index("readmit")]
    if not (graft < drop and readmit < drop):
        return False, (
            f"repair did not reduce disruption: drop={drop:.3f} "
            f"readmit={readmit:.3f} graft={graft:.3f}"
        )
    return True, (
        f"disruption ratio drop={drop:.3f} > readmit={readmit:.3f}, "
        f"graft={graft:.3f}"
    )


#: (claim id, experiment, human description, checker)
CLAIMS = [
    ("fig5-cheaper", "fig5",
     "Appro_Multi costs less than Alg_One_Server on random networks",
     _check_fig5_cost),
    ("fig5-gap-grows", "fig5",
     "the absolute cost gap widens with network size",
     _check_fig5_gap_growth),
    ("fig5-slower", "fig5",
     "Appro_Multi takes (slightly) longer than the baseline",
     _check_fig5_runtime),
    ("fig6-real-topologies", "fig6",
     "the cost advantage holds on GÉANT and the ISP topologies",
     _check_fig6_cost),
    ("fig7-capacity-cost", "fig7",
     "capacity constraints make Appro_Multi_Cap costlier",
     _check_fig7),
    ("fig8-throughput", "fig8",
     "Online_CP admits more requests than SP at every size",
     _check_fig8),
    ("fig8-nonmonotone", "fig8",
     "admitted count is not monotone in the network size",
     _check_fig8_nonmonotone),
    ("fig9-load-gap", "fig9",
     "both admit ~everything lightly loaded; Online_CP ahead under load",
     _check_fig9),
    ("thm1-kmb-bound", "ablations",
     "the per-combination 2-approximation bound holds empirically",
     _check_kmb_bound),
    ("topology-robustness", "ablations",
     "the offline gap is robust across topology families",
     _check_topology_robustness),
    ("thm2-empirical", "competitive",
     "Online_CP sits far above its worst-case competitive guarantee",
     _check_competitive),
    ("resilience-graft-cheaper", "resilience",
     "subtree grafting repairs cost less than full readmission",
     _check_resilience_cost),
    ("resilience-repair-helps", "resilience",
     "repairing drops fewer requests than the drop-affected baseline",
     _check_resilience_disruption),
]


def verify_results(results: Results) -> List[ClaimVerdict]:
    """Grade every paper claim against a run's results."""
    verdicts = []
    for claim_id, experiment, description, checker in CLAIMS:
        panels = _panels(results, experiment)
        if panels is None:
            verdicts.append(
                ClaimVerdict(claim_id, description, "SKIP",
                             f"experiment {experiment!r} not in this run")
            )
            continue
        try:
            passed, detail = checker(panels)
        except (KeyError, IndexError) as exc:
            verdicts.append(
                ClaimVerdict(claim_id, description, "FAIL",
                             f"missing data: {exc!r}")
            )
            continue
        verdicts.append(
            ClaimVerdict(
                claim_id, description, "PASS" if passed else "FAIL", detail
            )
        )
    return verdicts


def render_verdicts(verdicts: List[ClaimVerdict]) -> str:
    """Aligned text table of claim verdicts."""
    width = max(len(v.claim_id) for v in verdicts)
    lines = ["paper-claim verification:"]
    for verdict in verdicts:
        lines.append(
            f"  [{verdict.status:<4}] {verdict.claim_id.ljust(width)}  "
            f"{verdict.description}"
        )
        if verdict.detail:
            lines.append(f"  {'':<7}{' ' * width}  -> {verdict.detail}")
    counts = {
        status: sum(1 for v in verdicts if v.status == status)
        for status in ("PASS", "FAIL", "SKIP")
    }
    lines.append(
        f"  {counts['PASS']} passed, {counts['FAIL']} failed, "
        f"{counts['SKIP']} skipped"
    )
    return "\n".join(lines)


def verdicts_markdown(verdicts: List[ClaimVerdict]) -> str:
    """Markdown table of claim verdicts for EXPERIMENTS.md."""
    lines = [
        "| status | claim | evidence |",
        "|---|---|---|",
    ]
    for verdict in verdicts:
        icon = {"PASS": "✅", "FAIL": "❌", "SKIP": "⏭"}[verdict.status]
        lines.append(
            f"| {icon} {verdict.status} | {verdict.description} | "
            f"{verdict.detail} |"
        )
    return "\n".join(lines)
