"""Structured export of figure results (JSON and CSV).

Downstream users rarely want text tables: they want the series in a form a
plotting pipeline can ingest.  :func:`results_to_json` serializes a full
experiment run; :func:`figure_to_csv` flattens one panel into CSV rows.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from repro.analysis.series import FigureResult


def figure_to_dict(result: FigureResult) -> Dict:
    """Serialize one panel to plain JSON-compatible data."""
    return {
        "figure_id": result.figure_id,
        "title": result.title,
        "x_label": result.x_label,
        "xs": list(result.xs),
        "series": [
            {"label": series.label, "values": list(series.values)}
            for series in result.series
        ],
        "metadata": {k: _plain(v) for k, v in result.metadata.items()},
    }


def results_to_json(
    results: Dict[str, List[FigureResult]], indent: int = 2
) -> str:
    """Serialize an entire experiment run (name → panels) to JSON."""
    payload = {
        name: [figure_to_dict(panel) for panel in panels]
        for name, panels in results.items()
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def figure_to_csv(result: FigureResult) -> str:
    """Flatten one panel to CSV: first column x, one column per series."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [result.x_label] + [series.label for series in result.series]
    )
    for i, x in enumerate(result.xs):
        writer.writerow([x] + [series.values[i] for series in result.series])
    return buffer.getvalue()


def write_json(
    results: Dict[str, List[FigureResult]], path: str
) -> None:
    """Write :func:`results_to_json` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(results_to_json(results))


def _plain(value):
    """Coerce metadata values into JSON-safe primitives."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
