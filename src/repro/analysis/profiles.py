"""Experiment profiles: how big a reproduction run should be.

The paper averages 1 000 requests per data point on networks up to 250 nodes
— hours of work for a pure-Python implementation of an ``O(|V|³·|V_S|^K)``
algorithm.  Profiles make the cost explicit and tunable:

- ``fast`` — seconds per figure; used by the benchmark suite and CI.
- ``paper`` — the paper's network sizes with a documented reduction of the
  per-point request count (the *averages* stabilize long before 1 000
  requests; EXPERIMENTS.md reports the counts used).

All randomness is derived from ``base_seed`` so runs are reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import ExperimentError

#: Calibration used by the online figure drivers.  The paper's competitive
#: analysis sets α = β = 2|V|, but with the σ = |V|−1 thresholds that
#: setting rejects aggressively long before saturation (the worst-case
#: guarantee costs real throughput); a gentler base keeps the congestion
#: pricing while letting the thresholds act only near saturation.  The
#: ablation benchmark sweeps this choice.
ONLINE_ALPHA_BETA = 8.0


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale parameters for the figure drivers.

    Attributes:
        name: profile identifier (``fast``/``paper``/custom).
        network_sizes: the ``|V|`` sweep for random-topology figures.
        ratios: the ``D_max/|V|`` sweep for Figs. 5 and 6.
        offline_requests: requests averaged per offline data point.
        online_requests: length of the arrival sequence for Figs. 8 and 9.
        request_counts: the x axis of Fig. 9 (requests sweep).
        max_servers: the paper's ``K``.
        base_seed: root of all derived seeds.
    """

    name: str
    network_sizes: Tuple[int, ...]
    ratios: Tuple[float, ...]
    offline_requests: int
    online_requests: int
    request_counts: Tuple[int, ...]
    max_servers: int = 3
    base_seed: int = 42

    def seed_for(self, *components: object) -> int:
        """Derive a deterministic sub-seed from labelled components.

        Uses CRC32 rather than ``hash`` so the derivation is stable across
        interpreter runs (``hash`` of strings is salted per process).
        """
        value = self.base_seed
        for component in components:
            digest = zlib.crc32(str(component).encode("utf-8"))
            value = (value * 1_000_003 + digest) % (2**31 - 1)
        return value


FAST_PROFILE = ExperimentProfile(
    name="fast",
    network_sizes=(50, 100, 150),
    ratios=(0.05, 0.2),
    offline_requests=8,
    online_requests=300,
    request_counts=(100, 200, 300),
)

PAPER_PROFILE = ExperimentProfile(
    name="paper",
    network_sizes=(50, 100, 150, 200, 250),
    ratios=(0.05, 0.1, 0.2),
    offline_requests=30,
    online_requests=300,
    request_counts=(50, 100, 150, 200, 250, 300),
)

_PROFILES = {"fast": FAST_PROFILE, "paper": PAPER_PROFILE}


def get_profile(name: str) -> ExperimentProfile:
    """Look up a named profile (``fast`` or ``paper``)."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None
