"""Fig. 8 — ``Online_CP`` vs ``SP`` over the network-size sweep.

The paper admits a monitoring period of 300 requests on networks of 50 to
250 switches and counts admissions.  Expected shape: ``Online_CP`` admits
more requests than ``SP`` at every size, and the admitted count is *not*
monotone in the network size (bigger networks also mean farther-apart
destinations, i.e. hungrier trees).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.common import (
    build_random_network,
    calibrated_online_cp,
    make_requests,
    make_sp_online,
)
from repro.analysis.profiles import ExperimentProfile
from repro.analysis.series import FigureResult
from repro.simulation import parallel_map, run_online


def _fig8_point(
    profile: ExperimentProfile, size: int
) -> Tuple[float, float, float, float]:
    """One network-size data point; all randomness from ``seed_for``."""
    seed = profile.seed_for("fig8", size)
    graph = build_random_network(size, seed).graph  # topology only
    requests = make_requests(
        graph, profile.online_requests, None, seed + 1
    )
    cp_stats = run_online(
        calibrated_online_cp(build_random_network(size, seed)), requests
    )
    sp_stats = run_online(
        make_sp_online(build_random_network(size, seed)), requests
    )
    return (
        float(cp_stats.admitted),
        float(sp_stats.admitted),
        cp_stats.total_runtime,
        sp_stats.total_runtime,
    )


def run_fig8(profile: ExperimentProfile) -> List[FigureResult]:
    """Reproduce Fig. 8: admissions and deciding time per network size."""
    admitted_panel = FigureResult(
        figure_id="fig8-admitted",
        title=(
            f"Requests admitted out of {profile.online_requests} "
            "(Online_CP vs SP)"
        ),
        x_label="network size |V|",
        xs=list(profile.network_sizes),
        metadata={
            "profile": profile.name,
            "requests": profile.online_requests,
        },
    )
    time_panel = FigureResult(
        figure_id="fig8-time",
        title="Total decision time (s) over the request sequence",
        x_label="network size |V|",
        xs=list(profile.network_sizes),
        metadata={"profile": profile.name},
    )

    grid = [(profile, size) for size in profile.network_sizes]
    points = parallel_map(_fig8_point, grid)

    cp_admitted, sp_admitted, cp_times, sp_times = [], [], [], []
    for cp_adm, sp_adm, cp_time, sp_time in points:
        cp_admitted.append(cp_adm)
        sp_admitted.append(sp_adm)
        cp_times.append(cp_time)
        sp_times.append(sp_time)

    admitted_panel.add_series("Online_CP", cp_admitted)
    admitted_panel.add_series("SP", sp_admitted)
    time_panel.add_series("Online_CP", cp_times)
    time_panel.add_series("SP", sp_times)
    return [admitted_panel, time_panel]
