"""Fig. 9 — ``Online_CP`` vs ``SP`` as the request count grows.

The paper sweeps the number of requests from 50 to 300 in GÉANT (a) and
AS1755 (b).  Expected shape: both algorithms admit almost everything while
the network is lightly loaded (≤ ~100 requests); beyond that ``Online_CP``
pulls ahead, and the gap widens as contention grows — the congestion-aware
cost model steers trees away from resources ``SP``'s uniform weights burn
out.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.common import (
    build_real_network,
    calibrated_online_cp,
    make_requests,
    make_sp_online,
)
from repro.analysis.profiles import ExperimentProfile
from repro.analysis.series import FigureResult
from repro.simulation import run_online

FIG9_TOPOLOGIES = ("GEANT", "AS1755")


def run_fig9(
    profile: ExperimentProfile,
    topologies: Sequence[str] = FIG9_TOPOLOGIES,
) -> List[FigureResult]:
    """Reproduce Fig. 9 for each configured real topology."""
    results: List[FigureResult] = []
    counts = list(profile.request_counts)
    for name in topologies:
        panel = FigureResult(
            figure_id=f"fig9-{name.lower()}",
            title=f"Requests admitted in {name} (Online_CP vs SP)",
            x_label="number of requests",
            xs=[float(c) for c in counts],
            metadata={"profile": profile.name},
        )
        seed = profile.seed_for("fig9", name)
        # Generate the longest sequence once; shorter sweeps are prefixes,
        # exactly as a growing monitoring period would observe.
        graph = build_real_network(name, seed).graph
        requests = make_requests(graph, max(counts), None, seed + 1)

        cp_admitted, sp_admitted = [], []
        for count in counts:
            prefix = requests[:count]
            cp_stats = run_online(
                calibrated_online_cp(build_real_network(name, seed)), prefix
            )
            sp_stats = run_online(
                make_sp_online(build_real_network(name, seed)), prefix
            )
            cp_admitted.append(float(cp_stats.admitted))
            sp_admitted.append(float(sp_stats.admitted))
        panel.add_series("Online_CP", cp_admitted)
        panel.add_series("SP", sp_admitted)
        results.append(panel)
    return results
