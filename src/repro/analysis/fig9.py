"""Fig. 9 — ``Online_CP`` vs ``SP`` as the request count grows.

The paper sweeps the number of requests from 50 to 300 in GÉANT (a) and
AS1755 (b).  Expected shape: both algorithms admit almost everything while
the network is lightly loaded (≤ ~100 requests); beyond that ``Online_CP``
pulls ahead, and the gap widens as contention grows — the congestion-aware
cost model steers trees away from resources ``SP``'s uniform weights burn
out.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analysis.common import (
    build_real_network,
    calibrated_online_cp,
    make_requests,
    make_sp_online,
)
from repro.analysis.profiles import ExperimentProfile
from repro.analysis.series import FigureResult
from repro.simulation import parallel_map, run_online

FIG9_TOPOLOGIES = ("GEANT", "AS1755")


def _fig9_point(
    profile: ExperimentProfile, name: str, count: int, longest: int
) -> Tuple[float, float]:
    """One (topology, request-count) data point.

    Regenerates the full ``longest``-request sequence from the same seed and
    replays its ``count``-prefix, so every point sees exactly the arrivals a
    growing monitoring period would observe — identical to slicing one
    shared list, but self-contained for the process pool.
    """
    seed = profile.seed_for("fig9", name)
    graph = build_real_network(name, seed).graph
    prefix = make_requests(graph, longest, None, seed + 1)[:count]
    cp_stats = run_online(
        calibrated_online_cp(build_real_network(name, seed)), prefix
    )
    sp_stats = run_online(
        make_sp_online(build_real_network(name, seed)), prefix
    )
    return (float(cp_stats.admitted), float(sp_stats.admitted))


def run_fig9(
    profile: ExperimentProfile,
    topologies: Sequence[str] = FIG9_TOPOLOGIES,
) -> List[FigureResult]:
    """Reproduce Fig. 9 for each configured real topology."""
    results: List[FigureResult] = []
    counts = list(profile.request_counts)
    longest = max(counts)
    grid = [
        (profile, name, count, longest)
        for name in topologies
        for count in counts
    ]
    points = parallel_map(_fig9_point, grid)
    by_key = {
        (name, count): point
        for (_, name, count, _), point in zip(grid, points)
    }
    for name in topologies:
        panel = FigureResult(
            figure_id=f"fig9-{name.lower()}",
            title=f"Requests admitted in {name} (Online_CP vs SP)",
            x_label="number of requests",
            xs=[float(c) for c in counts],
            metadata={"profile": profile.name},
        )
        cp_admitted, sp_admitted = [], []
        for count in counts:
            cp_adm, sp_adm = by_key[(name, count)]
            cp_admitted.append(cp_adm)
            sp_admitted.append(sp_adm)
        panel.add_series("Online_CP", cp_admitted)
        panel.add_series("SP", sp_admitted)
        results.append(panel)
    return results
