"""Analysis: one reproduction driver per figure of the paper."""

from repro.analysis.ablations import (
    ablate_cost_model,
    ablate_k,
    ablate_kmb_quality,
    ablate_online_k,
    ablate_thresholds,
    ablate_topology_family,
    run_ablations,
)
from repro.analysis.ascii_plot import render_chart
from repro.analysis.competitive import (
    offline_oracle_admissions,
    run_competitive,
)
from repro.analysis.export import (
    figure_to_csv,
    figure_to_dict,
    results_to_json,
    write_json,
)
from repro.analysis.confidence_runs import run_fig8_ci
from repro.analysis.fig5 import run_fig5
from repro.analysis.fig6 import FIG6_RATIOS, run_fig6
from repro.analysis.fig7 import FIG7_RATIO, run_fig7
from repro.analysis.fig8 import run_fig8
from repro.analysis.fig9 import run_fig9
from repro.analysis.profiles import (
    FAST_PROFILE,
    ONLINE_ALPHA_BETA,
    PAPER_PROFILE,
    ExperimentProfile,
    get_profile,
)
from repro.analysis.report import (
    EXPERIMENTS,
    build_experiments_markdown,
    run_all,
    run_experiment,
)
from repro.analysis.series import FigureResult, Series, render_table
from repro.analysis.stats import (
    SampleSummary,
    aggregate_over_seeds,
    curves_with_confidence,
    summarize,
    t_quantile_975,
)
from repro.analysis.verdicts import (
    ClaimVerdict,
    render_verdicts,
    verdicts_markdown,
    verify_results,
)
from repro.analysis.visualize import (
    graph_to_dot,
    network_to_dot,
    tree_to_dot,
    write_dot,
)

__all__ = [
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_ablations",
    "run_competitive",
    "run_fig8_ci",
    "offline_oracle_admissions",
    "render_chart",
    "figure_to_csv",
    "figure_to_dict",
    "results_to_json",
    "write_json",
    "ablate_k",
    "ablate_online_k",
    "ablate_topology_family",
    "ablate_cost_model",
    "ablate_thresholds",
    "ablate_kmb_quality",
    "FIG6_RATIOS",
    "FIG7_RATIO",
    "ExperimentProfile",
    "FAST_PROFILE",
    "PAPER_PROFILE",
    "ONLINE_ALPHA_BETA",
    "get_profile",
    "EXPERIMENTS",
    "run_all",
    "run_experiment",
    "build_experiments_markdown",
    "FigureResult",
    "Series",
    "render_table",
    "SampleSummary",
    "summarize",
    "aggregate_over_seeds",
    "curves_with_confidence",
    "t_quantile_975",
    "graph_to_dot",
    "network_to_dot",
    "tree_to_dot",
    "write_dot",
    "ClaimVerdict",
    "verify_results",
    "render_verdicts",
    "verdicts_markdown",
]
