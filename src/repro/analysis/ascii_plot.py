"""Terminal line charts for figure results — no plotting dependency.

``render_chart`` draws a :class:`~repro.analysis.series.FigureResult` as a
fixed-size character canvas: one marker per series, a y-axis with min/max
labels, and x labels at both ends.  Useful with ``python -m repro.cli fig8
--chart`` to eyeball shapes without leaving the terminal.
"""

from __future__ import annotations

from typing import List

from repro.analysis.series import FigureResult

#: Series markers, assigned in order.
MARKERS = "ox+*#@%&"


def render_chart(
    result: FigureResult, width: int = 64, height: int = 16
) -> str:
    """Render the panel's series onto a ``width × height`` canvas."""
    if not result.xs or not result.series:
        return f"{result.figure_id}: (no data)"
    if width < 8 or height < 4:
        raise ValueError("canvas must be at least 8x4")

    xs = [float(x) for x in result.xs]
    all_values = [v for series in result.series for v in series.values]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_values), max(all_values)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, marker: str) -> None:
        column = round((x - x_lo) / x_span * (width - 1))
        row = round((y - y_lo) / y_span * (height - 1))
        line = height - 1 - row
        current = canvas[line][column]
        canvas[line][column] = "*" if current not in (" ", marker) else marker

    for index, series in enumerate(result.series):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in zip(xs, series.values):
            plot(x, y, marker)

    y_hi_label = _compact(y_hi)
    y_lo_label = _compact(y_lo)
    gutter = max(len(y_hi_label), len(y_lo_label))
    lines: List[str] = [f"{result.figure_id}: {result.title}"]
    for i, row in enumerate(canvas):
        if i == 0:
            label = y_hi_label.rjust(gutter)
        elif i == height - 1:
            label = y_lo_label.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    x_left = _compact(x_lo)
    x_right = _compact(x_hi)
    padding = width - len(x_left) - len(x_right)
    lines.append(
        " " * (gutter + 2) + x_left + " " * max(1, padding) + x_right
    )
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {series.label}"
        for i, series in enumerate(result.series)
    )
    lines.append(" " * (gutter + 2) + legend)
    return "\n".join(lines)


def _compact(value: float) -> str:
    """Short numeric label: ints stay ints, floats get 3 significant digits."""
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.3g}"
