"""End-to-end experiment runner and EXPERIMENTS.md generation."""

from __future__ import annotations

import datetime
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.ablations import run_ablations
from repro.analysis.competitive import run_competitive
from repro.analysis.confidence_runs import run_fig8_ci
from repro.analysis.fig5 import run_fig5
from repro.analysis.fig6 import run_fig6
from repro.analysis.fig7 import run_fig7
from repro.analysis.fig8 import run_fig8
from repro.analysis.fig9 import run_fig9
from repro.analysis.profiles import ExperimentProfile
from repro.analysis.resilience import run_resilience
from repro.analysis.series import FigureResult, render_table
from repro.analysis.verdicts import verdicts_markdown, verify_results
from repro.exceptions import ExperimentError

#: Registry of experiment drivers keyed by CLI name.
EXPERIMENTS: Dict[str, Callable[[ExperimentProfile], List[FigureResult]]] = {
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "ablations": run_ablations,
    "competitive": run_competitive,
    "fig8ci": run_fig8_ci,
    "resilience": run_resilience,
}

#: Paper-vs-expected commentary per experiment (used in EXPERIMENTS.md).
EXPECTATIONS: Dict[str, str] = {
    "fig5": (
        "Paper: Appro_Multi's cost is ≈80% of Alg_One_Server's, the absolute "
        "gap widens with network size, and Appro_Multi takes slightly longer. "
        "Check the cost columns (Appro_Multi < Alg_One_Server throughout) and "
        "the time columns (Appro_Multi > Alg_One_Server)."
    ),
    "fig6": (
        "Paper: in GÉANT and AS1755, Appro_Multi's cost is clearly lower "
        "(≈30% lower in AS1755 at ratio 0.15) at slightly higher running "
        "time; cost grows with D_max/|V| for both algorithms."
    ),
    "fig7": (
        "Paper: Appro_Multi_Cap's operational cost exceeds uncapacitated "
        "Appro_Multi's — capacity pruning shrinks the usable server "
        "combinations."
    ),
    "fig8": (
        "Paper: Online_CP admits more requests than SP at every network "
        "size (the paper reports up to 2×), and the admitted count is not "
        "monotone in the network size."
    ),
    "fig9": (
        "Paper: both algorithms admit almost all requests while load is "
        "light (≤ ~100), then Online_CP pulls ahead and the gap widens with "
        "the number of requests."
    ),
    "ablations": (
        "K larger → cost never worse but combinatorial search cost grows; "
        "congestion-aware pricing beats the static linear strawman; the "
        "paper's σ=|V|−1 thresholds with α=β=2|V| trade throughput for the "
        "worst-case guarantee; KMB stays well under its factor-2 bound; the "
        "multi-server online extension (OnlineCPK) matches or beats the "
        "paper's K=1 online algorithm."
    ),
    "fig8ci": (
        "Statistical variant of Fig. 8: Online_CP's mean admissions should "
        "exceed SP's with confidence intervals that do not overlap at the "
        "sizes where the gap is visible."
    ),
    "competitive": (
        "Extension: Theorem 2 guarantees Ω(1/log|V|) of the offline "
        "optimum; against a greedy full-lookahead oracle the empirical "
        "ratio should sit far above that worst case (≈0.8–1.0), with SP "
        "noticeably lower under load."
    ),
    "resilience": (
        "Extension: under seeded link failures on GÉANT, subtree grafting "
        "repairs broken trees at a strictly lower mean cost than full "
        "readmission, and both repair strategies leave a strictly lower "
        "disruption ratio than dropping every affected request."
    ),
}


def run_experiment(
    name: str, profile: ExperimentProfile
) -> List[FigureResult]:
    """Run one named experiment under ``profile``."""
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return driver(profile)


def run_all(
    profile: ExperimentProfile,
    names: Optional[Sequence[str]] = None,
    echo: Optional[Callable[[str], None]] = print,
) -> Dict[str, List[FigureResult]]:
    """Run the configured experiments, echoing tables as they complete."""
    chosen = list(names) if names is not None else list(EXPERIMENTS)
    results: Dict[str, List[FigureResult]] = {}
    for name in chosen:
        # Reported per-experiment wall time for the progress echo only.
        started = time.perf_counter()  # repro-lint: disable=RL007
        panels = run_experiment(name, profile)
        elapsed = time.perf_counter() - started  # repro-lint: disable=RL007
        results[name] = panels
        if echo is not None:
            echo(f"== {name} ({elapsed:.1f}s) ==")
            for panel in panels:
                echo(render_table(panel))
                echo("")
    return results


def build_experiments_markdown(
    results: Dict[str, List[FigureResult]], profile: ExperimentProfile
) -> str:
    """Render the EXPERIMENTS.md document from run results."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Reproduction of every figure in the evaluation section of",
        '*"Approximation and Online Algorithms for NFV-Enabled Multicasting',
        'in SDNs"* (ICDCS 2017).  Regenerate with:',
        "",
        "```",
        f"python -m repro.cli all --profile {profile.name}",
        "```",
        "",
        f"Profile: `{profile.name}` — network sizes "
        f"{list(profile.network_sizes)}, {profile.offline_requests} requests "
        f"per offline data point (the paper averages 1 000; means stabilize "
        f"far earlier and the full setting is available via the `paper` "
        f"profile), {profile.online_requests} requests per online run, "
        f"K = {profile.max_servers}.",
        "",
        # Human-facing report timestamp; not part of any figure series.
        f"Generated: {datetime.date.today().isoformat()}",  # repro-lint: disable=RL007
        "",
        "## Claim verification",
        "",
        verdicts_markdown(verify_results(results)),
        "",
    ]
    for name, panels in results.items():
        lines.append(f"## {name}")
        lines.append("")
        expectation = EXPECTATIONS.get(name)
        if expectation:
            lines.append(f"**Expected shape.** {expectation}")
            lines.append("")
        for panel in panels:
            lines.append("```")
            lines.append(render_table(panel))
            lines.append("```")
            lines.append("")
    return "\n".join(lines)
