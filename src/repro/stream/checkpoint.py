"""Checkpoint/restore for stream runs: kill a run, resume bit-identically.

A million-request stream run is too long to lose to a crash.  Every
``checkpoint_every`` arrivals the :class:`~repro.stream.engine.
StreamEngine` hands itself to :func:`save_checkpoint`, which serializes
*everything the next decision depends on* into one JSON document:

- the arrival stream's drawing state (RNGs, produced count, clock),
- every link/server residual and up/down flag of the network,
- the live admissions, in admission order, each with its request body,
  booked reservations, routing hops, servers, and departure time,
- the departure priority queue and its tie-break sequence counter,
- the engine's rolling statistics (including the chained decision
  digest) and, when attached, the telemetry registry snapshot and
  emitter mirror.

:func:`restore_into` replays that document into a *freshly built*
engine (same topology seed, same algorithm construction, same stream
parameters — recorded in the checkpoint's ``meta`` by the caller):
residuals are restored exactly (JSON float round-trip is exact in
Python), each admission's reservations are re-homed into an adopted
:class:`~repro.network.allocation.AllocationTransaction` and re-handed
to the algorithm via ``adopt_admission``, controller rules are
reinstalled in admission order, and the stream/stats/emitter state is
adopted wholesale.  Because every online decision is a pure function of
(residuals, request), the resumed run reproduces the straight-through
decision sequence bit-for-bit — the chained digest is the witness, and
``tests/stream`` kills a run at every checkpoint boundary to prove it.

Writes are atomic (temp file + ``os.replace``), so a crash *during* a
checkpoint leaves the previous checkpoint intact.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Hashable, List, Optional

from repro.exceptions import SimulationError
from repro.network.allocation import AllocationTransaction
from repro.network.sdn import NetworkSnapshot
from repro.nfv.functions import FunctionType
from repro.nfv.service_chain import ServiceChain
from repro.obs.registry import (
    enabled as _obs_enabled,
    merge as _obs_merge,
    reset as _obs_reset,
    snapshot as _obs_snapshot,
)
from repro.stream.engine import StreamEngine
from repro.workload.request import MulticastRequest

__all__ = [
    "CheckpointError",
    "FORMAT",
    "INCIDENTAL_COUNTERS",
    "INCIDENTAL_TIMERS",
    "VERSION",
    "capture",
    "load_checkpoint",
    "restore_into",
    "save_checkpoint",
]

FORMAT = "repro-stream-checkpoint"
VERSION = 1

#: Telemetry counters that legitimately differ between a resumed run and
#: its straight-through twin.  The decision stream is bit-identical, but a
#: fresh process starts with *cold caches*: the shortest-path LRU refills
#: its slots once after restore, so its eviction count ends short by at
#: most the LRU capacity.  Wall-clock-valued timers differ too (they
#: measure this process, not the workload).  Everything else — decision
#: counters, solver call counts, value-based histograms — must match
#: exactly, and the differential tests assert that after excluding this
#: set.
INCIDENTAL_COUNTERS = frozenset({"spregistry.evictions"})

#: Timer names whose *count* differs on resume: the ``stream_run`` span
#: wraps each ``StreamEngine.run()`` invocation, and a resumed run calls
#: ``run()`` once before and once after the kill, so its count records
#: invocations, not workload.  All other timer counts must match exactly
#: (their totals are wall-clock-valued and never compare bit-for-bit).
INCIDENTAL_TIMERS = frozenset({"stream_run"})


class CheckpointError(SimulationError):
    """A checkpoint document is missing, malformed, or incompatible."""


# ----------------------------------------------------------------------
# node codec: JSON has no tuple values and only string object keys, so
# nodes (ints, strings, or tuples for grid-style topologies) are encoded
# as values inside lists, with tuples wrapped in a tagged object.
# ----------------------------------------------------------------------
def encode_node(node: Hashable) -> Any:
    """JSON-safe encoding of a topology node or request id."""
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    if isinstance(node, tuple):
        return {"t": [encode_node(item) for item in node]}
    raise CheckpointError(
        f"cannot serialize node {node!r} of type {type(node).__name__}"
    )


def decode_node(value: Any) -> Hashable:
    """Inverse of :func:`encode_node`."""
    if isinstance(value, dict):
        return tuple(decode_node(item) for item in value["t"])
    return value


def _encode_request(body: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "request_id": encode_node(body["request_id"]),
        "source": encode_node(body["source"]),
        "destinations": [encode_node(d) for d in body["destinations"]],
        "bandwidth": body["bandwidth"],
        "chain": list(body["chain"]),
    }


def _decode_request(data: Dict[str, Any]) -> MulticastRequest:
    return MulticastRequest.create(
        request_id=decode_node(data["request_id"]),
        source=decode_node(data["source"]),
        destinations=[decode_node(d) for d in data["destinations"]],
        bandwidth=float(data["bandwidth"]),
        chain=ServiceChain.of(
            *(FunctionType(kind) for kind in data["chain"])
        ),
    )


def _encode_active(record: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "request": _encode_request(record["request"]),
        "departs_at": record["departs_at"],
        "bandwidth_ops": [
            [encode_node(u), encode_node(v), amount]
            for u, v, amount in record["bandwidth_ops"]
        ],
        "compute_ops": [
            [encode_node(node), amount]
            for node, amount in record["compute_ops"]
        ],
        "hops": [
            [encode_node(u), encode_node(v)] for u, v in record["hops"]
        ],
        "servers": [encode_node(s) for s in record["servers"]],
    }


def _decode_active(data: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "request": {
            "request_id": decode_node(data["request"]["request_id"]),
            "source": decode_node(data["request"]["source"]),
            "destinations": [
                decode_node(d) for d in data["request"]["destinations"]
            ],
            "bandwidth": float(data["request"]["bandwidth"]),
            "chain": list(data["request"]["chain"]),
        },
        "departs_at": data["departs_at"],
        "bandwidth_ops": [
            (decode_node(u), decode_node(v), float(amount))
            for u, v, amount in data["bandwidth_ops"]
        ],
        "compute_ops": [
            (decode_node(node), float(amount))
            for node, amount in data["compute_ops"]
        ],
        "hops": [
            (decode_node(u), decode_node(v)) for u, v in data["hops"]
        ],
        "servers": [decode_node(s) for s in data["servers"]],
    }


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------
def capture(
    engine: StreamEngine, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Serialize a running engine into one JSON-ready document.

    ``meta`` is the caller's rebuild recipe (workload name, topology,
    seeds, algorithm parameters) — the checkpoint layer stores it
    verbatim and :func:`restore_into` never reads it; the CLI uses it to
    reconstruct the engine before restoring.
    """
    network = engine.algorithm.network
    links = [
        [
            encode_node(state.endpoints[0]),
            encode_node(state.endpoints[1]),
            state.residual,
            state.up,
        ]
        for state in network.links()
    ]
    servers = [
        [encode_node(state.node), state.residual, state.up]
        for state in network.servers()
    ]
    heap = engine.heap_state()
    document: Dict[str, Any] = {
        "format": FORMAT,
        "version": VERSION,
        "meta": dict(meta or {}),
        "stream": engine.stream.state(),
        "stats": engine.stats.state(),
        "network": {"links": links, "servers": servers},
        "active": [
            _encode_active(record)
            for record in engine.active_records().values()
        ],
        "heap": {
            "entries": [
                [when, seq, encode_node(rid)]
                for when, seq, rid in heap["entries"]
            ],
            "next_seq": heap["next_seq"],
        },
        "algorithm": {
            "admitted_total": engine.algorithm.admitted_count,
            "rejected_total": engine.algorithm.rejected_count,
        },
        "obs": _obs_snapshot() if _obs_enabled() else None,
        "emitter": (
            engine.emitter.state() if engine.emitter is not None else None
        ),
    }
    return document


def save_checkpoint(
    path: str, engine: StreamEngine, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Atomically write :func:`capture`'s document to ``path``.

    The document lands in a temp file in the same directory first and is
    moved into place with ``os.replace``, so a crash mid-write cannot
    corrupt an existing checkpoint.  Returns the document.
    """
    document = capture(engine, meta)
    directory = os.path.dirname(os.path.abspath(path))
    handle, temp_path = tempfile.mkstemp(
        prefix=".checkpoint-", suffix=".json", dir=directory
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump(document, stream, sort_keys=True)
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    return document


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read and validate a checkpoint document."""
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is not valid JSON: {exc}"
        ) from exc
    if document.get("format") != FORMAT:
        raise CheckpointError(
            f"{path!r} is not a stream checkpoint "
            f"(format={document.get('format')!r})"
        )
    if document.get("version") != VERSION:
        raise CheckpointError(
            f"checkpoint version {document.get('version')!r} is not "
            f"supported (expected {VERSION})"
        )
    return document


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------
def restore_into(engine: StreamEngine, document: Dict[str, Any]) -> None:
    """Replay a checkpoint document into a freshly built engine.

    The engine must have been constructed exactly as the original run's
    was (same topology and ``build_sdn`` seed, same algorithm class and
    parameters, same stream family and parameters — the ``meta`` block
    records them) and must not have processed anything yet.  After this
    call the engine's next ``run()`` continues the original decision
    sequence bit-for-bit.
    """
    if engine.stats.processed:
        raise CheckpointError(
            "restore target must be a fresh engine (it has already "
            f"processed {engine.stats.processed} arrivals)"
        )
    network = engine.algorithm.network
    link_residuals = {}
    link_up = {}
    for u_enc, v_enc, residual, up in document["network"]["links"]:
        key = (decode_node(u_enc), decode_node(v_enc))
        link_residuals[key] = float(residual)
        link_up[key] = bool(up)
    server_residuals = {}
    server_up = {}
    for node_enc, residual, up in document["network"]["servers"]:
        node = decode_node(node_enc)
        server_residuals[node] = float(residual)
        server_up[node] = bool(up)
    try:
        network.restore(
            NetworkSnapshot(
                link_residuals=link_residuals,
                server_residuals=server_residuals,
            )
        )
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint topology does not match this network: {exc}"
        ) from exc
    # A freshly built network is all-up; only transitions are needed.
    for (u, v), up in link_up.items():
        if not up:
            network.fail_link(u, v)
    for node, up in server_up.items():
        if not up:
            network.fail_server(node)

    # Live admissions, replayed in admission order: reservations are
    # already reflected in the restored residuals, so each transaction
    # is *adopted* (no allocation happens) and handed to the algorithm;
    # controller rules are reinstalled from the recorded hops.
    for encoded in document["active"]:
        record = _decode_active(encoded)
        request = _decode_request(encoded["request"])
        transaction = AllocationTransaction.adopt(
            network,
            record["bandwidth_ops"],
            record["compute_ops"],
        )
        engine.algorithm.adopt_admission(request, transaction)
        if engine.controller is not None:
            engine.controller.install_tree(
                request.request_id,
                list(record["hops"]),
                list(record["servers"]),
            )
        engine.adopt_active(request.request_id, record)

    engine.restore_heap(
        {
            "entries": [
                [float(when), int(seq), decode_node(rid)]
                for when, seq, rid in document["heap"]["entries"]
            ],
            "next_seq": document["heap"]["next_seq"],
        }
    )
    engine.stream.restore(document["stream"])
    engine.stats.restore(document["stats"])
    # The base-class counters are restored in place: no public mutator
    # exists because nothing but a checkpoint may move them without a
    # decision.
    engine.algorithm._admitted_total = int(
        document["algorithm"]["admitted_total"]
    )
    engine.algorithm._rejected_total = int(
        document["algorithm"]["rejected_total"]
    )
    if document.get("obs") is not None and _obs_enabled():
        _obs_reset()
        _obs_merge(document["obs"])
    if engine.emitter is not None and document.get("emitter") is not None:
        engine.emitter.restore_state(document["emitter"])
