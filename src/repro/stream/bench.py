# repro-lint: disable-file=RL007 -- this module *reports* measured
# wall-clock runtime (sustained requests/second) as a benchmark result
# metric, the sanctioned exemption class; no decision path reads a clock.
"""The ``repro bench --target stream`` scale benchmark.

Proves the :class:`~repro.stream.engine.StreamEngine` memory contract at
scale and writes ``BENCH_stream.json``:

- **throughput**: a Poisson-churn ``Online_CP`` run on GÉANT, timed end
  to end (default 1,000,000 requests; ``--quick`` shrinks it for CI);
- **memory flatness**: the engine samples its own RSS every checkpoint
  window; the report compares the median of an early window against the
  median of the final window — a flat series means O(active-requests)
  memory, independent of how many requests have streamed past;
- **resume differential**: a smaller run is checkpointed mid-stream
  (through a JSON round-trip), resumed in a fresh engine, and its
  chained decision digest compared bit-for-bit against the
  straight-through run;
- **shard invariance**: a tiny sharded run executed with 1 worker and
  again with 2 workers must merge to the same digest.

The benchmark never asserts — it records.  CI gates live in
``.github/workflows`` and ``tests/stream``; this artifact is the
committed evidence behind them.
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Any, Dict, List, Optional

from repro.stream.checkpoint import capture, restore_into
from repro.stream.shard import StreamRunConfig, build_engine, run_sharded

__all__ = [
    "DEFAULT_STREAM_SCALE_REQUESTS",
    "QUICK_STREAM_SCALE_REQUESTS",
    "render_stream_scale_summary",
    "run_stream_scale_benchmark",
]

DEFAULT_STREAM_SCALE_REQUESTS = 1_000_000
QUICK_STREAM_SCALE_REQUESTS = 20_000
DEFAULT_SEED = 20170605  # ICDCS 2017

#: Number of RSS sample windows across the main run.
_RSS_WINDOWS = 50

#: Arrival rate for every sub-benchmark: ~200 concurrently held requests
#: on GÉANT — enough contention that all three rejection paths
#: (disconnected, tree_threshold, allocation_failed) fire, so the run
#: exercises the full decision surface rather than a pure admit stream.
_ARRIVAL_RATE = 5.0

#: Size of the resume-differential sub-run and its checkpoint boundary
#: (``--quick`` shrinks both 5x so the CI smoke run stays cheap).
_RESUME_REQUESTS = 4_000
_RESUME_BOUNDARY = 2_000
_QUICK_RESUME_REQUESTS = 800
_QUICK_RESUME_BOUNDARY = 400

#: Shard-invariance sub-run: shards × per-shard requests.
_SHARD_COUNT = 2
_SHARD_REQUESTS = 2_000
_QUICK_SHARD_REQUESTS = 400


def _rss_flatness(samples: List[List[float]]) -> Dict[str, Any]:
    """Early-vs-late median RSS over the ``[processed, rss_kb]`` series.

    The first quarter of the windows is discarded as warm-up (imports,
    allocator arena growth, the shortest-path cache filling its fixed
    slots); ``growth_ratio`` is the late-window median divided by the
    early-window median.  A leak that scales with stream length shows up
    as a ratio well above 1; a flat engine sits within allocator noise.
    """
    if len(samples) < 8:
        return {
            "windows": len(samples),
            "early_median_kb": None,
            "late_median_kb": None,
            "growth_ratio": None,
        }
    values = [rss for _, rss in samples]
    quarter = len(values) // 4
    early = values[quarter : 2 * quarter]
    late = values[-quarter:]
    early_median = statistics.median(early)
    late_median = statistics.median(late)
    return {
        "windows": len(samples),
        "early_median_kb": early_median,
        "late_median_kb": late_median,
        "growth_ratio": (
            late_median / early_median if early_median else None
        ),
    }


def _resume_differential(seed: int, quick: bool) -> Dict[str, Any]:
    """Straight-through vs kill-and-resume on a small GÉANT run.

    The checkpoint document goes through ``json.dumps``/``loads`` so the
    comparison exercises the real serialization path, not just in-memory
    object identity.
    """
    requests = _QUICK_RESUME_REQUESTS if quick else _RESUME_REQUESTS
    boundary = _QUICK_RESUME_BOUNDARY if quick else _RESUME_BOUNDARY
    config = StreamRunConfig(
        topology="geant",
        seed=seed,
        requests=requests,
        arrival_rate=_ARRIVAL_RATE,
    )
    straight = build_engine(config)
    straight.run()

    first = build_engine(config)
    first.run(max_events=boundary)
    document = json.loads(
        json.dumps(capture(first, meta=config.as_dict()))
    )
    resumed = build_engine(config)
    restore_into(resumed, document)
    resumed.run()

    return {
        "requests": requests,
        "checkpoint_at": boundary,
        "straight_digest": straight.stats.digest,
        "resumed_digest": resumed.stats.digest,
        "bit_identical": straight.stats.digest == resumed.stats.digest,
    }


def _shard_invariance(seed: int, quick: bool) -> Dict[str, Any]:
    """Merged digest of a sharded run at 1 worker vs 2 workers."""
    per_shard = _QUICK_SHARD_REQUESTS if quick else _SHARD_REQUESTS
    config = StreamRunConfig(
        topology="geant",
        seed=seed,
        requests=_SHARD_COUNT * per_shard,
        arrival_rate=_ARRIVAL_RATE,
    )
    serial = run_sharded(config, shards=_SHARD_COUNT, workers=1)
    pooled = run_sharded(config, shards=_SHARD_COUNT, workers=2)
    return {
        "shards": _SHARD_COUNT,
        "requests": config.requests,
        "workers_1_digest": serial.digest,
        "workers_2_digest": pooled.digest,
        "bit_identical": serial.digest == pooled.digest,
    }


def run_stream_scale_benchmark(
    output_path: str = "BENCH_stream.json",
    requests: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
) -> Dict[str, Any]:
    """Run the scale benchmark and write the JSON artifact.

    Args:
        output_path: where to write the artifact.
        requests: main-run stream length (default 1,000,000, or 20,000
            with ``quick``).
        seed: workload seed for every sub-benchmark.
        quick: CI smoke mode — shrinks the main run; the resume and
            shard differentials keep their (already small) sizes.
    """
    if requests is None:
        requests = (
            QUICK_STREAM_SCALE_REQUESTS
            if quick
            else DEFAULT_STREAM_SCALE_REQUESTS
        )
    config = StreamRunConfig(
        topology="geant",
        seed=seed,
        requests=requests,
        arrival_rate=_ARRIVAL_RATE,
    )
    sample_every = max(1, requests // _RSS_WINDOWS)
    engine = build_engine(config, checkpoint_every=sample_every)

    started = time.perf_counter()
    stats = engine.run()
    elapsed = time.perf_counter() - started

    payload: Dict[str, Any] = {
        "benchmark": "stream-scale",
        "quick": quick,
        "config": config.as_dict(),
        "requests": stats.processed,
        "elapsed_seconds": elapsed,
        "throughput_rps": stats.processed / elapsed if elapsed else None,
        "admitted": stats.admitted,
        "rejected": stats.rejected,
        "departed": stats.departed,
        "admission_ratio": stats.admission_ratio,
        "peak_active": stats.peak_active,
        "digest": stats.digest,
        "rss": {
            "sample_every": sample_every,
            "samples": stats.rss_samples,
            **_rss_flatness(stats.rss_samples),
        },
        "resume": _resume_differential(seed, quick),
        "shard_invariance": _shard_invariance(seed, quick),
    }
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def render_stream_scale_summary(payload: Dict[str, Any]) -> List[str]:
    """Human-readable lines for the CLI."""
    rss = payload["rss"]
    resume = payload["resume"]
    shard = payload["shard_invariance"]
    ratio = rss.get("growth_ratio")
    lines = [
        f"stream scale: {payload['requests']} requests on "
        f"{payload['config']['topology']} in "
        f"{payload['elapsed_seconds']:.1f}s "
        f"({payload['throughput_rps']:.0f} req/s)",
        f"  admitted {payload['admitted']}  rejected {payload['rejected']}"
        f"  departed {payload['departed']}"
        f"  peak active {payload['peak_active']}",
        (
            f"  rss: {rss['windows']} windows, early median "
            f"{rss['early_median_kb']:.0f} KiB, late median "
            f"{rss['late_median_kb']:.0f} KiB, growth x{ratio:.3f}"
            if ratio is not None
            else f"  rss: {rss['windows']} windows (too few for flatness)"
        ),
        f"  resume differential: "
        f"{'bit-identical' if resume['bit_identical'] else 'DIVERGED'} "
        f"(checkpoint at {resume['checkpoint_at']}/{resume['requests']})",
        f"  shard invariance: "
        f"{'bit-identical' if shard['bit_identical'] else 'DIVERGED'} "
        f"({shard['shards']} shards, workers 1 vs 2)",
    ]
    return lines
