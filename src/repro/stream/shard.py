"""Sharded stream runs: independent substreams across a process pool.

Online admission against *one shared capacitated network* is inherently
sequential — decision ``k`` depends on the residuals left by decisions
``1..k-1`` — so a single stream cannot be parallelized without changing
its answers.  What production deployments actually shard is the
*fleet*: each shard is an independent controller domain with its own
network replica and its own request substream.  This module models
exactly that:

- ``--shards S`` fixes the **workload structure**: the run is split into
  ``S`` independent substreams, shard ``i`` drawing from a seed derived
  arithmetically from the base seed (never ``hash()`` — string hashing
  is salted per process) over its own freshly provisioned network;
- ``--workers W`` fixes only the **process count** used to execute those
  substreams.  The determinism contract is *worker-count invariance*:
  for a fixed shard count, the merged result (stats, digests, telemetry
  registry) is bit-identical for every ``W`` — the shard count itself is
  a workload parameter, like a seed.

Results are merged **in shard order** (:func:`parallel_map` returns
submission order regardless of scheduling): counters and histograms add,
the merged digest chains the per-shard digests, so two merged runs are
equal iff every shard's full decision sequence was equal.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from repro.analysis.common import (
    build_random_network,
    build_real_network,
    calibrated_online_cp,
    make_sp_online,
)
from repro.core.online_base import OnlineAlgorithm
from repro.exceptions import SimulationError
from repro.network.controller import Controller
from repro.network.sdn import SDNetwork
from repro.obs.emitter import SnapshotEmitter
from repro.obs.window import FixedBucketHistogram
from repro.simulation.parallel import parallel_map
from repro.stream.engine import StreamEngine, StreamStats
from repro.stream.workloads import (
    WORKLOAD_FAMILIES,
    ArrivalStream,
    make_stream,
)

__all__ = [
    "ShardResult",
    "StreamRunConfig",
    "build_engine",
    "derive_shard_seed",
    "merge_stats_states",
    "run_sharded",
]

#: Real-topology names accepted by :attr:`StreamRunConfig.topology`
#: (anything else is parsed as ``gt_itm:<size>``).
_REAL_TOPOLOGIES = {"geant": "GEANT", "as1755": "AS1755", "as4755": "AS4755"}


@dataclass(frozen=True)
class StreamRunConfig:
    """A picklable, JSON-able recipe for one stream run.

    Everything a worker process (or a resumed run) needs to rebuild the
    exact engine: topology, provisioning seed, algorithm, workload
    family and its parameters.  Stored verbatim in checkpoint ``meta``.
    """

    topology: str = "geant"
    network_seed: int = 0
    algorithm: str = "online_cp"
    workload: str = "poisson"
    seed: int = 0
    requests: int = 10_000
    arrival_rate: float = 1.0
    mean_holding: float = 40.0
    controller: bool = False
    emit_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.requests < 0:
            raise SimulationError(
                f"requests must be >= 0, got {self.requests}"
            )
        if self.workload not in WORKLOAD_FAMILIES:
            raise SimulationError(
                f"unknown workload {self.workload!r}; "
                f"choose from {WORKLOAD_FAMILIES}"
            )
        if self.algorithm not in ("online_cp", "sp"):
            raise SimulationError(
                f"unknown algorithm {self.algorithm!r} "
                "(expected 'online_cp' or 'sp')"
            )

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (checkpoint meta / bench reports)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StreamRunConfig":
        """Rebuild from :meth:`as_dict` (ignores unknown keys)."""
        fields = {name for name in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in fields})


def build_network(config: StreamRunConfig) -> SDNetwork:
    """Provision the configured topology at full capacity."""
    name = config.topology.lower()
    if name in _REAL_TOPOLOGIES:
        return build_real_network(_REAL_TOPOLOGIES[name], config.network_seed)
    if name.startswith("gt_itm:"):
        try:
            size = int(name.split(":", 1)[1])
        except ValueError:
            raise SimulationError(
                f"bad gt_itm topology spec {config.topology!r} "
                "(expected 'gt_itm:<size>')"
            ) from None
        return build_random_network(size, config.network_seed)
    raise SimulationError(
        f"unknown topology {config.topology!r} "
        f"(expected one of {sorted(_REAL_TOPOLOGIES)} or 'gt_itm:<size>')"
    )


def build_algorithm(
    config: StreamRunConfig, network: SDNetwork
) -> OnlineAlgorithm:
    """The configured online algorithm over ``network``."""
    if config.algorithm == "sp":
        return make_sp_online(network)
    return calibrated_online_cp(network)


def build_engine(
    config: StreamRunConfig,
    seed: Optional[int] = None,
    limit: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_sink: Optional[Any] = None,
    emitter: Optional[SnapshotEmitter] = None,
) -> StreamEngine:
    """Assemble a fresh engine from a run config.

    ``seed``/``limit`` override the config's workload seed and request
    count (the shard runner passes derived values); an ``emitter`` is
    created from ``config.emit_every`` when not supplied.
    """
    network = build_network(config)
    algorithm = build_algorithm(config, network)
    stream: ArrivalStream = make_stream(
        config.workload,
        network.graph,
        seed=config.seed if seed is None else seed,
        limit=config.requests if limit is None else limit,
        arrival_rate=config.arrival_rate,
        mean_holding=config.mean_holding,
    )
    if emitter is None and config.emit_every is not None:
        emitter = SnapshotEmitter(every_requests=config.emit_every)
    return StreamEngine(
        algorithm,
        stream,
        controller=Controller() if config.controller else None,
        emitter=emitter,
        checkpoint_every=checkpoint_every,
        checkpoint_sink=checkpoint_sink,
    )


def derive_shard_seed(base_seed: int, shard: int) -> int:
    """The workload seed of shard ``shard``.

    Pure arithmetic on purpose: ``hash()`` of strings is salted per
    process (``PYTHONHASHSEED``), which would make shard workloads differ
    between runs.  The multiplier separates base seeds; the ``+1`` keeps
    shard 0 of seed 0 distinct from the unsharded seed-0 stream.
    """
    return base_seed * 100_003 + shard * 97 + 1


def _shard_counts(total: int, shards: int) -> List[int]:
    """Split ``total`` requests across shards (earlier shards get +1)."""
    base, extra = divmod(total, shards)
    return [base + (1 if index < extra else 0) for index in range(shards)]


def _run_shard_point(
    config_data: Dict[str, Any], shard: int, count: int
) -> Dict[str, Any]:
    """Pool point function: run one shard to completion.

    Module-level and dict-argumented so it pickles under spawn.  Runs on
    a clean telemetry registry (``isolate_registry`` pooled semantics),
    so the per-shard emitter's payloads are a function of the shard
    alone.
    """
    config = StreamRunConfig.from_dict(config_data)
    engine = build_engine(
        config, seed=derive_shard_seed(config.seed, shard), limit=count
    )
    engine.run()
    final_payload = None
    if engine.emitter is not None:
        final_payload = engine.emitter.finish()
    return {
        "shard": shard,
        "requests": count,
        "stats": engine.stats.state(),
        "final_payload": final_payload,
    }


def merge_stats_states(states: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard :meth:`StreamStats.state` dicts, in shard order.

    Counters and rejection histograms add; cost histograms merge bucket-
    wise (integer counts — order-independent); ``last_time`` takes the
    max; ``peak_active`` sums (shards run concurrently, so the fleet-wide
    peak is at most the sum of per-shard peaks).  The merged ``digest``
    chains the shard digests in shard order, so it commits to every
    shard's full decision sequence.  Per-process serieses
    (``rss_samples``, ``recent``) stay per-shard and are dropped here.
    """
    merged = StreamStats()
    digest = ""
    for state in states:
        merged.processed += int(state["processed"])
        merged.admitted += int(state["admitted"])
        merged.rejected += int(state["rejected"])
        merged.departed += int(state["departed"])
        merged.peak_active += int(state["peak_active"])
        if float(state["last_time"]) > merged.last_time:
            merged.last_time = float(state["last_time"])
        for reason, count in state["rejections"].items():
            merged.rejections[reason] = (
                merged.rejections.get(reason, 0) + int(count)
            )
        merged.cost_histogram.merge(state["cost_histogram"])
        digest = hashlib.sha256(
            f"{digest}|{state['digest']}".encode("utf-8")
        ).hexdigest()
    result = merged.state()
    result["digest"] = digest
    del result["recent"]
    del result["rss_samples"]
    result["admission_ratio"] = merged.admission_ratio
    return result


@dataclass(frozen=True)
class ShardResult:
    """The outcome of a sharded run: per-shard detail + ordered merge."""

    config: StreamRunConfig
    shards: List[Dict[str, Any]]
    merged: Dict[str, Any]

    @property
    def digest(self) -> str:
        """The shard-order-chained merged decision digest."""
        return str(self.merged["digest"])


def run_sharded(
    config: StreamRunConfig,
    shards: int,
    workers: Optional[int] = None,
) -> ShardResult:
    """Run ``shards`` independent substreams and merge in shard order.

    ``config.requests`` is split as evenly as possible across the
    shards; each shard gets its own network replica and a seed derived
    by :func:`derive_shard_seed`.  ``workers`` only controls execution
    parallelism — the returned result is bit-identical for every worker
    count (including the serial fallback), which is the contract the
    stream acceptance test locks.
    """
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    counts = _shard_counts(config.requests, shards)
    grid = [
        (config.as_dict(), shard, counts[shard]) for shard in range(shards)
    ]
    results = parallel_map(
        _run_shard_point, grid, workers=workers, isolate_registry=True
    )
    return ShardResult(
        config=config,
        shards=results,
        merged=merge_stats_states([r["stats"] for r in results]),
    )
