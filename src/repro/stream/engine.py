"""StreamEngine: fold an unbounded arrival stream in O(active) memory.

:func:`repro.simulation.run_online_with_departures` replays a
*materialized*, pre-sorted event list; a production controller faces an
endless arrival iterator whose departures are only known when each
request is admitted.  :class:`StreamEngine` closes that gap:

- departures are scheduled in a priority queue (``heapq``) keyed by
  ``(departure time, admission order)`` and drained before each arrival,
  so memory for pending departures is O(active requests), not O(stream);
- per-request statistics are *bounded*: counters, a fixed-bucket cost
  histogram, a ring of recent decisions, and a **chained SHA-256
  decision digest** that fingerprints the entire admission series in
  O(1) memory — two runs produced the same decisions, in the same
  order, with the same costs, iff their digests match;
- every arrival ticks an optional
  :class:`~repro.obs.emitter.SnapshotEmitter`, exactly like the engine
  runners, so delta telemetry streams out at the emitter's cadence;
- every ``checkpoint_every`` arrivals the engine invokes a checkpoint
  sink (see :mod:`repro.stream.checkpoint`) and samples its own RSS, so
  a long run leaves both a resume point and a memory-flatness series
  behind.

The engine never reads a wall clock: simulated time comes from the
stream, and the decision sequence is a pure function of (network,
algorithm, stream) — which is what the checkpoint layer's bit-identity
guarantee is built on.
"""

from __future__ import annotations

import hashlib
import heapq
import os
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Hashable,
    List,
    Optional,
    Tuple,
)

from repro.core.online_base import OnlineAlgorithm
from repro.exceptions import SimulationError
from repro.network.controller import Controller
from repro.obs import (
    DEFAULT_COST_BOUNDS as _COST_BOUNDS,
    enabled as _obs_enabled,
    hist as _obs_hist,
    inc as _obs_inc,
    request_scope as _obs_request,
    span as _obs_span,
    trace_instant as _obs_instant,
)
from repro.obs.emitter import SnapshotEmitter
from repro.obs.window import FixedBucketHistogram
from repro.simulation.engine import _install_admitted
from repro.stream.workloads import Arrival, ArrivalStream

__all__ = ["StreamEngine", "StreamStats", "sample_rss_kb"]


def sample_rss_kb() -> float:
    """Current resident set size in KiB.

    Reads ``/proc/self/statm`` (instantaneous RSS, Linux); falls back to
    ``resource.getrusage`` peak RSS elsewhere.  Diagnostics only — never
    a control input.
    """
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / 1024.0
    except (OSError, IndexError, ValueError):
        import resource

        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class StreamStats:
    """Bounded rolling statistics of a stream run.

    Everything here is O(1) in the stream length except ``rss_samples``
    (one entry per checkpoint/RSS window — hundreds of entries for a
    million-request run) and the fixed-size ``recent`` ring.

    The ``digest`` is a chained SHA-256 over the decision sequence:
    each decision rehashes ``digest || request_id || admitted || reason
    || cost``, so the final hex string commits to the entire admission
    series — order, outcomes, and exact float costs — in constant
    memory.  It is the equality witness of the checkpoint layer's
    resume-vs-straight-through differential and of the shard layer's
    worker-count invariance.
    """

    __slots__ = (
        "processed",
        "admitted",
        "rejected",
        "departed",
        "peak_active",
        "last_time",
        "digest",
        "rejections",
        "cost_histogram",
        "recent",
        "rss_samples",
    )

    RECENT_SIZE = 64

    def __init__(self) -> None:
        self.processed = 0
        self.admitted = 0
        self.rejected = 0
        self.departed = 0
        self.peak_active = 0
        self.last_time = 0.0
        self.digest = ""
        self.rejections: Dict[str, int] = {}
        self.cost_histogram = FixedBucketHistogram(_COST_BOUNDS)
        self.recent: Deque[Tuple[str, bool, Optional[str]]] = deque(
            maxlen=self.RECENT_SIZE
        )
        self.rss_samples: List[List[float]] = []

    @property
    def admission_ratio(self) -> float:
        """Admitted / processed (0 when nothing was processed)."""
        return self.admitted / self.processed if self.processed else 0.0

    def record_decision(
        self,
        request_id: Hashable,
        admitted: bool,
        reason: Optional[str],
        cost: Optional[float],
    ) -> None:
        """Fold one admission decision into the rolling aggregates."""
        self.processed += 1
        payload = (
            f"{self.digest}|{request_id!r}|{int(admitted)}|"
            f"{reason or ''}|{cost!r}"
        )
        self.digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        self.recent.append((repr(request_id), admitted, reason))
        if admitted:
            self.admitted += 1
            assert cost is not None
            self.cost_histogram.observe(cost)
        else:
            self.rejected += 1
            if reason is not None:
                self.rejections[reason] = self.rejections.get(reason, 0) + 1

    def sample_rss(self) -> None:
        """Append one ``[processed, rss_kb]`` point to the memory series."""
        self.rss_samples.append([float(self.processed), sample_rss_kb()])

    # -- checkpoint support ---------------------------------------------
    def state(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of every field."""
        return {
            "processed": self.processed,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "departed": self.departed,
            "peak_active": self.peak_active,
            "last_time": self.last_time,
            "digest": self.digest,
            "rejections": dict(self.rejections),
            "cost_histogram": self.cost_histogram.as_dict(),
            "recent": [list(entry) for entry in self.recent],
            "rss_samples": [list(point) for point in self.rss_samples],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Reset every field to a :meth:`state` snapshot."""
        self.processed = int(state["processed"])
        self.admitted = int(state["admitted"])
        self.rejected = int(state["rejected"])
        self.departed = int(state["departed"])
        self.peak_active = int(state["peak_active"])
        self.last_time = float(state["last_time"])
        self.digest = str(state["digest"])
        self.rejections = {
            str(k): int(v) for k, v in state["rejections"].items()
        }
        self.cost_histogram = FixedBucketHistogram(
            state["cost_histogram"]["bounds"]
        )
        self.cost_histogram.merge(state["cost_histogram"])
        self.recent = deque(
            (
                (str(rid), bool(admitted), reason)
                for rid, admitted, reason in state["recent"]
            ),
            maxlen=self.RECENT_SIZE,
        )
        self.rss_samples = [
            [float(a), float(b)] for a, b in state["rss_samples"]
        ]

    def as_dict(self) -> Dict[str, Any]:
        """Reporting form (same shape as :meth:`state`, plus ratios)."""
        data = self.state()
        data["admission_ratio"] = self.admission_ratio
        return data

    def __repr__(self) -> str:
        return (
            f"StreamStats(processed={self.processed}, "
            f"admitted={self.admitted}, rejected={self.rejected}, "
            f"departed={self.departed})"
        )


class StreamEngine:
    """Drives an online algorithm over an :class:`ArrivalStream`.

    Args:
        algorithm: the online admission algorithm (its
            ``retain_decisions`` flag is switched off — an unbounded
            stream cannot afford the decision history).
        stream: the arrival source.
        controller: optional data plane; admitted trees are installed
            and departing requests uninstalled, exactly as in
            :func:`repro.simulation.run_online_with_departures`.
        emitter: optional snapshot emitter, ticked once per arrival.
        checkpoint_every: invoke ``checkpoint_sink`` (and sample RSS)
            after every this-many arrivals (``None`` disables both).
        checkpoint_sink: callable receiving this engine at each
            checkpoint boundary — typically ``lambda engine:
            save_checkpoint(path, engine)``.

    Event ordering matches the sorted-event-list semantics of
    :func:`~repro.simulation.run_online_with_departures`: all departures
    with ``time <= arrival.time`` are drained *before* the arrival is
    processed (departures precede coincident arrivals), and pending
    departures at equal times drain in admission order.
    """

    def __init__(
        self,
        algorithm: OnlineAlgorithm,
        stream: ArrivalStream,
        controller: Optional[Controller] = None,
        emitter: Optional[SnapshotEmitter] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_sink: Optional[Callable[["StreamEngine"], None]] = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise SimulationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.algorithm = algorithm
        self.stream = stream
        self.controller = controller
        self.emitter = emitter
        self.checkpoint_every = checkpoint_every
        self.checkpoint_sink = checkpoint_sink
        self.stats = StreamStats()
        algorithm.retain_decisions = False
        #: (departure time, admission seq, request id) min-heap.
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._heap_seq = 0
        #: request id -> serialized install record (see _active_record):
        #: everything a checkpoint needs to rebuild the admission, kept
        #: engine-side because restored admissions have no tree object.
        self._active: Dict[Hashable, Dict[str, Any]] = {}
        self._since_checkpoint = 0

    # -- introspection ---------------------------------------------------
    @property
    def active_count(self) -> int:
        """Requests currently holding resources."""
        return len(self._active)

    @property
    def pending_departures(self) -> int:
        """Scheduled departures not yet drained."""
        return len(self._heap)

    # -- event processing ------------------------------------------------
    def _drain_departures(self, up_to: float) -> None:
        """Release every admitted request departing at or before ``up_to``."""
        heap = self._heap
        while heap and heap[0][0] <= up_to:
            when, _, request_id = heapq.heappop(heap)
            record = self._active.pop(request_id, None)
            if record is None:
                continue
            _obs_inc("engine.departures")
            with _obs_request(request_id):
                self.algorithm.depart(request_id)
                if self.controller is not None:
                    self.controller.uninstall(request_id)
                _obs_instant("engine.depart")
            self.stats.departed += 1
            if when > self.stats.last_time:
                self.stats.last_time = when

    def _active_record(self, arrival: Arrival, decision) -> Dict[str, Any]:
        """The JSON shape of one live admission (checkpoint payload)."""
        transaction = decision.transaction
        tree = decision.tree
        request = arrival.request
        return {
            "request": {
                "request_id": request.request_id,
                "source": request.source,
                "destinations": sorted(request.destinations, key=repr),
                "bandwidth": request.bandwidth,
                "chain": [kind.value for kind in request.chain.kinds],
            },
            "departs_at": (
                arrival.time + arrival.holding_time
                if arrival.holding_time is not None
                else None
            ),
            "bandwidth_ops": [
                [u, v, amount]
                for u, v, amount in transaction.bandwidth_reservations
            ],
            "compute_ops": [
                [node, amount]
                for node, amount in transaction.compute_reservations
            ],
            "hops": [[u, v] for u, v in tree.routing_hops()],
            "servers": list(tree.servers),
        }

    def process_one(self, arrival: Arrival) -> bool:
        """Process one arrival (departures first); returns admitted."""
        self._drain_departures(arrival.time)
        request = arrival.request
        with _obs_request(request.request_id):
            decision = self.algorithm.process(request)
            if decision.admitted and self.controller is not None:
                _install_admitted(self.algorithm, self.controller, decision)
            if decision.admitted:
                assert decision.tree is not None
                cost = decision.tree.total_cost
                if _obs_enabled():
                    _obs_hist("engine.tree_cost", cost, _COST_BOUNDS)
                _obs_instant("engine.admit", cost=cost)
                self.stats.record_decision(
                    request.request_id, True, None, cost
                )
                self._active[request.request_id] = self._active_record(
                    arrival, decision
                )
                if arrival.holding_time is not None:
                    heapq.heappush(
                        self._heap,
                        (
                            arrival.time + arrival.holding_time,
                            self._heap_seq,
                            request.request_id,
                        ),
                    )
                    self._heap_seq += 1
                if len(self._active) > self.stats.peak_active:
                    self.stats.peak_active = len(self._active)
            else:
                reason = (
                    decision.reason.value
                    if decision.reason is not None
                    else None
                )
                _obs_instant("engine.reject", reason=reason)
                self.stats.record_decision(
                    request.request_id, False, reason, None
                )
        if arrival.time > self.stats.last_time:
            self.stats.last_time = arrival.time
        if self.emitter is not None:
            self.emitter.tick()
        return decision.admitted

    def run(
        self,
        max_events: Optional[int] = None,
        drain: bool = False,
    ) -> StreamStats:
        """Fold the stream through the algorithm.

        Args:
            max_events: stop after this many *additional* arrivals
                (``None`` runs to stream exhaustion — the stream's own
                ``limit`` must then be finite).
            drain: after the last arrival, also release every still-
                scheduled departure (matches replaying a fully sorted
                event list whose departures trail the final arrival).

        Returns the engine's :class:`StreamStats` (also available as
        ``self.stats``; ``run`` may be called again to continue).
        """
        handled = 0
        with _obs_span("stream_run"):
            while max_events is None or handled < max_events:
                arrival = self.stream.next_arrival()
                if arrival is None:
                    break
                self.process_one(arrival)
                handled += 1
                if self.checkpoint_every is not None:
                    self._since_checkpoint += 1
                    if self._since_checkpoint >= self.checkpoint_every:
                        self._since_checkpoint = 0
                        self.stats.sample_rss()
                        if self.checkpoint_sink is not None:
                            self.checkpoint_sink(self)
            if drain:
                self._drain_departures(float("inf"))
        return self.stats

    # -- checkpoint support ----------------------------------------------
    def heap_state(self) -> Dict[str, Any]:
        """The departure queue as JSON (heap invariant preserved)."""
        return {
            "entries": [[when, seq, rid] for when, seq, rid in self._heap],
            "next_seq": self._heap_seq,
        }

    def restore_heap(self, state: Dict[str, Any]) -> None:
        """Rebuild the departure queue from :meth:`heap_state`.

        Entries must already carry decoded request ids (the checkpoint
        layer owns the JSON node codec).
        """
        self._heap = [
            (float(when), int(seq), rid)
            for when, seq, rid in state["entries"]
        ]
        heapq.heapify(self._heap)
        self._heap_seq = int(state["next_seq"])

    def active_records(self) -> Dict[Hashable, Dict[str, Any]]:
        """Live admission records, keyed by request id (insertion order
        is admission order — the restore layer replays them in order)."""
        return dict(self._active)

    def adopt_active(
        self, request_id: Hashable, record: Dict[str, Any]
    ) -> None:
        """Re-register one restored admission record (restore layer)."""
        if request_id in self._active:
            raise SimulationError(
                f"request {request_id!r} is already active"
            )
        self._active[request_id] = record
