"""Seeded, clock-free arrival streams for unbounded online runs.

The figure workloads materialize a request list before the run starts;
an admission controller that serves millions of requests cannot.  Every
stream here is a *pull-based* iterator: each ``next_arrival()`` call
draws exactly one arrival (request body, simulated arrival time, holding
time) from an explicitly seeded RNG, so

- memory never depends on how many requests the stream will produce,
- the sequence is a pure function of the construction parameters (no
  wall-clock reads anywhere — "time" below is always *simulated* time),
- the drawing state between two arrivals is a small JSON-serializable
  dict (:meth:`ArrivalStream.state`), which is what makes mid-stream
  checkpoint/resume bit-identical: all intermediate draws (e.g. the
  rejected candidates of a thinning loop) happen *inside* one
  ``next_arrival()`` call, so a snapshot taken between arrivals never
  captures a half-finished draw.

Families:

- :class:`PoissonStream` — stationary Poisson arrivals, exponential
  holding times (the churn model of the extension experiments).
- :class:`DiurnalStream` — non-homogeneous Poisson with a sinusoidal
  day/night rate, sampled by thinning (acceptance-rejection against the
  peak rate).
- :class:`FlashCrowdStream` — a base Poisson rate multiplied during
  deterministically scheduled flash episodes, also sampled by thinning.
- :class:`SequenceStream` / :class:`FigureStream` — adapters exposing a
  materialized request list or a :class:`~repro.workload.generator.
  RequestGenerator` as the paper's one-by-one adversarial model
  (unit-spaced arrivals, no departures).
- :class:`ParetoGroupGenerator` — a request generator whose multicast
  group sizes are heavy-tailed (bounded Pareto) instead of uniform.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.exceptions import RequestError
from repro.graph.graph import Graph
from repro.nfv.service_chain import random_service_chain
from repro.workload.generator import RequestGenerator, WorkloadConfig
from repro.workload.request import MulticastRequest

__all__ = [
    "Arrival",
    "ArrivalStream",
    "DiurnalStream",
    "FigureStream",
    "FlashCrowdStream",
    "ParetoGroupGenerator",
    "PoissonStream",
    "SequenceStream",
    "WORKLOAD_FAMILIES",
    "bounded_pareto",
    "make_stream",
]


@dataclass(frozen=True)
class Arrival:
    """One arrival event of a stream.

    Attributes:
        time: simulated arrival instant (non-decreasing within a stream).
        request: the request body.
        holding_time: residence time of the request if admitted; ``None``
            means the request never departs (the paper's one-by-one
            model).
    """

    time: float
    request: MulticastRequest
    holding_time: Optional[float]


class ArrivalStream(ABC):
    """A seeded, restartable source of :class:`Arrival` events.

    Subclasses draw one arrival per :meth:`next_arrival` call and keep
    *all* drawing state in plain attributes covered by :meth:`state` /
    :meth:`restore` — never in a generator frame — so a stream can be
    snapshotted between any two arrivals and resumed bit-identically in
    a fresh process.

    ``limit`` bounds how many arrivals the stream yields (``None`` means
    unbounded); ``produced`` counts arrivals already yielded and is part
    of the serialized state, so a restored stream honours the original
    limit.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 0:
            raise RequestError(f"limit must be >= 0, got {limit}")
        self.limit = limit
        self.produced = 0
        self.clock = 0.0

    # -- drawing --------------------------------------------------------
    @abstractmethod
    def _draw(self) -> Optional[Arrival]:
        """Draw the next arrival (limit already checked), or ``None``."""

    def next_arrival(self) -> Optional[Arrival]:
        """The next arrival, or ``None`` once the limit is reached."""
        if self.limit is not None and self.produced >= self.limit:
            return None
        arrival = self._draw()
        if arrival is not None:
            self.produced += 1
            self.clock = arrival.time
        return arrival

    def __iter__(self) -> Iterator[Arrival]:
        while True:
            arrival = self.next_arrival()
            if arrival is None:
                return
            yield arrival

    # -- checkpoint support ---------------------------------------------
    def state(self) -> dict:
        """JSON-serializable drawing state (extended by subclasses)."""
        return {"produced": self.produced, "clock": self.clock}

    def restore(self, state: dict) -> None:
        """Resume drawing from a :meth:`state` snapshot."""
        self.produced = int(state["produced"])
        self.clock = float(state["clock"])


def _rng_state(rng: random.Random) -> list:
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def _set_rng_state(rng: random.Random, state: Sequence) -> None:
    version, internal, gauss_next = state
    rng.setstate((version, tuple(internal), gauss_next))


class PoissonStream(ArrivalStream):
    """Stationary Poisson arrivals with exponential holding times.

    The stream-shaped equivalent of :func:`repro.workload.arrivals.
    poisson_process`: inter-arrival gaps are ``Exp(rate)``, holding times
    ``Exp(1/mean_holding)``, and request bodies come from the wrapped
    :class:`~repro.workload.generator.RequestGenerator` — but nothing is
    materialized, so ``limit=None`` runs forever in O(1) memory.

    The timing RNG is separate from the generator's request RNG; both
    are part of the serialized state.
    """

    def __init__(
        self,
        generator: RequestGenerator,
        arrival_rate: float,
        mean_holding: float,
        seed: int = 0,
        limit: Optional[int] = None,
    ) -> None:
        super().__init__(limit)
        if arrival_rate <= 0:
            raise RequestError(f"arrival_rate must be positive: {arrival_rate}")
        if mean_holding <= 0:
            raise RequestError(f"mean_holding must be positive: {mean_holding}")
        self.generator = generator
        self.arrival_rate = arrival_rate
        self.mean_holding = mean_holding
        self._timing = random.Random(seed)

    def _draw(self) -> Optional[Arrival]:
        self.clock += self._timing.expovariate(self.arrival_rate)
        holding = self._timing.expovariate(1.0 / self.mean_holding)
        return Arrival(self.clock, self.generator.next_request(), holding)

    def state(self) -> dict:
        base = super().state()
        base["timing_rng"] = _rng_state(self._timing)
        base["generator"] = self.generator.state()
        return base

    def restore(self, state: dict) -> None:
        super().restore(state)
        _set_rng_state(self._timing, state["timing_rng"])
        self.generator.restore(state["generator"])


class _ThinnedStream(ArrivalStream):
    """Shared thinning loop for non-homogeneous Poisson streams.

    Candidate arrivals are generated at the subclass's ceiling rate and
    accepted with probability ``rate(t) / ceiling`` (Lewis–Shedler
    acceptance-rejection).  All candidate draws — accepted and rejected —
    happen inside one :meth:`_draw` call, so snapshots between arrivals
    never split a thinning loop.
    """

    def __init__(
        self,
        generator: RequestGenerator,
        mean_holding: float,
        seed: int,
        limit: Optional[int],
    ) -> None:
        super().__init__(limit)
        if mean_holding <= 0:
            raise RequestError(f"mean_holding must be positive: {mean_holding}")
        self.generator = generator
        self.mean_holding = mean_holding
        self._timing = random.Random(seed)

    def _rate(self, time: float) -> float:
        raise NotImplementedError

    def _ceiling(self) -> float:
        raise NotImplementedError

    def _draw(self) -> Optional[Arrival]:
        ceiling = self._ceiling()
        clock = self.clock
        while True:
            clock += self._timing.expovariate(ceiling)
            if self._timing.random() * ceiling <= self._rate(clock):
                break
        self.clock = clock
        holding = self._timing.expovariate(1.0 / self.mean_holding)
        return Arrival(clock, self.generator.next_request(), holding)

    def state(self) -> dict:
        base = super().state()
        base["timing_rng"] = _rng_state(self._timing)
        base["generator"] = self.generator.state()
        return base

    def restore(self, state: dict) -> None:
        super().restore(state)
        _set_rng_state(self._timing, state["timing_rng"])
        self.generator.restore(state["generator"])


class DiurnalStream(_ThinnedStream):
    """Sinusoidal day/night load: a non-homogeneous Poisson process.

    The instantaneous rate is::

        rate(t) = base + (peak - base) * 0.5 * (1 - cos(2πt / period))

    i.e. troughs at ``t = 0, period, ...`` (rate = ``base``) and crests
    at half-period (rate = ``peak``).  Sampled by thinning against the
    peak rate.
    """

    def __init__(
        self,
        generator: RequestGenerator,
        base_rate: float,
        peak_rate: float,
        period: float,
        mean_holding: float,
        seed: int = 0,
        limit: Optional[int] = None,
    ) -> None:
        super().__init__(generator, mean_holding, seed, limit)
        if not 0 < base_rate <= peak_rate:
            raise RequestError(
                f"need 0 < base_rate <= peak_rate, got "
                f"({base_rate}, {peak_rate})"
            )
        if period <= 0:
            raise RequestError(f"period must be positive: {period}")
        self.base_rate = base_rate
        self.peak_rate = peak_rate
        self.period = period

    def _rate(self, time: float) -> float:
        swing = (self.peak_rate - self.base_rate) * 0.5
        return self.base_rate + swing * (
            1.0 - math.cos(2.0 * math.pi * time / self.period)
        )

    def _ceiling(self) -> float:
        return self.peak_rate


class FlashCrowdStream(_ThinnedStream):
    """A base Poisson rate with deterministically scheduled flash crowds.

    Episodes start at ``first_episode + k * episode_interval`` for
    ``k = 0, 1, 2, ...`` and last ``episode_duration``; inside an episode
    the rate is ``base_rate * multiplier``, outside it is ``base_rate``.
    The episode schedule is part of the construction parameters, not a
    random draw — two streams with equal parameters see flash crowds at
    exactly the same simulated instants.
    """

    def __init__(
        self,
        generator: RequestGenerator,
        base_rate: float,
        multiplier: float,
        episode_interval: float,
        episode_duration: float,
        mean_holding: float,
        first_episode: float = 0.0,
        seed: int = 0,
        limit: Optional[int] = None,
    ) -> None:
        super().__init__(generator, mean_holding, seed, limit)
        if base_rate <= 0:
            raise RequestError(f"base_rate must be positive: {base_rate}")
        if multiplier < 1.0:
            raise RequestError(f"multiplier must be >= 1, got {multiplier}")
        if not 0 < episode_duration <= episode_interval:
            raise RequestError(
                f"need 0 < episode_duration <= episode_interval, got "
                f"({episode_duration}, {episode_interval})"
            )
        if first_episode < 0:
            raise RequestError(
                f"first_episode must be >= 0, got {first_episode}"
            )
        self.base_rate = base_rate
        self.multiplier = multiplier
        self.episode_interval = episode_interval
        self.episode_duration = episode_duration
        self.first_episode = first_episode

    def in_episode(self, time: float) -> bool:
        """Whether ``time`` falls inside a flash-crowd episode."""
        if time < self.first_episode:
            return False
        phase = (time - self.first_episode) % self.episode_interval
        return phase < self.episode_duration

    def _rate(self, time: float) -> float:
        if self.in_episode(time):
            return self.base_rate * self.multiplier
        return self.base_rate

    def _ceiling(self) -> float:
        return self.base_rate * self.multiplier


class SequenceStream(ArrivalStream):
    """A materialized request list as a stream (the paper's model).

    Arrivals are unit-spaced and never depart; drawing state is just an
    index, so checkpoint/restore works as long as the resuming process
    rebuilds the same list (same generator seed / figure series).
    """

    def __init__(
        self,
        requests: Sequence[MulticastRequest],
        spacing: float = 1.0,
        holding_time: Optional[float] = None,
    ) -> None:
        super().__init__(limit=len(requests))
        if spacing <= 0:
            raise RequestError(f"spacing must be positive: {spacing}")
        self._requests = list(requests)
        self.spacing = spacing
        self.holding_time = holding_time

    def _draw(self) -> Optional[Arrival]:
        if self.produced >= len(self._requests):
            return None
        return Arrival(
            self.produced * self.spacing,
            self._requests[self.produced],
            self.holding_time,
        )


class FigureStream(ArrivalStream):
    """A :class:`RequestGenerator` as a one-by-one adversarial stream.

    The lazy equivalent of ``generator.generate(n)`` + unit-spaced
    arrivals: request bodies are drawn on demand, nothing is
    materialized, and ``holding_time=None`` keeps the paper's
    no-departure semantics (pass a positive ``holding_time`` for a
    fixed-residence churn variant).
    """

    def __init__(
        self,
        generator: RequestGenerator,
        limit: Optional[int] = None,
        spacing: float = 1.0,
        holding_time: Optional[float] = None,
    ) -> None:
        super().__init__(limit)
        if spacing <= 0:
            raise RequestError(f"spacing must be positive: {spacing}")
        if holding_time is not None and holding_time <= 0:
            raise RequestError(
                f"holding_time must be positive: {holding_time}"
            )
        self.generator = generator
        self.spacing = spacing
        self.holding_time = holding_time

    def _draw(self) -> Optional[Arrival]:
        return Arrival(
            self.produced * self.spacing,
            self.generator.next_request(),
            self.holding_time,
        )

    def state(self) -> dict:
        base = super().state()
        base["generator"] = self.generator.state()
        return base

    def restore(self, state: dict) -> None:
        super().restore(state)
        self.generator.restore(state["generator"])


def bounded_pareto(
    rng: random.Random, alpha: float, low: int, high: int
) -> int:
    """Draw an integer from a bounded Pareto distribution on [low, high].

    Inverse-CDF sampling of the continuous bounded Pareto
    ``F⁻¹(u) = L / (1 − u·(1 − (L/H)^α))^(1/α)`` followed by a floor,
    clamped to the bounds.  Small ``alpha`` (≈1) gives a heavy tail —
    most draws near ``low`` with occasional draws near ``high``.
    """
    if alpha <= 0:
        raise RequestError(f"alpha must be positive: {alpha}")
    if not 1 <= low <= high:
        raise RequestError(f"need 1 <= low <= high, got ({low}, {high})")
    if low == high:
        return low
    u = rng.random()
    ratio = (low / high) ** alpha
    value = low / (1.0 - u * (1.0 - ratio)) ** (1.0 / alpha)
    return max(low, min(int(value), high))


class ParetoGroupGenerator(RequestGenerator):
    """Request bodies with heavy-tailed (bounded Pareto) group sizes.

    The uniform destination-count draw of :class:`RequestGenerator` is
    replaced by a bounded Pareto draw on ``[min_group, max_group]``:
    most requests are small multicasts, a heavy tail are near-broadcast
    groups — the group-size shape observed in IPTV / streaming traces.
    All other fields (source, bandwidth, chain) keep the paper's
    distributions, and the generator inherits ``state()/restore()``
    unchanged (one RNG drives every draw).
    """

    def __init__(
        self,
        graph: Graph,
        config: Optional[WorkloadConfig] = None,
        alpha: float = 1.2,
        min_group: int = 1,
        max_group: Optional[int] = None,
    ) -> None:
        super().__init__(graph, config)
        cap = len(self._nodes) - 1
        if max_group is None:
            max_group = cap
        if not 1 <= min_group <= max_group <= cap:
            raise RequestError(
                f"need 1 <= min_group <= max_group <= |V|-1, got "
                f"({min_group}, {max_group}, cap {cap})"
            )
        if alpha <= 0:
            raise RequestError(f"alpha must be positive: {alpha}")
        self.alpha = alpha
        self.min_group = min_group
        self.max_group = max_group

    def next_request(self) -> MulticastRequest:
        rng = self._rng
        source = rng.choice(self._nodes)
        count = bounded_pareto(rng, self.alpha, self.min_group, self.max_group)
        candidates = [node for node in self._nodes if node != source]
        destinations = rng.sample(candidates, count)
        bandwidth = rng.uniform(*self.config.bandwidth_range)
        lo, hi = self.config.chain_length_range
        chain = random_service_chain(rng, min_length=lo, max_length=hi)
        request = MulticastRequest.create(
            request_id=self._next_id,
            source=source,
            destinations=destinations,
            bandwidth=bandwidth,
            chain=chain,
        )
        self._next_id += 1
        return request


#: The stream families :func:`make_stream` knows how to build.
WORKLOAD_FAMILIES = ("poisson", "diurnal", "flash-crowd", "pareto", "figure")


def make_stream(
    workload: str,
    graph: Graph,
    seed: int = 0,
    limit: Optional[int] = None,
    arrival_rate: float = 1.0,
    mean_holding: float = 40.0,
    dmax_ratio: object = None,
) -> ArrivalStream:
    """Build a named workload stream over ``graph``.

    One seed derives everything: request bodies use ``seed``, timing
    uses ``seed + 1`` — so two streams with the same ``(workload, graph,
    seed, ...)`` are bit-identical, and shards with distinct seeds are
    independent.

    Args:
        workload: one of :data:`WORKLOAD_FAMILIES`.  ``"figure"`` is the
            paper's one-by-one model (no departures); the others produce
            churn.
        graph: the topology requests are drawn over.
        seed: base RNG seed.
        limit: number of arrivals (``None`` = unbounded; required to be
            set by callers that iterate to exhaustion).
        arrival_rate: mean arrivals per unit time (ignored by
            ``"figure"``).  Diurnal swings between ``0.25×`` and ``1×``
            this rate; flash crowds multiply it 5× during episodes.
        mean_holding: mean residence time of admitted requests.
        dmax_ratio: optional override of the generator's
            ``D_max / |V|`` (defaults to the paper's range).
    """
    config_kwargs = {"seed": seed}
    if dmax_ratio is not None:
        config_kwargs["dmax_ratio"] = dmax_ratio
    config = WorkloadConfig(**config_kwargs)
    timing_seed = seed + 1
    if workload == "figure":
        return FigureStream(RequestGenerator(graph, config), limit=limit)
    if workload == "poisson":
        return PoissonStream(
            RequestGenerator(graph, config),
            arrival_rate=arrival_rate,
            mean_holding=mean_holding,
            seed=timing_seed,
            limit=limit,
        )
    if workload == "diurnal":
        return DiurnalStream(
            RequestGenerator(graph, config),
            base_rate=arrival_rate * 0.25,
            peak_rate=arrival_rate,
            period=1440.0,
            mean_holding=mean_holding,
            seed=timing_seed,
            limit=limit,
        )
    if workload == "flash-crowd":
        return FlashCrowdStream(
            RequestGenerator(graph, config),
            base_rate=arrival_rate,
            multiplier=5.0,
            episode_interval=500.0,
            episode_duration=50.0,
            mean_holding=mean_holding,
            first_episode=100.0,
            seed=timing_seed,
            limit=limit,
        )
    if workload == "pareto":
        return PoissonStream(
            ParetoGroupGenerator(graph, config),
            arrival_rate=arrival_rate,
            mean_holding=mean_holding,
            seed=timing_seed,
            limit=limit,
        )
    raise RequestError(
        f"unknown workload {workload!r}; choose from {WORKLOAD_FAMILIES}"
    )
