"""Streaming admission pipeline: unbounded request streams at O(active) memory.

The figure replays materialize a request list and keep the whole trace; a
production admission controller faces an *unbounded* arrival stream and
must run forever in bounded memory.  This package provides the engine half
of that regime (the telemetry half — windowed histograms, the
:class:`~repro.obs.emitter.SnapshotEmitter`, the dashboard — shipped with
:mod:`repro.obs`):

- :mod:`repro.stream.workloads` — seeded, clock-free arrival generators
  (stationary Poisson, diurnal load, flash crowds, heavy-tailed group
  sizes via bounded Pareto) plus adapters over the figure-series
  workloads; none of them materializes a request list.
- :mod:`repro.stream.engine` — :class:`StreamEngine`: folds any arrival
  iterator through an online algorithm with priority-queue departure
  scheduling, per-arrival emitter ticks, and bounded rolling statistics.
- :mod:`repro.stream.checkpoint` — serialize controller + residuals +
  RNG + algorithm state every N requests; a killed run resumes
  bit-identically.
- :mod:`repro.stream.shard` — partition independent request substreams
  across a process pool and merge their snapshots deterministically in
  shard order.

See ``docs/STREAMING.md`` for the workload families, the memory contract,
the checkpoint format, and the sharded-merge determinism rules.
"""

from repro.stream.checkpoint import (
    CheckpointError,
    capture,
    load_checkpoint,
    restore_into,
    save_checkpoint,
)
from repro.stream.engine import StreamEngine, StreamStats, sample_rss_kb
from repro.stream.shard import (
    ShardResult,
    StreamRunConfig,
    build_engine,
    run_sharded,
)
from repro.stream.workloads import (
    Arrival,
    ArrivalStream,
    DiurnalStream,
    FigureStream,
    FlashCrowdStream,
    ParetoGroupGenerator,
    PoissonStream,
    SequenceStream,
    bounded_pareto,
    make_stream,
)

__all__ = [
    "Arrival",
    "ArrivalStream",
    "CheckpointError",
    "DiurnalStream",
    "FigureStream",
    "FlashCrowdStream",
    "ParetoGroupGenerator",
    "PoissonStream",
    "SequenceStream",
    "ShardResult",
    "StreamEngine",
    "StreamRunConfig",
    "StreamStats",
    "bounded_pareto",
    "build_engine",
    "capture",
    "load_checkpoint",
    "make_stream",
    "restore_into",
    "run_sharded",
    "sample_rss_kb",
    "save_checkpoint",
]
