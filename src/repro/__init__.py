"""repro — NFV-enabled multicasting in SDNs (ICDCS 2017 reproduction).

A complete, from-scratch implementation of Xu, Liang, Huang, Jia, Guo &
Galis, *Approximation and Online Algorithms for NFV-Enabled Multicasting in
SDNs* (ICDCS 2017): the ``Appro_Multi`` 2K-approximation, its capacitated
variant, the ``Online_CP`` online admission algorithm with exponential
congestion pricing, the paper's comparison baselines, and every substrate
they run on (graph algorithms, topology generators, an SDN resource model,
NFV service chains, and workload generators).

Quickstart::

    from repro import (
        appro_multi, build_sdn, generate_workload, gt_itm_flat,
    )

    graph = gt_itm_flat(50, seed=1)
    network = build_sdn(graph, seed=1)
    request = generate_workload(graph, count=1, seed=7)[0]
    tree = appro_multi(network, request, max_servers=3)
    print(tree.describe())
"""

from repro.core import (
    AdmissionPolicy,
    ExponentialCostModel,
    LinearCostModel,
    OnlineCP,
    OnlineCPK,
    PseudoMulticastTree,
    SPOnline,
    alg_one_server,
    appro_multi,
    appro_multi_cap,
    delay_aware_multicast,
    operational_cost,
    validate_pseudo_tree,
)
from repro.exceptions import (
    InfeasibleRequestError,
    ReproError,
)
from repro.graph import Graph, kmb_steiner_tree
from repro.network import Controller, SDNetwork, VMRegistry, build_sdn
from repro.nfv import FunctionType, ServiceChain
from repro.simulation import (
    run_offline,
    run_online,
    run_online_with_departures,
    run_sequential_capacitated,
)
from repro.topology import (
    geant_graph,
    geant_servers,
    gt_itm_flat,
    rocketfuel_graph,
    rocketfuel_servers,
    waxman_graph,
)
from repro.workload import (
    MulticastRequest,
    RequestGenerator,
    WorkloadConfig,
    generate_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core algorithms
    "appro_multi",
    "appro_multi_cap",
    "OnlineCP",
    "OnlineCPK",
    "SPOnline",
    "delay_aware_multicast",
    "alg_one_server",
    "PseudoMulticastTree",
    "operational_cost",
    "validate_pseudo_tree",
    "ExponentialCostModel",
    "LinearCostModel",
    "AdmissionPolicy",
    # substrates
    "Graph",
    "kmb_steiner_tree",
    "SDNetwork",
    "build_sdn",
    "Controller",
    "VMRegistry",
    "FunctionType",
    "ServiceChain",
    # topologies
    "gt_itm_flat",
    "waxman_graph",
    "geant_graph",
    "geant_servers",
    "rocketfuel_graph",
    "rocketfuel_servers",
    # workload + simulation
    "MulticastRequest",
    "RequestGenerator",
    "WorkloadConfig",
    "generate_workload",
    "run_offline",
    "run_online",
    "run_online_with_departures",
    "run_sequential_capacitated",
    # errors
    "ReproError",
    "InfeasibleRequestError",
]
