"""Stateful network elements: capacitated links and servers.

These mirror the paper's model exactly: every link ``e`` has a bandwidth
capacity ``B_e`` and a per-unit usage cost ``c_e``; every switch in ``V_S``
has an attached server with compute capacity ``C_v`` and per-unit cost
``c_v``.  Residuals (``B_e(k)``, ``C_v(k)`` in the paper's notation) are
tracked mutably so a single :class:`~repro.network.sdn.SDNetwork` instance
can serve an entire online simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Tuple

from repro.exceptions import CapacityExceededError

_EPSILON = 1e-9

#: Release snap threshold: when a release brings an element within this
#: *relative* distance of full capacity, the residual is snapped exactly to
#: the capacity.  Floating-point subtraction is not symmetric — after
#: ``residual -= a; residual += a`` the residual can drift by an ulp per
#: round trip — and over a long churn simulation (millions of admit/depart
#: cycles) that drift becomes a slow capacity leak.  Real allocations are
#: many orders of magnitude above the threshold (≥ 1 Mbps / MHz against
#: thousands of capacity), so the snap can only ever absorb drift, never a
#: genuine reservation.
_SNAP_FRACTION = 1e-9


@dataclass
class LinkState:
    """Mutable bandwidth bookkeeping for one undirected link.

    Attributes:
        endpoints: canonical ``(u, v)`` key of the link.
        capacity: total bandwidth ``B_e`` in Mbps.
        unit_cost: usage cost ``c_e`` per Mbps (drives the operational cost).
        residual: currently unallocated bandwidth ``B_e(k)``.
        delay: propagation delay in milliseconds (used by the
            delay-constrained extension; defaults to 1 ms).
        up: whether the link is operational.  A failed link carries no new
            traffic (``can_allocate`` is ``False``) but keeps its residual
            bookkeeping, so trees routed over it before the failure can
            still release their reservations during repair or departure.
    """

    endpoints: Tuple[Hashable, Hashable]
    capacity: float
    unit_cost: float
    residual: float = field(default=-1.0)
    delay: float = 1.0
    up: bool = True

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link capacity must be positive: {self.capacity}")
        if self.unit_cost < 0:
            raise ValueError(f"link unit cost must be >= 0: {self.unit_cost}")
        if self.delay < 0:
            raise ValueError(f"link delay must be >= 0: {self.delay}")
        if self.residual < 0:
            self.residual = self.capacity

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use, in ``[0, 1]``."""
        return 1.0 - self.residual / self.capacity

    def can_allocate(self, amount: float) -> bool:
        """Return whether ``amount`` Mbps fits (always ``False`` when down)."""
        return self.up and amount <= self.residual + _EPSILON

    def allocate(self, amount: float) -> None:
        """Reserve ``amount`` Mbps; raises if it does not fit."""
        if amount < 0:
            raise ValueError(f"cannot allocate negative bandwidth {amount}")
        if not self.can_allocate(amount):
            raise CapacityExceededError(
                f"link {self.endpoints}", amount, self.residual
            )
        self.residual = max(0.0, self.residual - amount)

    def release(self, amount: float) -> None:
        """Return ``amount`` Mbps; raises if it exceeds what is allocated."""
        if amount < 0:
            raise ValueError(f"cannot release negative bandwidth {amount}")
        if self.residual + amount > self.capacity + _EPSILON:
            raise ValueError(
                f"release of {amount} on link {self.endpoints} exceeds "
                f"allocated amount"
            )
        self.residual = min(self.capacity, self.residual + amount)
        if self.capacity - self.residual <= _SNAP_FRACTION * self.capacity:
            self.residual = self.capacity


@dataclass
class ServerState:
    """Mutable compute bookkeeping for the server attached to one switch.

    Attributes:
        node: the switch the server is attached to.
        capacity: total compute ``C_v`` in MHz.
        unit_cost: usage cost ``c_v`` per MHz.
        residual: currently unallocated compute ``C_v(k)``.
        up: whether the server is operational.  A failed server hosts no new
            chains (``can_allocate`` is ``False``) but keeps its residual
            bookkeeping so chains placed before the failure can release.
    """

    node: Hashable
    capacity: float
    unit_cost: float
    residual: float = field(default=-1.0)
    up: bool = True

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"server capacity must be positive: {self.capacity}")
        if self.unit_cost < 0:
            raise ValueError(f"server unit cost must be >= 0: {self.unit_cost}")
        if self.residual < 0:
            self.residual = self.capacity

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use, in ``[0, 1]``."""
        return 1.0 - self.residual / self.capacity

    def can_allocate(self, amount: float) -> bool:
        """Return whether ``amount`` MHz fits (always ``False`` when down)."""
        return self.up and amount <= self.residual + _EPSILON

    def allocate(self, amount: float) -> None:
        """Reserve ``amount`` MHz; raises if it does not fit."""
        if amount < 0:
            raise ValueError(f"cannot allocate negative compute {amount}")
        if not self.can_allocate(amount):
            raise CapacityExceededError(
                f"server {self.node!r}", amount, self.residual
            )
        self.residual = max(0.0, self.residual - amount)

    def release(self, amount: float) -> None:
        """Return ``amount`` MHz; raises if it exceeds what is allocated."""
        if amount < 0:
            raise ValueError(f"cannot release negative compute {amount}")
        if self.residual + amount > self.capacity + _EPSILON:
            raise ValueError(
                f"release of {amount} on server {self.node!r} exceeds "
                f"allocated amount"
            )
        self.residual = min(self.capacity, self.residual + amount)
        if self.capacity - self.residual <= _SNAP_FRACTION * self.capacity:
            self.residual = self.capacity
