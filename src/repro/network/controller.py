"""A minimal SDN controller: flow-rule installation for multicast trees.

The paper's system model (Section III-A) has a logically centralized SDN
controller that, for each admitted request, programs the data plane: every
switch on the pseudo-multicast tree gets a forwarding rule replicating the
request's packets to the right output ports (and steering the pre-processed
stream into the attached server where a VM of the chain runs).  This module
simulates that control plane faithfully enough that examples and tests can
inspect per-switch forwarding state, count rule-table occupancy, and verify
that uninstalling a request leaves no residue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.exceptions import SimulationError
from repro.graph.graph import edge_key

Node = Hashable
RequestId = Hashable


@dataclass(frozen=True)
class FlowRule:
    """One forwarding entry on a switch.

    Attributes:
        switch: the switch holding the rule.
        request_id: the multicast group the rule matches on.
        in_port: upstream neighbor the packet arrives from (``None`` at the
            tree root or at a server re-injection point).
        out_ports: downstream neighbors the packet is replicated to.
        to_server: whether the packet is also handed to the local server's VM.
    """

    switch: Node
    request_id: RequestId
    in_port: Optional[Node]
    out_ports: Tuple[Node, ...]
    to_server: bool = False


@dataclass
class InstalledRequest:
    """All data-plane state belonging to one admitted request."""

    request_id: RequestId
    rules: List[FlowRule] = field(default_factory=list)
    tree_edges: Set[Tuple[Node, Node]] = field(default_factory=set)
    servers: Set[Node] = field(default_factory=set)


class TableCapacityExceededError(SimulationError):
    """Installing a tree would overflow a switch's flow table.

    Forwarding-table size is a real SDN constraint (TCAM entries are
    scarce); the paper's related work [2], [10] studies admission under it.
    Raised before any rule of the offending request is installed, so the
    control plane is never left half-programmed.
    """

    def __init__(self, switch: Node, capacity: int) -> None:
        super().__init__(
            f"switch {switch!r} flow table is full ({capacity} rules)"
        )
        self.switch = switch
        self.capacity = capacity


class Controller:
    """Tracks installed flow rules per switch and per request.

    Args:
        table_capacity: optional uniform per-switch flow-table size; when
            set, :meth:`install_tree` rejects trees that would overflow any
            switch (see :class:`TableCapacityExceededError`).
    """

    def __init__(self, table_capacity: Optional[int] = None) -> None:
        if table_capacity is not None and table_capacity < 1:
            raise ValueError(
                f"table_capacity must be >= 1, got {table_capacity}"
            )
        self._by_request: Dict[RequestId, InstalledRequest] = {}
        self._table_size: Dict[Node, int] = {}
        self._table_capacity = table_capacity

    @property
    def table_capacity(self) -> Optional[int]:
        """The per-switch rule budget (``None`` = unlimited)."""
        return self._table_capacity

    def can_install(self, switches) -> bool:
        """Return whether one more rule fits on every listed switch."""
        if self._table_capacity is None:
            return True
        return all(
            self._table_size.get(switch, 0) < self._table_capacity
            for switch in set(switches)
        )

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install_tree(
        self,
        request_id: RequestId,
        routing_edges: List[Tuple[Node, Node]],
        servers: List[Node],
    ) -> InstalledRequest:
        """Install forwarding state for a routed multicast request.

        Args:
            request_id: identity of the request (must not be installed yet).
            routing_edges: directed ``(parent, child)`` hops of the routing
                structure (a pseudo-multicast tree's traversal edges; hops
                may repeat an undirected link in both directions).
            servers: switches whose attached server processes the stream.

        Returns:
            The :class:`InstalledRequest` record.
        """
        if request_id in self._by_request:
            raise SimulationError(f"request {request_id!r} already installed")

        fanout: Dict[Node, List[Node]] = {}
        upstream: Dict[Node, Node] = {}
        for parent, child in routing_edges:
            fanout.setdefault(parent, []).append(child)
            upstream.setdefault(child, parent)

        # First-appearance order of the routing edges, deduplicated: the
        # rule list (and the switch a capacity error reports) must not
        # depend on salted set-iteration order across worker processes.
        switches = list(
            dict.fromkeys(
                [parent for parent, _ in routing_edges]
                + [child for _, child in routing_edges]
            )
        )

        if self._table_capacity is not None:
            for switch in switches:
                if self._table_size.get(switch, 0) >= self._table_capacity:
                    raise TableCapacityExceededError(
                        switch, self._table_capacity
                    )

        record = InstalledRequest(request_id=request_id)
        server_set = set(servers)
        for switch in switches:
            rule = FlowRule(
                switch=switch,
                request_id=request_id,
                in_port=upstream.get(switch),
                out_ports=tuple(fanout.get(switch, ())),
                to_server=switch in server_set,
            )
            record.rules.append(rule)
            self._table_size[switch] = self._table_size.get(switch, 0) + 1
        record.tree_edges = {edge_key(u, v) for u, v in routing_edges}
        record.servers = server_set
        self._by_request[request_id] = record
        return record

    def uninstall(self, request_id: RequestId) -> None:
        """Remove every rule belonging to ``request_id``."""
        record = self._by_request.pop(request_id, None)
        if record is None:
            raise SimulationError(f"request {request_id!r} is not installed")
        for rule in record.rules:
            remaining = self._table_size.get(rule.switch, 0) - 1
            if remaining <= 0:
                self._table_size.pop(rule.switch, None)
            else:
                self._table_size[rule.switch] = remaining

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def is_installed(self, request_id: RequestId) -> bool:
        """Return whether ``request_id`` currently has data-plane state."""
        return request_id in self._by_request

    def rules_for(self, request_id: RequestId) -> List[FlowRule]:
        """Return the flow rules of an installed request."""
        try:
            return list(self._by_request[request_id].rules)
        except KeyError:
            raise SimulationError(
                f"request {request_id!r} is not installed"
            ) from None

    def installed_record(self, request_id: RequestId) -> InstalledRequest:
        """Return the full data-plane record of an installed request.

        Used by the resilience layer to match failed links/servers against
        each request's ``tree_edges`` and ``servers`` without re-deriving
        them from the flow rules.
        """
        try:
            return self._by_request[request_id]
        except KeyError:
            raise SimulationError(
                f"request {request_id!r} is not installed"
            ) from None

    def table_occupancy(self, switch: Node) -> int:
        """Return how many rules ``switch`` currently holds."""
        return self._table_size.get(switch, 0)

    def total_rules(self) -> int:
        """Return the total number of installed rules across all switches."""
        return sum(self._table_size.values())

    @property
    def installed_requests(self) -> List[RequestId]:
        """The ids of all currently installed requests."""
        return list(self._by_request)
