"""VM placement registry: which chain instances run where.

The SDN substrate tracks *how much* compute each server has left;
operators also need to know *which* VMs occupy it — for billing, migration
planning, and debugging.  :class:`VMRegistry` keeps the authoritative map
from requests to their :class:`~repro.nfv.vm.VMInstance` records and keeps
it consistent with the admission lifecycle:

- :meth:`place` when a request's tree is admitted (one VM per used server);
- :meth:`evict` when the request departs.

The registry never touches capacities itself (that is
:class:`~repro.network.allocation.AllocationTransaction`'s job); it is the
inventory layer on top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, List

from repro.exceptions import SimulationError
from repro.nfv.vm import VMInstance

if TYPE_CHECKING:  # avoid a package-import cycle (core depends on network)
    from repro.core.pseudo_tree import PseudoMulticastTree

Node = Hashable
RequestId = Hashable


class VMRegistry:
    """Inventory of live VM instances, indexed by request and by server."""

    def __init__(self) -> None:
        self._by_request: Dict[RequestId, List[VMInstance]] = {}
        self._by_server: Dict[Node, List[VMInstance]] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def place(self, tree: "PseudoMulticastTree") -> List[VMInstance]:
        """Register one VM per server used by an admitted tree."""
        request = tree.request
        if request.request_id in self._by_request:
            raise SimulationError(
                f"request {request.request_id!r} already has placed VMs"
            )
        instances = [
            VMInstance(
                server=server,
                chain=request.chain,
                compute_mhz=request.compute_demand,
                request_id=request.request_id,
            )
            for server in tree.servers
        ]
        self._by_request[request.request_id] = instances
        for vm in instances:
            self._by_server.setdefault(vm.server, []).append(vm)
        return instances

    def evict(self, request_id: RequestId) -> List[VMInstance]:
        """Remove (and return) every VM belonging to a departing request."""
        instances = self._by_request.pop(request_id, None)
        if instances is None:
            raise SimulationError(
                f"request {request_id!r} has no placed VMs"
            )
        for vm in instances:
            hosted = self._by_server.get(vm.server, [])
            hosted.remove(vm)
            if not hosted:
                self._by_server.pop(vm.server, None)
        return instances

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def instances_for(self, request_id: RequestId) -> List[VMInstance]:
        """The VMs serving one request (empty if none)."""
        return list(self._by_request.get(request_id, ()))

    def instances_on(self, server: Node) -> List[VMInstance]:
        """The VMs currently hosted by one server."""
        return list(self._by_server.get(server, ()))

    def compute_in_use(self, server: Node) -> float:
        """Total MHz reserved on ``server`` according to the inventory."""
        return sum(vm.compute_mhz for vm in self._by_server.get(server, ()))

    @property
    def total_instances(self) -> int:
        """The number of live VMs across the network."""
        return sum(len(vms) for vms in self._by_request.values())

    @property
    def active_requests(self) -> List[RequestId]:
        """Requests with at least one placed VM."""
        return list(self._by_request)

    def placement_report(self) -> str:
        """Human-readable per-server inventory (for examples and logs)."""
        if not self._by_server:
            return "no VMs placed"
        lines = []
        for server in sorted(self._by_server, key=repr):
            vms = self._by_server[server]
            total = sum(vm.compute_mhz for vm in vms)
            chains = ", ".join(vm.chain.describe() for vm in vms[:4])
            suffix = ", …" if len(vms) > 4 else ""
            lines.append(
                f"{server!r}: {len(vms)} VMs, {total:.0f} MHz "
                f"[{chains}{suffix}]"
            )
        return "\n".join(lines)
