"""The software-defined network model ``G = (V, E)`` with servers ``V_S``.

:class:`SDNetwork` wraps a topology graph with the capacity and cost state
the paper's algorithms read and write: per-link bandwidth (``B_e``, residual
``B_e(k)``, unit cost ``c_e``) and per-server compute (``C_v``, residual
``C_v(k)``, unit cost ``c_v``).  The topology graph's edge weights equal the
link unit costs, so ``weight(u, v) · b_k`` is the paper's cost of carrying
request ``r_k`` over edge ``(u, v)``.

The class also provides the two derived views the solvers need:

- :meth:`residual_graph` — the subgraph of links that can still carry a
  given bandwidth (used by ``Appro_Multi_Cap``, Section IV-C);
- :meth:`feasible_servers` — the servers that can still host a given chain.

plus snapshot/restore for what-if exploration in the benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import (
    EdgeNotFoundError,
    NetworkModelError,
    NodeNotFoundError,
)
from repro.graph.graph import Graph, Node, edge_key
from repro.graph.spcache import ShortestPathCache, VersionedCacheRegistry
from repro.network.elements import LinkState, ServerState

#: Paper defaults (Section VI-A).
DEFAULT_BANDWIDTH_RANGE = (1_000.0, 10_000.0)  # Mbps, from [11]
DEFAULT_COMPUTE_RANGE = (4_000.0, 12_000.0)  # MHz, from [8]
DEFAULT_SERVER_FRACTION = 0.10  # |V_S| = 10% of |V|
#: Per-MHz server usage cost band; chosen so that one service chain costs
#: about as much as carrying the request across a couple of links, which is
#: the compute/bandwidth tradeoff regime the paper's Fig. 5 discussion
#: describes.
DEFAULT_SERVER_UNIT_COST_RANGE = (0.005, 0.02)
#: Link unit costs are the topology edge weights scaled by this factor to
#: express cost per Mbps.
DEFAULT_LINK_COST_SCALE = 0.01


@dataclass(frozen=True)
class NetworkSnapshot:
    """An immutable copy of all residual resources at one instant."""

    link_residuals: Dict[Tuple[Node, Node], float]
    server_residuals: Dict[Node, float]


class SDNetwork:
    """A capacitated SDN: topology + servers + residual resource state."""

    def __init__(
        self,
        graph: Graph,
        links: Dict[Tuple[Node, Node], LinkState],
        servers: Dict[Node, ServerState],
    ) -> None:
        for key in links:
            if not graph.has_edge(*key):
                raise NetworkModelError(f"link state for missing edge {key!r}")
        for node in servers:
            if not graph.has_node(node):
                raise NetworkModelError(f"server on missing node {node!r}")
        missing = [
            edge_key(u, v)
            for u, v, _ in graph.edges()
            if edge_key(u, v) not in links
        ]
        if missing:
            raise NetworkModelError(f"edges without link state: {missing[:3]!r}…")
        self._graph = graph
        self._links = links
        self._servers = servers
        # Residual-state version counter: bumped by every allocation,
        # release, restore, and reset, so caches over *derived* graphs
        # (residual subgraphs, congestion-priced graphs) can be keyed on it
        # and never read stale shortest paths.
        self._epoch = 0
        self._path_caches = VersionedCacheRegistry()
        self._topology_cache: Optional[ShortestPathCache] = None

    # ------------------------------------------------------------------
    # topology access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The topology; edge weights are link unit costs ``c_e``."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """``|V|``."""
        return self._graph.num_nodes

    @property
    def server_nodes(self) -> List[Node]:
        """``V_S``: the switches with attached servers, in a stable order."""
        return sorted(self._servers, key=repr)

    def is_server(self, node: Node) -> bool:
        """Return whether ``node`` has an attached server."""
        return node in self._servers

    def link(self, u: Node, v: Node) -> LinkState:
        """Return the state of link ``(u, v)``."""
        try:
            return self._links[edge_key(u, v)]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def server(self, node: Node) -> ServerState:
        """Return the state of the server at ``node``."""
        try:
            return self._servers[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def links(self) -> Iterable[LinkState]:
        """Iterate over all link states."""
        return self._links.values()

    def servers(self) -> Iterable[ServerState]:
        """Iterate over all server states."""
        return self._servers.values()

    # ------------------------------------------------------------------
    # cost parameters (Case 1 of the problem definition)
    # ------------------------------------------------------------------
    def link_unit_cost(self, u: Node, v: Node) -> float:
        """``c_e``: cost of one Mbps on link ``(u, v)``."""
        return self.link(u, v).unit_cost

    def link_delay(self, u: Node, v: Node) -> float:
        """Propagation delay of link ``(u, v)`` in milliseconds."""
        return self.link(u, v).delay

    def delay_map(self) -> Dict[Tuple[Node, Node], float]:
        """All link delays keyed by canonical edge, for the path solvers."""
        return {key: state.delay for key, state in self._links.items()}

    def path_delay(self, path: Sequence[Node]) -> float:
        """Total propagation delay along a node path."""
        return sum(
            self.link(u, v).delay for u, v in zip(path, path[1:])
        )

    def server_unit_cost(self, node: Node) -> float:
        """``c_v``: cost of one MHz on the server at ``node``."""
        return self.server(node).unit_cost

    def chain_cost(self, node: Node, compute_demand: float) -> float:
        """``c_v(SC_k)``: cost of placing a chain needing ``compute_demand``."""
        return self.server(node).unit_cost * compute_demand

    # ------------------------------------------------------------------
    # derived views for the capacitated solvers
    # ------------------------------------------------------------------
    def residual_graph(self, min_bandwidth: float = 0.0) -> Graph:
        """Return the subgraph of links with residual ≥ ``min_bandwidth``.

        Failed links are excluded regardless of their residual.  Node set is
        preserved in full (isolated switches remain), matching the
        construction of ``G'`` in Section IV-C.
        """
        pruned = Graph()
        for node in self._graph.nodes():
            pruned.add_node(node)
        for u, v, weight in self._graph.edges():
            link = self._links[edge_key(u, v)]
            if link.up and link.residual >= min_bandwidth - 1e-9:
                pruned.add_edge(u, v, weight)
        return pruned

    def feasible_servers(self, compute_demand: float) -> List[Node]:
        """Return ``V'_S``: servers whose residual compute fits the demand."""
        return [
            node
            for node in self.server_nodes
            if self._servers[node].can_allocate(compute_demand)
        ]

    # ------------------------------------------------------------------
    # shortest-path caches
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Residual-state version: increments on every resource mutation.

        Two reads of any residual-derived view (``residual_graph``, a cost
        model's weighted graph) at the same epoch are guaranteed identical;
        caches over such views must be keyed on this counter.
        """
        return self._epoch

    def path_cache(self) -> ShortestPathCache:
        """Shared Dijkstra-tree cache over the (immutable) topology.

        The topology graph and its unit costs never change after
        construction, so these trees stay valid across requests, epochs,
        and bandwidths — distances for a request are obtained by scaling
        lazily with ``b_k`` (see :mod:`repro.graph.spcache`).

        Under the default ``csr`` backend the cache compiles the topology
        into a :class:`~repro.graph.csr.CSRGraph` on the first miss and
        reuses that compiled view for every subsequent fill — one compile
        for the lifetime of the network, since this graph never changes.
        """
        if self._topology_cache is None:
            self._topology_cache = ShortestPathCache(self._graph)
        return self._topology_cache

    def residual_path_cache(self, min_bandwidth: float) -> ShortestPathCache:
        """Dijkstra-tree cache over ``residual_graph(min_bandwidth)``.

        Keyed on the current epoch: any allocation or release invalidates
        it, so ``Appro_Multi_Cap`` always sees fresh paths on the pruned
        graph.  The cache's bound graph is the residual subgraph itself
        (``cache.graph``), built at most once per (epoch, bandwidth).
        """
        return self._path_caches.get(
            ("residual", min_bandwidth),
            self._epoch,
            lambda: self.residual_graph(min_bandwidth),
        )

    def unit_path_cache(self, min_bandwidth: float) -> ShortestPathCache:
        """Dijkstra-tree cache over the *hop-count* residual subgraph.

        The ``SP`` baseline routes on ``residual_graph(min_bandwidth)``
        with every surviving link reweighted to 1 (fewest hops, load
        oblivious).  Like :meth:`residual_path_cache` this is keyed on the
        current epoch, so consecutive requests that do not mutate resources
        (rejections) share the same trees and a mutation can never leak a
        stale hop-count path.

        Backend note: each cache instance compiles its bound residual
        subgraph to CSR at most once (on the first fill under the ``csr``
        backend), and the epoch keying above retires that compiled view
        together with the cache the moment resources mutate — the compile
        is per (epoch, bandwidth), exactly like the subgraph itself.
        """
        return self._path_caches.get(
            ("unit", min_bandwidth),
            self._epoch,
            lambda: self._unit_residual_graph(min_bandwidth),
        )

    def _unit_residual_graph(self, min_bandwidth: float) -> Graph:
        """Materialize ``residual_graph(min_bandwidth)`` with weight-1 links.

        Node and edge insertion order mirror the residual graph exactly so
        Dijkstra tie-breaking — and therefore every figure series — is
        bit-identical to building the graph at the call site.
        """
        residual = self.residual_graph(min_bandwidth)
        unit = Graph()
        for node in residual.nodes():
            unit.add_node(node)
        for u, v, _ in residual.edges():
            unit.add_edge(u, v, 1.0)
        return unit

    # ------------------------------------------------------------------
    # resource mutation
    # ------------------------------------------------------------------
    def allocate_bandwidth(self, u: Node, v: Node, amount: float) -> None:
        """Reserve ``amount`` Mbps on link ``(u, v)``."""
        self.link(u, v).allocate(amount)
        self._epoch += 1

    def release_bandwidth(self, u: Node, v: Node, amount: float) -> None:
        """Return ``amount`` Mbps to link ``(u, v)``."""
        self.link(u, v).release(amount)
        self._epoch += 1

    def allocate_compute(self, node: Node, amount: float) -> None:
        """Reserve ``amount`` MHz on the server at ``node``."""
        self.server(node).allocate(amount)
        self._epoch += 1

    def release_compute(self, node: Node, amount: float) -> None:
        """Return ``amount`` MHz to the server at ``node``."""
        self.server(node).release(amount)
        self._epoch += 1

    # ------------------------------------------------------------------
    # failure injection (repro.resilience)
    # ------------------------------------------------------------------
    def fail_link(self, u: Node, v: Node) -> bool:
        """Mark link ``(u, v)`` as failed.

        A failed link is excluded from :meth:`residual_graph` (and every
        epoch-keyed cache over it) and refuses new allocations; resources
        already reserved on it remain booked until released.  Returns
        whether the state changed (``False`` if the link was already down),
        bumping the epoch only on a real transition so repeated events do
        not invalidate caches for nothing.
        """
        link = self.link(u, v)
        if not link.up:
            return False
        link.up = False
        self._epoch += 1
        return True

    def recover_link(self, u: Node, v: Node) -> bool:
        """Bring link ``(u, v)`` back up; returns whether the state changed."""
        link = self.link(u, v)
        if link.up:
            return False
        link.up = True
        self._epoch += 1
        return True

    def fail_server(self, node: Node) -> bool:
        """Mark the server at ``node`` as failed (its switch keeps routing).

        Returns whether the state changed (``False`` if already down).
        """
        server = self.server(node)
        if not server.up:
            return False
        server.up = False
        self._epoch += 1
        return True

    def recover_server(self, node: Node) -> bool:
        """Bring the server at ``node`` back up; returns whether it changed."""
        server = self.server(node)
        if server.up:
            return False
        server.up = True
        self._epoch += 1
        return True

    def link_is_up(self, u: Node, v: Node) -> bool:
        """Return whether link ``(u, v)`` is operational."""
        return self.link(u, v).up

    def server_is_up(self, node: Node) -> bool:
        """Return whether the server at ``node`` is operational."""
        return self.server(node).up

    def failed_links(self) -> List[Tuple[Node, Node]]:
        """Canonical keys of all currently failed links, in a stable order."""
        return sorted(
            (key for key, link in self._links.items() if not link.up),
            key=repr,
        )

    def failed_servers(self) -> List[Node]:
        """Nodes of all currently failed servers, in a stable order."""
        return sorted(
            (node for node, server in self._servers.items() if not server.up),
            key=repr,
        )

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> NetworkSnapshot:
        """Capture every residual so the state can be restored later."""
        return NetworkSnapshot(
            link_residuals={k: s.residual for k, s in self._links.items()},
            server_residuals={n: s.residual for n, s in self._servers.items()},
        )

    def restore(self, snapshot: NetworkSnapshot) -> None:
        """Reset all residuals to a previously captured snapshot."""
        if set(snapshot.link_residuals) != set(self._links) or set(
            snapshot.server_residuals
        ) != set(self._servers):
            raise NetworkModelError("snapshot does not match this network")
        for key, residual in snapshot.link_residuals.items():
            self._links[key].residual = residual
        for node, residual in snapshot.server_residuals.items():
            self._servers[node].residual = residual
        self._epoch += 1

    def reset(self) -> None:
        """Return every resource to full capacity and clear all failures."""
        for link in self._links.values():
            link.residual = link.capacity
            link.up = True
        for server in self._servers.values():
            server.residual = server.capacity
            server.up = True
        self._epoch += 1

    # ------------------------------------------------------------------
    # aggregate statistics (used by metrics and figures)
    # ------------------------------------------------------------------
    def total_bandwidth_allocated(self) -> float:
        """Sum of allocated bandwidth over all links (Mbps)."""
        return sum(link.capacity - link.residual for link in self._links.values())

    def total_compute_allocated(self) -> float:
        """Sum of allocated compute over all servers (MHz)."""
        return sum(
            server.capacity - server.residual
            for server in self._servers.values()
        )

    def mean_link_utilization(self) -> float:
        """Average link utilization in ``[0, 1]`` (0 for an edgeless net)."""
        if not self._links:
            return 0.0
        return sum(link.utilization for link in self._links.values()) / len(
            self._links
        )

    def mean_server_utilization(self) -> float:
        """Average server utilization in ``[0, 1]`` (0 with no servers)."""
        if not self._servers:
            return 0.0
        return sum(s.utilization for s in self._servers.values()) / len(
            self._servers
        )

    def __repr__(self) -> str:
        return (
            f"SDNetwork(nodes={self.num_nodes}, "
            f"links={len(self._links)}, servers={len(self._servers)})"
        )


def build_sdn(
    graph: Graph,
    server_nodes: Optional[Iterable[Node]] = None,
    seed: int = 0,
    bandwidth_range: Tuple[float, float] = DEFAULT_BANDWIDTH_RANGE,
    compute_range: Tuple[float, float] = DEFAULT_COMPUTE_RANGE,
    server_fraction: float = DEFAULT_SERVER_FRACTION,
    server_unit_cost_range: Tuple[float, float] = DEFAULT_SERVER_UNIT_COST_RANGE,
    link_cost_scale: float = DEFAULT_LINK_COST_SCALE,
) -> SDNetwork:
    """Annotate a topology with the paper's capacity/cost parameters.

    Args:
        graph: the topology; its edge weights become link unit costs after
            scaling by ``link_cost_scale``.
        server_nodes: explicit ``V_S``; if ``None``, ``server_fraction`` of
            the switches are chosen uniformly at random (paper default 10 %).
        seed: RNG seed controlling capacities, costs and server placement.
        bandwidth_range: link capacity band in Mbps (paper: 1 000–10 000).
        compute_range: server capacity band in MHz (paper: 4 000–12 000).
        server_fraction: fraction of switches given servers when
            ``server_nodes`` is ``None``.
        server_unit_cost_range: per-MHz cost band for servers.
        link_cost_scale: multiplier mapping topology weights to per-Mbps costs.

    Returns:
        A freshly provisioned :class:`SDNetwork` at full residual capacity.
    """
    if graph.num_nodes == 0:
        raise NetworkModelError("cannot build an SDN over an empty graph")
    rng = random.Random(seed)

    nodes_sorted = sorted(graph.nodes(), key=repr)
    if server_nodes is None:
        count = max(1, round(server_fraction * graph.num_nodes))
        chosen = rng.sample(nodes_sorted, min(count, len(nodes_sorted)))
    else:
        chosen = list(server_nodes)
        for node in chosen:
            if not graph.has_node(node):
                raise NodeNotFoundError(node)
        if not chosen:
            raise NetworkModelError("server_nodes must not be empty")

    cost_graph = Graph()
    for node in graph.nodes():
        cost_graph.add_node(node)
    links: Dict[Tuple[Node, Node], LinkState] = {}
    for u, v, weight in sorted(graph.edges(), key=lambda e: repr(edge_key(e[0], e[1]))):
        unit_cost = weight * link_cost_scale
        cost_graph.add_edge(u, v, unit_cost)
        links[edge_key(u, v)] = LinkState(
            endpoints=edge_key(u, v),
            capacity=rng.uniform(*bandwidth_range),
            unit_cost=unit_cost,
            # topology weights live in a [1, 10] distance band; read them as
            # propagation milliseconds for the delay-aware extension
            delay=weight,
        )

    servers = {
        node: ServerState(
            node=node,
            capacity=rng.uniform(*compute_range),
            unit_cost=rng.uniform(*server_unit_cost_range),
        )
        for node in chosen
    }
    return SDNetwork(graph=cost_graph, links=links, servers=servers)
