"""SDN substrate: capacitated network model, allocation, and control plane."""

from repro.network.allocation import AllocationTransaction
from repro.network.controller import (
    Controller,
    FlowRule,
    InstalledRequest,
    TableCapacityExceededError,
)
from repro.network.elements import LinkState, ServerState
from repro.network.placement import VMRegistry
from repro.network.sdn import (
    DEFAULT_BANDWIDTH_RANGE,
    DEFAULT_COMPUTE_RANGE,
    DEFAULT_LINK_COST_SCALE,
    DEFAULT_SERVER_FRACTION,
    DEFAULT_SERVER_UNIT_COST_RANGE,
    NetworkSnapshot,
    SDNetwork,
    build_sdn,
)

__all__ = [
    "SDNetwork",
    "NetworkSnapshot",
    "build_sdn",
    "LinkState",
    "ServerState",
    "AllocationTransaction",
    "VMRegistry",
    "Controller",
    "TableCapacityExceededError",
    "FlowRule",
    "InstalledRequest",
    "DEFAULT_BANDWIDTH_RANGE",
    "DEFAULT_COMPUTE_RANGE",
    "DEFAULT_SERVER_FRACTION",
    "DEFAULT_SERVER_UNIT_COST_RANGE",
    "DEFAULT_LINK_COST_SCALE",
]
