"""Transactional resource allocation with commit/rollback.

Admitting a multicast request touches many links and one or more servers.  If
any single allocation fails mid-way (a capacity miscount, a bug in a routing
algorithm would be caught here too) the network must not be left with a
half-reserved tree.  :class:`AllocationTransaction` records every reservation
and undoes all of them unless the caller commits — the classic unit-of-work
pattern, also usable as a context manager::

    with AllocationTransaction(network) as txn:
        for u, v in tree_edges:
            txn.allocate_bandwidth(u, v, request.bandwidth)
        txn.allocate_compute(server, demand)
        txn.commit()
    # an exception (or a missing commit()) rolls everything back
"""

from __future__ import annotations

from types import TracebackType
from typing import Hashable, List, Optional, Tuple, Type

from repro.exceptions import AllocationError
from repro.network.sdn import SDNetwork

Node = Hashable


class AllocationTransaction:
    """A unit of work over an :class:`SDNetwork`'s resources."""

    def __init__(self, network: SDNetwork) -> None:
        self._network = network
        self._bandwidth_ops: List[Tuple[Node, Node, float]] = []
        self._compute_ops: List[Tuple[Node, float]] = []
        self._committed = False
        self._rolled_back = False

    @classmethod
    def adopt(
        cls,
        network: SDNetwork,
        bandwidth_ops: List[Tuple[Node, Node, float]],
        compute_ops: List[Tuple[Node, float]],
    ) -> "AllocationTransaction":
        """Build a *committed* transaction over already-reserved resources.

        The repair layer uses this to re-home a grafted tree's holdings: the
        surviving reservations of the old tree plus the graft's additions
        are already booked on the network, and the returned transaction
        becomes their single owner so a later departure releases exactly
        once.  No allocation is performed here — the caller asserts that the
        listed amounts are currently reserved.
        """
        txn = cls(network)
        txn._bandwidth_ops = list(bandwidth_ops)
        txn._compute_ops = list(compute_ops)
        txn._committed = True
        return txn

    # ------------------------------------------------------------------
    # reservations
    # ------------------------------------------------------------------
    def allocate_bandwidth(self, u: Node, v: Node, amount: float) -> None:
        """Reserve bandwidth on a link as part of this transaction."""
        self._check_open()
        self._network.allocate_bandwidth(u, v, amount)
        self._bandwidth_ops.append((u, v, amount))

    def allocate_compute(self, node: Node, amount: float) -> None:
        """Reserve compute on a server as part of this transaction."""
        self._check_open()
        self._network.allocate_compute(node, amount)
        self._compute_ops.append((node, amount))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        """Whether the transaction can still accept reservations."""
        return not (self._committed or self._rolled_back)

    def commit(self) -> None:
        """Make every reservation permanent."""
        self._check_open()
        self._committed = True

    def rollback(self) -> None:
        """Undo every reservation made so far (idempotent after commit-less exit)."""
        if self._committed:
            raise AllocationError("cannot roll back a committed transaction")
        if self._rolled_back:
            return
        # release in reverse order for symmetry (order does not matter
        # functionally, but it keeps failure traces readable)
        for u, v, amount in reversed(self._bandwidth_ops):
            self._network.release_bandwidth(u, v, amount)
        for node, amount in reversed(self._compute_ops):
            self._network.release_compute(node, amount)
        self._bandwidth_ops.clear()
        self._compute_ops.clear()
        self._rolled_back = True

    def _check_open(self) -> None:
        if self._committed:
            raise AllocationError("transaction already committed")
        if self._rolled_back:
            raise AllocationError("transaction already rolled back")

    # ------------------------------------------------------------------
    # context-manager protocol
    # ------------------------------------------------------------------
    def __enter__(self) -> "AllocationTransaction":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        if not self._committed and not self._rolled_back:
            self.rollback()
        return False  # never swallow exceptions

    # ------------------------------------------------------------------
    # inspection (for the release path of a departing request)
    # ------------------------------------------------------------------
    @property
    def bandwidth_reservations(self) -> List[Tuple[Node, Node, float]]:
        """The committed ``(u, v, amount)`` bandwidth reservations."""
        return list(self._bandwidth_ops)

    @property
    def compute_reservations(self) -> List[Tuple[Node, float]]:
        """The committed ``(server, amount)`` compute reservations."""
        return list(self._compute_ops)

    def release_all(self) -> None:
        """Release a *committed* transaction's resources (request departure)."""
        if not self._committed:
            raise AllocationError("can only release a committed transaction")
        for u, v, amount in reversed(self._bandwidth_ops):
            self._network.release_bandwidth(u, v, amount)
        for node, amount in reversed(self._compute_ops):
            self._network.release_compute(node, amount)
        self._bandwidth_ops.clear()
        self._compute_ops.clear()
