"""Service chains: ordered sequences of network functions.

A service chain ``SC_k`` (Fig. 2 of the paper, e.g. ⟨NAT, Firewall, IDS⟩)
must be traversed in order by every packet of request ``r_k`` before the
packet may reach any destination.  Following the paper's consolidation
assumption (Section III-B), all functions of a chain are instantiated
together in one VM on a single server, so the chain's computing demand is the
sum of its functions' demands.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from repro.exceptions import ServiceChainError
from repro.nfv.functions import (
    FUNCTION_CATALOGUE,
    FunctionType,
    NetworkFunction,
    all_function_types,
)


@dataclass(frozen=True)
class ServiceChain:
    """An ordered, immutable chain of network functions.

    >>> chain = ServiceChain.of(FunctionType.NAT, FunctionType.FIREWALL)
    >>> chain.length
    2
    >>> round(chain.compute_demand(100.0), 1)
    85.0
    """

    functions: Tuple[NetworkFunction, ...]

    def __post_init__(self) -> None:
        if not self.functions:
            raise ServiceChainError("a service chain must contain >= 1 function")

    @classmethod
    def of(cls, *kinds: FunctionType) -> "ServiceChain":
        """Build a chain from function types using the default catalogue."""
        try:
            functions = tuple(FUNCTION_CATALOGUE[kind] for kind in kinds)
        except KeyError as exc:
            raise ServiceChainError(
                f"unknown function type {exc.args[0]!r}"
            ) from exc
        return cls(functions=functions)

    @property
    def length(self) -> int:
        """The number of functions in the chain."""
        return len(self.functions)

    @property
    def kinds(self) -> Tuple[FunctionType, ...]:
        """The ordered function types of the chain."""
        return tuple(function.kind for function in self.functions)

    def compute_demand(self, bandwidth_mbps: float) -> float:
        """Return ``C_v(SC_k)``: total MHz needed at ``bandwidth_mbps``.

        The paper consolidates the whole chain onto one server, so demands
        add up.
        """
        return sum(
            function.compute_demand(bandwidth_mbps)
            for function in self.functions
        )

    def __iter__(self) -> Iterator[NetworkFunction]:
        return iter(self.functions)

    def __len__(self) -> int:
        return len(self.functions)

    def describe(self) -> str:
        """Return the chain in the paper's ⟨NAT, Firewall, IDS⟩ notation."""
        inner = ", ".join(function.name for function in self.functions)
        return f"<{inner}>"


def random_service_chain(
    rng: random.Random,
    min_length: int = 1,
    max_length: int = 3,
    kinds: Optional[Sequence[FunctionType]] = None,
) -> ServiceChain:
    """Draw a random service chain without repeated function types.

    Args:
        rng: the seeded random source (callers own seeding for determinism).
        min_length: minimum chain length (inclusive).
        max_length: maximum chain length (inclusive).
        kinds: pool of function types to draw from (default: all five).

    Returns:
        A :class:`ServiceChain` of uniformly random length with functions in
        a uniformly random order.
    """
    pool = list(kinds) if kinds is not None else all_function_types()
    if not 1 <= min_length <= max_length <= len(pool):
        raise ServiceChainError(
            f"invalid chain length bounds [{min_length}, {max_length}] "
            f"for a pool of {len(pool)} functions"
        )
    length = rng.randint(min_length, max_length)
    chosen = rng.sample(pool, length)
    return ServiceChain.of(*chosen)
