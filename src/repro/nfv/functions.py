"""Catalogue of virtualized network functions.

The paper considers five middlebox types — Firewall, Proxy, NAT, IDS and Load
Balancer — with computing demands "adopted from [7], [17]" (consolidated
middleboxes / ClickOS).  Those sources report per-function
VM footprints on consolidated middlebox platforms, so each function carries a
*fixed* compute demand (``base_compute``, in MHz) plus an optional
traffic-proportional term (``compute_per_mbps``) for modelling
throughput-bound functions.  The catalogue defaults use fixed demands in the
ballpark of the cited measurements — an IDS costs roughly twice a stateless
firewall, NAT is the cheapest — which is all the algorithms are sensitive
to.  With the paper's server capacities (4 000–12 000 MHz) a server hosts a
few dozen chains, making link bandwidth the contended resource in the online
experiments, as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List


class FunctionType(enum.Enum):
    """The five network-function types used in the paper's evaluation."""

    FIREWALL = "firewall"
    PROXY = "proxy"
    NAT = "nat"
    IDS = "ids"
    LOAD_BALANCER = "load_balancer"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class NetworkFunction:
    """A virtualized network function.

    Attributes:
        kind: which middlebox this is.
        compute_per_mbps: CPU demand in MHz per Mbps of traffic processed.
        base_compute: fixed MHz overhead of keeping the VM resident.
    """

    kind: FunctionType
    compute_per_mbps: float
    base_compute: float = 0.0

    def compute_demand(self, bandwidth_mbps: float) -> float:
        """Return the MHz needed to process ``bandwidth_mbps`` of traffic."""
        if bandwidth_mbps < 0:
            raise ValueError(f"negative bandwidth {bandwidth_mbps!r}")
        return self.base_compute + self.compute_per_mbps * bandwidth_mbps

    @property
    def name(self) -> str:
        """Human-readable function name."""
        return self.kind.value


#: Default per-function demands (fixed MHz per chain instance), after
#: [7], [17].
FUNCTION_CATALOGUE: Dict[FunctionType, NetworkFunction] = {
    FunctionType.FIREWALL: NetworkFunction(
        FunctionType.FIREWALL, compute_per_mbps=0.0, base_compute=45.0
    ),
    FunctionType.PROXY: NetworkFunction(
        FunctionType.PROXY, compute_per_mbps=0.0, base_compute=55.0
    ),
    FunctionType.NAT: NetworkFunction(
        FunctionType.NAT, compute_per_mbps=0.0, base_compute=40.0
    ),
    FunctionType.IDS: NetworkFunction(
        FunctionType.IDS, compute_per_mbps=0.0, base_compute=90.0
    ),
    FunctionType.LOAD_BALANCER: NetworkFunction(
        FunctionType.LOAD_BALANCER, compute_per_mbps=0.0, base_compute=65.0
    ),
}


def get_function(kind: FunctionType) -> NetworkFunction:
    """Return the catalogue entry for ``kind``."""
    return FUNCTION_CATALOGUE[kind]


def all_function_types() -> List[FunctionType]:
    """Return every catalogued function type, in a stable order."""
    return list(FunctionType)
