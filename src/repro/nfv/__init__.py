"""NFV substrate: network functions, service chains, and VM instances."""

from repro.nfv.functions import (
    FUNCTION_CATALOGUE,
    FunctionType,
    NetworkFunction,
    all_function_types,
    get_function,
)
from repro.nfv.service_chain import ServiceChain, random_service_chain
from repro.nfv.vm import VMInstance

__all__ = [
    "FunctionType",
    "NetworkFunction",
    "FUNCTION_CATALOGUE",
    "get_function",
    "all_function_types",
    "ServiceChain",
    "random_service_chain",
    "VMInstance",
]
