"""VM instances: a service chain consolidated onto a server.

When a request is admitted, the SDN controller instantiates the request's
service chain as a virtual machine on each chosen server (at most ``K`` of
them).  :class:`VMInstance` is the record the network substrate keeps so that
the compute can be released when the request departs or is rolled back.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable

from repro.nfv.service_chain import ServiceChain

_vm_ids = itertools.count(1)


@dataclass(frozen=True)
class VMInstance:
    """An instantiated service chain on a particular server.

    Attributes:
        vm_id: process-unique identifier.
        server: the switch node whose attached server hosts the VM.
        chain: the service chain running inside the VM.
        compute_mhz: MHz reserved for this VM on the server.
        request_id: the multicast request this VM serves.
    """

    server: Hashable
    chain: ServiceChain
    compute_mhz: float
    request_id: Hashable
    vm_id: int = field(default_factory=lambda: next(_vm_ids))

    def __post_init__(self) -> None:
        if self.compute_mhz <= 0:
            raise ValueError(
                f"VM compute reservation must be positive, got {self.compute_mhz}"
            )

    def describe(self) -> str:
        """Return a one-line human-readable summary."""
        return (
            f"vm#{self.vm_id} on {self.server!r}: {self.chain.describe()} "
            f"({self.compute_mhz:.0f} MHz, request {self.request_id!r})"
        )
