"""Visitor core for the invariant linter: findings, rules, suppressions.

One :class:`LintContext` is built per file.  It parses the source once,
pre-computes the facts most rules need — import aliases, the set of calls
used as ``with``-statement context expressions, suppression comments — and
then a single :class:`LintVisitor` walk dispatches every AST node to the
rules that registered interest in its type.  Rules therefore never re-walk
the tree, which keeps a full-``src/`` run well under a second.

Suppression syntax (checked by ``tests/lint/test_suppressions.py``):

- ``# repro-lint: disable=RL001`` on the flagged line (or the line directly
  above, as a standalone comment) silences the listed rules for that line;
- ``# repro-lint: disable=RL001,RL007`` silences several rules at once;
- ``# repro-lint: disable-file=RL007`` anywhere in the file silences the
  listed rules for the whole file (use for files whose purpose conflicts
  with a rule, e.g. the engine's reported-runtime measurements vs RL007).

A suppression should always carry a justification in the same comment or an
adjacent one — ``repro lint`` cannot check prose, but review can.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

#: Matches one suppression pragma inside a comment.  Both forms may share a
#: comment with free-text justification after the rule list.
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self) -> str:
        """Render the canonical one-line ``path:line:col: RULE message``."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the ``--format json`` payload)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used by baseline matching; deliberately line-free so
        unrelated edits that shift line numbers do not churn the baseline."""
        return (self.rule, self.path, self.message)


class Rule:
    """Base class for one invariant rule.

    Subclasses set the class attributes and implement :meth:`visit`, which
    is called once for every AST node whose type is listed in
    ``node_types``.  Findings are emitted through ``ctx.report`` so the
    context can apply suppressions centrally.
    """

    #: Stable identifier, e.g. ``"RL001"`` (used in pragmas and baselines).
    id: str = ""
    #: Short kebab-case name for listings.
    name: str = ""
    #: The invariant the rule protects (one sentence, shown by --list-rules).
    rationale: str = ""
    #: Default remediation hint attached to findings.
    hint: str = ""
    #: AST node classes this rule wants to see.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, ctx: "LintContext") -> bool:
        """Whether the rule runs on this file at all (module scoping)."""
        return True

    def visit(self, node: ast.AST, ctx: "LintContext") -> None:
        """Inspect one node, calling ``ctx.report`` for each violation."""
        raise NotImplementedError


def module_key(path: str) -> str:
    """Normalize a filesystem path to a ``repro/...`` module key.

    The linter scopes every rule by position inside the ``repro`` package
    (``repro/network/sdn.py``, ``repro/obs/registry.py`` …), so fixtures can
    impersonate any module by choosing their path.  Files outside the
    package (tests, benchmarks, scripts) normalize to ``""`` and are skipped
    entirely: the invariants are contracts of the library, not of the code
    that exercises it.
    """
    normalized = path.replace("\\", "/")
    marker = "repro/"
    index = normalized.rfind("/" + marker)
    if index >= 0:
        return normalized[index + 1:]
    if normalized.startswith(marker):
        return normalized
    return ""


class LintContext:
    """Per-file state shared by every rule during one walk."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: ``repro/...`` key ("" when the file is outside the package).
        self.module = module_key(path)
        #: local alias -> imported module path ("import numpy as np").
        self.module_aliases: Dict[str, str] = {}
        #: local name -> "module.attr" ("from repro.obs import span as s").
        self.imported_names: Dict[str, str] = {}
        #: ``id()`` of every Call node used as a with-item context expr.
        self.with_context_calls: Set[int] = set()
        #: line -> rule ids disabled on that line ("all" disables every rule).
        self._line_disables: Dict[int, Set[str]] = {}
        #: rule ids disabled for the whole file.
        self._file_disables: Set[str] = set()
        self.findings: List[Finding] = []
        self._collect_imports_and_withs()
        self._collect_suppressions()

    # ------------------------------------------------------------------
    # pre-passes
    # ------------------------------------------------------------------
    def _collect_imports_and_withs(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports are not used in this repo
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imported_names[local] = f"{node.module}.{alias.name}"
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        self.with_context_calls.add(id(item.context_expr))

    def _collect_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (token.start[0], token.string, token.start[1])
                for token in tokens
                if token.type == tokenize.COMMENT
            ]
        except tokenize.TokenError:  # pragma: no cover - parse already passed
            comments = []
        for line, text, col in comments:
            for kind, rules in _PRAGMA.findall(text):
                ids = {r.strip() for r in rules.split(",") if r.strip()}
                if kind == "disable-file":
                    self._file_disables |= ids
                    continue
                self._line_disables.setdefault(line, set()).update(ids)
                if col == 0 or self._comment_is_standalone(line, col):
                    # a standalone comment also covers the next source line
                    self._line_disables.setdefault(line + 1, set()).update(ids)

    def _comment_is_standalone(self, line: int, col: int) -> bool:
        prefix = self.source.splitlines()[line - 1][:col]
        return not prefix.strip()

    # ------------------------------------------------------------------
    # suppression visibility (the project index serializes these so the
    # cross-file pass can honour pragmas without re-reading the source)
    # ------------------------------------------------------------------
    @property
    def line_disables(self) -> Dict[int, Set[str]]:
        """line -> rule ids disabled on that line (read-only view)."""
        return self._line_disables

    @property
    def file_disables(self) -> Set[str]:
        """Rule ids disabled for the whole file (read-only view)."""
        return self._file_disables

    # ------------------------------------------------------------------
    # name resolution helpers used by the rules
    # ------------------------------------------------------------------
    def qualified_call_name(self, func: ast.expr) -> Optional[str]:
        """Resolve a call's function expression to a dotted import path.

        ``Name`` nodes resolve through ``from``-imports; ``Attribute``
        chains resolve their base through plain imports, so both
        ``perf_counter()`` (after ``from time import perf_counter``) and
        ``time.perf_counter()`` normalize to ``time.perf_counter``.
        Returns ``None`` for calls on local objects.
        """
        if isinstance(func, ast.Name):
            return self.imported_names.get(func.id)
        if isinstance(func, ast.Attribute):
            parts: List[str] = [func.attr]
            value = func.value
            while isinstance(value, ast.Attribute):
                parts.append(value.attr)
                value = value.value
            if not isinstance(value, ast.Name):
                return None
            base = self.module_aliases.get(value.id)
            if base is None:
                base = self.imported_names.get(value.id)
            if base is None:
                return None
            parts.append(base)
            return ".".join(reversed(parts))
        return None

    def in_module(self, *keys: str) -> bool:
        """Whether this file is exactly one of the given ``repro/...`` keys."""
        return self.module in keys

    def in_package(self, *prefixes: str) -> bool:
        """Whether this file lives under one of the ``repro/...`` prefixes."""
        return any(
            self.module == p or self.module.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(
        self,
        rule: Rule,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> None:
        """Record a finding unless a pragma suppresses it."""
        if rule.id in self._file_disables or "all" in self._file_disables:
            return
        line = getattr(node, "lineno", 1)
        disabled = self._line_disables.get(line, ())
        if rule.id in disabled or "all" in disabled:
            return
        self.findings.append(
            Finding(
                rule=rule.id,
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
                hint=rule.hint if hint is None else hint,
            )
        )


class LintVisitor(ast.NodeVisitor):
    """Single-walk dispatcher: each node goes to the rules that want it."""

    def __init__(self, rules: Sequence[Rule], ctx: LintContext) -> None:
        self._ctx = ctx
        self._dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in rules:
            if not rule.applies_to(ctx):
                continue
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    def run(self) -> List[Finding]:
        """Walk the whole module and return the surviving findings."""
        if self._dispatch:
            self.visit(self._ctx.tree)
        return self._ctx.findings

    def generic_visit(self, node: ast.AST) -> None:
        for rule in self._dispatch.get(type(node), ()):
            rule.visit(node, self._ctx)
        super().generic_visit(node)
