"""Pass 1 of the two-pass analyzer: the cached project index.

The per-file rules (RL001–RL008, RL011) see one module at a time; the
contracts added in the streaming PRs — checkpoint-state completeness,
worker-count-invariant digests, the public API surface — are properties
of *sets* of files.  This module extracts, per module, everything the
cross-file rules (:mod:`repro.lint.xrules`) need:

- symbol tables: import aliases, ``__all__``, public top-level defs;
- per-class attribute maps: attributes assigned in ``__init__``,
  attributes *mutated* elsewhere, and the key sets of ``state()`` /
  ``restore()`` pairs (the RL009 inputs);
- a call graph keyed by dotted module path, with direct sink calls
  (raw Dijkstra, wall clock, ``hashlib``/merge) recorded per function
  (the transitive RL001/RL007 and RL010 inputs);
- set-valued iteration sites (the RL010 inputs);
- rendered signatures of every exported name (the RL012 inputs);
- the file's suppression pragmas, so the cross-file pass honours
  ``# repro-lint: disable=RLxxx`` without re-reading the source.

Everything in a :class:`ModuleInfo` is JSON-serializable, which is what
makes the index *cacheable*: :meth:`ProjectIndex.build` fingerprints each
source file (SHA-256) and reuses the cached entry when the fingerprint
matches, so a ``--changed`` pre-commit run re-parses only edited files.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.core import LintContext, module_key

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "dotted_module",
]

#: Cache file format version; bump when ModuleInfo's shape changes so a
#: stale cache from an older linter is discarded wholesale.
CACHE_VERSION = 1

#: Method names whose call on ``self.<attr>`` counts as mutating the
#: attribute (the RL009 "mutable attribute" detector).  Deliberately a
#: closed list of container/aggregator mutators: a read-only method call
#: must never make an attribute checkpoint-required.
_MUTATOR_METHODS = frozenset(
    {
        "add", "advance", "append", "appendleft", "clear", "discard",
        "extend", "insert", "merge", "observe", "pop", "popitem",
        "popleft", "push", "remove", "reverse", "setdefault", "sort",
        "update",
    }
)

#: Builtins whose generator-expression argument is order-independent (or
#: re-orders anyway), so iterating a set inside them is not an RL010
#: hazard: ``all(p(x) for x in some_set)`` is fine, ``sorted(s)`` sorts.
_ORDER_FREE_WRAPPERS = frozenset(
    {"all", "any", "frozenset", "len", "max", "min", "set", "sorted"}
)

#: Methods that materialize an *ordered* structure from the loop body —
#: iterating a set directly into one of these is the RL010 trigger even
#: outside digest paths.
_ORDERING_SINKS = frozenset({"append", "appendleft", "extend", "insert"})


def dotted_module(key: str) -> str:
    """``repro/stream/engine.py`` -> ``repro.stream.engine``.

    Package ``__init__`` files map to the package itself
    (``repro/obs/__init__.py`` -> ``repro.obs``).
    """
    trimmed = key[:-3] if key.endswith(".py") else key
    if trimmed.endswith("/__init__"):
        trimmed = trimmed[: -len("/__init__")]
    return trimmed.replace("/", ".")


def _format_args(args: ast.arguments) -> str:
    """Render an ``ast.arguments`` node as a stable signature string."""

    def one(arg: ast.arg, default: Optional[ast.expr]) -> str:
        text = arg.arg
        if arg.annotation is not None:
            text += f": {ast.unparse(arg.annotation)}"
        if default is not None:
            joiner = " = " if arg.annotation is not None else "="
            text += joiner + ast.unparse(default)
        return text

    parts: List[str] = []
    positional = list(args.posonlyargs) + list(args.args)
    defaults: List[Optional[ast.expr]] = (
        [None] * (len(positional) - len(args.defaults)) + list(args.defaults)
    )
    for index, (arg, default) in enumerate(zip(positional, defaults)):
        parts.append(one(arg, default))
        if args.posonlyargs and index == len(args.posonlyargs) - 1:
            parts.append("/")
    if args.vararg is not None:
        parts.append("*" + one(args.vararg, None))
    elif args.kwonlyargs:
        parts.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        parts.append(one(arg, default))
    if args.kwarg is not None:
        parts.append("**" + one(args.kwarg, None))
    return "(" + ", ".join(parts) + ")"


def _signature(node: ast.AST) -> str:
    """Signature string of a function def, including return annotation."""
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    text = _format_args(node.args)
    if node.returns is not None:
        text += f" -> {ast.unparse(node.returns)}"
    return text


@dataclass
class FunctionInfo:
    """One function or method: its signature, calls, and RL010 sites."""

    name: str
    lineno: int
    signature: str
    #: ``[qualified_or_marker, lineno]`` pairs.  Qualified names resolve
    #: through imports (``time.perf_counter``, ``repro.graph.dijkstra``);
    #: bare local calls become ``<dotted>.<name>``; unresolvable method
    #: calls are kept as ``?.<attr>`` markers (enough for sink matching).
    calls: List[List[Any]] = field(default_factory=list)
    #: ``[lineno, col, kind, builds_ordered]`` — iteration sites whose
    #: iterable is statically set-valued (see :func:`_is_set_valued`).
    set_iterations: List[List[Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "signature": self.signature,
            "calls": self.calls,
            "set_iterations": self.set_iterations,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            name=data["name"],
            lineno=int(data["lineno"]),
            signature=data["signature"],
            calls=[list(entry) for entry in data["calls"]],
            set_iterations=[list(e) for e in data["set_iterations"]],
        )


@dataclass
class ClassInfo:
    """One class: bases, attribute maps, and checkpoint-pair facts."""

    name: str
    lineno: int
    #: Resolved base references: ``<dotted>.<Class>`` for project-local
    #: and imported bases, the raw name otherwise (``ABC``).
    bases: List[str] = field(default_factory=list)
    #: attr -> first assignment line inside ``__init__``.
    init_attrs: Dict[str, int] = field(default_factory=dict)
    #: attr -> first mutation line outside ``__init__``/state/restore.
    mutated_attrs: Dict[str, int] = field(default_factory=dict)
    has_state: bool = False
    has_restore: bool = False
    state_lineno: int = 0
    restore_lineno: int = 0
    #: Keys of the dict ``state()`` returns (dict-literal keys plus
    #: constant subscript stores like ``base["timing_rng"] = ...``).
    state_keys: List[str] = field(default_factory=list)
    #: Constant subscript keys read anywhere in ``restore``/``restore_state``.
    restore_keys: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "bases": self.bases,
            "init_attrs": self.init_attrs,
            "mutated_attrs": self.mutated_attrs,
            "has_state": self.has_state,
            "has_restore": self.has_restore,
            "state_lineno": self.state_lineno,
            "restore_lineno": self.restore_lineno,
            "state_keys": self.state_keys,
            "restore_keys": self.restore_keys,
            "methods": {
                name: info.to_dict() for name, info in self.methods.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassInfo":
        return cls(
            name=data["name"],
            lineno=int(data["lineno"]),
            bases=list(data["bases"]),
            init_attrs={k: int(v) for k, v in data["init_attrs"].items()},
            mutated_attrs={
                k: int(v) for k, v in data["mutated_attrs"].items()
            },
            has_state=bool(data["has_state"]),
            has_restore=bool(data["has_restore"]),
            state_lineno=int(data["state_lineno"]),
            restore_lineno=int(data["restore_lineno"]),
            state_keys=list(data["state_keys"]),
            restore_keys=list(data["restore_keys"]),
            methods={
                name: FunctionInfo.from_dict(info)
                for name, info in data["methods"].items()
            },
        )


@dataclass
class ModuleInfo:
    """Everything the cross-file rules need to know about one module."""

    path: str
    module: str
    dotted: str
    fingerprint: str
    module_aliases: Dict[str, str] = field(default_factory=dict)
    imported_names: Dict[str, str] = field(default_factory=dict)
    #: The literal ``__all__`` list, or ``None`` when the module has none.
    exports: Optional[List[str]] = None
    #: Public (non-underscore) top-level function/class names.
    public_defs: List[str] = field(default_factory=list)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    file_disables: List[str] = field(default_factory=list)
    line_disables: Dict[int, List[str]] = field(default_factory=dict)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether a pragma silences ``rule_id`` at ``line`` in this file."""
        if rule_id in self.file_disables or "all" in self.file_disables:
            return True
        disabled = self.line_disables.get(line, ())
        return rule_id in disabled or "all" in disabled

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "dotted": self.dotted,
            "fingerprint": self.fingerprint,
            "module_aliases": self.module_aliases,
            "imported_names": self.imported_names,
            "exports": self.exports,
            "public_defs": self.public_defs,
            "functions": {
                name: info.to_dict() for name, info in self.functions.items()
            },
            "classes": {
                name: info.to_dict() for name, info in self.classes.items()
            },
            "file_disables": self.file_disables,
            "line_disables": {
                str(line): ids for line, ids in self.line_disables.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleInfo":
        return cls(
            path=data["path"],
            module=data["module"],
            dotted=data["dotted"],
            fingerprint=data["fingerprint"],
            module_aliases=dict(data["module_aliases"]),
            imported_names=dict(data["imported_names"]),
            exports=(
                None if data["exports"] is None else list(data["exports"])
            ),
            public_defs=list(data["public_defs"]),
            functions={
                name: FunctionInfo.from_dict(info)
                for name, info in data["functions"].items()
            },
            classes={
                name: ClassInfo.from_dict(info)
                for name, info in data["classes"].items()
            },
            file_disables=list(data["file_disables"]),
            line_disables={
                int(line): list(ids)
                for line, ids in data["line_disables"].items()
            },
        )


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------


def _is_set_valued(expr: ast.expr, set_names: Set[str]) -> bool:
    """Whether ``expr`` is statically known to evaluate to a set."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in ("set", "frozenset"):
            return True
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_valued(expr.left, set_names) or _is_set_valued(
            expr.right, set_names
        )
    if isinstance(expr, ast.Name):
        return expr.id in set_names
    return False


def _local_set_names(func: ast.AST) -> Set[str]:
    """Names assigned from set-valued expressions anywhere in ``func``.

    Two fixpoint passes so ``a = set(x); b = a | other`` resolves ``b``.
    """
    names: Set[str] = set()
    for _ in range(2):
        before = len(names)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_set_valued(
                    node.value, names
                ):
                    names.add(target.id)
        if len(names) == before:
            break
    return names


def _exempt_genexps(func: ast.AST) -> Set[int]:
    """ids of genexps passed directly to an order-free builtin."""
    exempt: Set[int] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_FREE_WRAPPERS
        ):
            for arg in node.args:
                if isinstance(arg, ast.GeneratorExp):
                    exempt.add(id(arg))
    return exempt


def _loop_builds_order(body: List[ast.stmt]) -> bool:
    """Whether a loop body materializes an ordered sequence."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDERING_SINKS
            ):
                return True
    return False


def _set_iteration_sites(func: ast.AST) -> List[List[Any]]:
    """RL010 raw material: set-valued iteration sites inside ``func``."""
    set_names = _local_set_names(func)
    exempt = _exempt_genexps(func)
    sites: List[List[Any]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.For):
            if _is_set_valued(node.iter, set_names):
                sites.append(
                    [
                        node.lineno,
                        node.col_offset,
                        "for",
                        _loop_builds_order(node.body),
                    ]
                )
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            for gen in node.generators:
                if _is_set_valued(gen.iter, set_names):
                    sites.append([node.lineno, node.col_offset, "comp", True])
        elif isinstance(node, ast.GeneratorExp) and id(node) not in exempt:
            for gen in node.generators:
                if _is_set_valued(gen.iter, set_names):
                    sites.append(
                        [node.lineno, node.col_offset, "genexp", True]
                    )
    return sites


class _Extractor:
    """Builds one :class:`ModuleInfo` from a parsed module."""

    def __init__(self, ctx: LintContext, fingerprint: str) -> None:
        self.ctx = ctx
        self.dotted = dotted_module(ctx.module)
        self.info = ModuleInfo(
            path=ctx.path,
            module=ctx.module,
            dotted=self.dotted,
            fingerprint=fingerprint,
            module_aliases=dict(ctx.module_aliases),
            imported_names=dict(ctx.imported_names),
            file_disables=sorted(ctx.file_disables),
            line_disables={
                line: sorted(ids)
                for line, ids in ctx.line_disables.items()
            },
        )
        self._toplevel: Set[str] = {
            node.name
            for node in ctx.tree.body
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        }

    def run(self) -> ModuleInfo:
        info = self.info
        for node in self.ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[node.name] = self._function(node)
                if not node.name.startswith("_"):
                    info.public_defs.append(node.name)
            elif isinstance(node, ast.ClassDef):
                info.classes[node.name] = self._class(node)
                if not node.name.startswith("_"):
                    info.public_defs.append(node.name)
            elif isinstance(node, ast.Assign):
                self._maybe_all(node)
        info.public_defs.sort()
        return info

    def _maybe_all(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    names = [
                        element.value
                        for element in node.value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    ]
                    self.info.exports = names

    # -- functions ------------------------------------------------------
    def _calls(
        self, func: ast.AST, own_methods: Optional[Set[str]] = None,
        class_name: Optional[str] = None,
    ) -> List[List[Any]]:
        calls: List[List[Any]] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            qualified = self.ctx.qualified_call_name(node.func)
            if qualified is not None:
                calls.append([qualified, node.lineno])
            elif isinstance(node.func, ast.Name):
                if node.func.id in self._toplevel:
                    calls.append(
                        [f"{self.dotted}.{node.func.id}", node.lineno]
                    )
            elif isinstance(node.func, ast.Attribute):
                value = node.func.value
                if (
                    own_methods
                    and isinstance(value, ast.Name)
                    and value.id == "self"
                    and node.func.attr in own_methods
                ):
                    calls.append(
                        [
                            f"{self.dotted}.{class_name}.{node.func.attr}",
                            node.lineno,
                        ]
                    )
                else:
                    calls.append([f"?.{node.func.attr}", node.lineno])
        return calls

    def _function(
        self,
        node: ast.AST,
        own_methods: Optional[Set[str]] = None,
        class_name: Optional[str] = None,
    ) -> FunctionInfo:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        return FunctionInfo(
            name=node.name,
            lineno=node.lineno,
            signature=_signature(node),
            calls=self._calls(node, own_methods, class_name),
            set_iterations=_set_iteration_sites(node),
        )

    # -- classes --------------------------------------------------------
    def _resolve_base(self, base: ast.expr) -> str:
        if isinstance(base, ast.Name):
            if base.id in self.info.classes or base.id in self._toplevel:
                return f"{self.dotted}.{base.id}"
            imported = self.ctx.imported_names.get(base.id)
            return imported if imported is not None else base.id
        if isinstance(base, ast.Attribute):
            qualified = self.ctx.qualified_call_name(base)
            return qualified if qualified is not None else base.attr
        return ast.unparse(base)

    @staticmethod
    def _self_attr_target(expr: ast.expr) -> Optional[str]:
        """``self.X`` or ``self.X[...]`` store target -> ``X``."""
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    def _class(self, node: ast.ClassDef) -> ClassInfo:
        info = ClassInfo(
            name=node.name,
            lineno=node.lineno,
            bases=[self._resolve_base(base) for base in node.bases],
        )
        method_names = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            info.methods[item.name] = self._function(
                item, method_names, node.name
            )
            if item.name == "__init__":
                self._collect_init_attrs(item, info)
            elif item.name == "state":
                info.has_state = True
                info.state_lineno = item.lineno
                info.state_keys = self._collect_state_keys(item)
            elif item.name in ("restore", "restore_state"):
                info.has_restore = True
                info.restore_lineno = item.lineno
                info.restore_keys = sorted(
                    set(info.restore_keys)
                    | set(self._collect_subscript_reads(item))
                )
            else:
                self._collect_mutations(item, info)
        return info

    def _collect_init_attrs(
        self, func: ast.AST, info: ClassInfo
    ) -> None:
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        attr = self._self_attr_target(target)
                        if attr is not None:
                            info.init_attrs.setdefault(attr, node.lineno)

    def _collect_mutations(self, func: ast.AST, info: ClassInfo) -> None:
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = self._self_attr_target(target)
                    if attr is not None:
                        info.mutated_attrs.setdefault(attr, node.lineno)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATOR_METHODS:
                    attr = self._self_attr_target(node.func.value)
                    if attr is not None:
                        info.mutated_attrs.setdefault(attr, node.lineno)

    def _collect_state_keys(self, func: ast.AST) -> List[str]:
        """Keys the checkpoint dict carries: every constant string key of
        a dict literal in ``state()`` (returned directly or built in a
        local first) plus constant subscript stores (``base["k"] = ...``,
        the idiom subclasses use on top of ``super().state()``)."""
        keys: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        keys.add(key.value)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        keys.add(target.slice.value)
        return sorted(keys)

    @staticmethod
    def _collect_subscript_reads(func: ast.AST) -> List[str]:
        keys: Set[str] = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                keys.add(node.slice.value)
        return sorted(keys)


def build_module_info(path: str, source: str) -> Optional[ModuleInfo]:
    """Extract one module's facts; ``None`` for files outside ``repro``.

    Raises:
        SyntaxError: if the source does not parse (the runner converts
            this into its synthetic RL000 finding).
    """
    if not module_key(path):
        return None
    tree = ast.parse(source, filename=path)
    ctx = LintContext(path=path, source=source, tree=tree)
    fingerprint = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return _Extractor(ctx, fingerprint).run()


# ----------------------------------------------------------------------
# the index
# ----------------------------------------------------------------------


class ProjectIndex:
    """The pass-1 artifact: every module's facts plus resolution helpers."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        #: path -> ModuleInfo
        self.modules: Dict[str, ModuleInfo] = {}
        #: dotted module -> ModuleInfo (``repro.stream.engine``)
        self.by_dotted: Dict[str, ModuleInfo] = {}
        for info in modules:
            self.modules[info.path] = info
            self.by_dotted[info.dotted] = info
        #: files that failed to parse this build: path -> SyntaxError
        self.broken: Dict[str, SyntaxError] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self._reach_memo: Dict[Tuple[str, str], bool] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "ProjectIndex":
        """Build an in-memory index from ``{path: source}`` (fixtures)."""
        infos: List[ModuleInfo] = []
        broken: Dict[str, SyntaxError] = {}
        for path in sorted(sources):
            try:
                info = build_module_info(path, sources[path])
            except SyntaxError as exc:
                broken[path] = exc
                continue
            if info is not None:
                infos.append(info)
        index = cls(infos)
        index.broken = broken
        index.cache_misses = len(index.modules)
        return index

    @classmethod
    def build(
        cls,
        files: Iterable[str],
        cache_path: Optional[str] = None,
    ) -> "ProjectIndex":
        """Index the given files, reusing ``cache_path`` entries whose
        content fingerprint is unchanged, then refresh the cache."""
        cached: Dict[str, Dict[str, Any]] = {}
        if cache_path is not None and os.path.exists(cache_path):
            try:
                with open(cache_path, encoding="utf-8") as handle:
                    payload = json.load(handle)
                if payload.get("version") == CACHE_VERSION:
                    cached = payload.get("modules", {})
            except (OSError, ValueError, KeyError):
                cached = {}
        infos: List[ModuleInfo] = []
        broken: Dict[str, SyntaxError] = {}
        hits = misses = 0
        for path in sorted(set(files)):
            if not module_key(path):
                continue
            try:
                with open(path, encoding="utf-8") as handle:
                    source = handle.read()
            except OSError:
                continue
            fingerprint = hashlib.sha256(
                source.encode("utf-8")
            ).hexdigest()
            entry = cached.get(path)
            if entry is not None and entry.get("fingerprint") == fingerprint:
                try:
                    infos.append(ModuleInfo.from_dict(entry))
                    hits += 1
                    continue
                except (KeyError, ValueError, TypeError):
                    pass  # malformed entry: fall through to re-parse
            try:
                info = build_module_info(path, source)
            except SyntaxError as exc:
                broken[path] = exc
                continue
            if info is not None:
                infos.append(info)
                misses += 1
        index = cls(infos)
        index.broken = broken
        index.cache_hits = hits
        index.cache_misses = misses
        if cache_path is not None:
            index.save_cache(cache_path)
        return index

    def save_cache(self, cache_path: str) -> None:
        """Persist the index for fingerprint-keyed reuse."""
        payload = {
            "version": CACHE_VERSION,
            "modules": {
                path: info.to_dict()
                for path, info in sorted(self.modules.items())
            },
        }
        tmp = cache_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, cache_path)

    # -- symbol resolution ----------------------------------------------
    def resolve_export(self, dotted_name: str) -> Optional[str]:
        """Follow re-export chains to the defining ``module.Name``.

        ``repro.stream.StreamEngine`` ->
        ``repro.stream.engine.StreamEngine``.  Returns ``None`` when the
        chain leaves the indexed project.
        """
        current = dotted_name
        for _ in range(16):  # re-export chains are short; cycles bail out
            prefix, _, name = current.rpartition(".")
            module = self.by_dotted.get(prefix)
            if module is None:
                return None
            if name in module.functions or name in module.classes:
                return current
            target = module.imported_names.get(name)
            if target is None or target == current:
                return None
            current = target
        return None

    def lookup_symbol(
        self, dotted_name: str
    ) -> Tuple[Optional[ModuleInfo], Optional[Any]]:
        """The (module, FunctionInfo|ClassInfo) a dotted name defines."""
        resolved = self.resolve_export(dotted_name)
        if resolved is None:
            return None, None
        prefix, _, name = resolved.rpartition(".")
        module = self.by_dotted[prefix]
        return module, module.functions.get(name) or module.classes.get(name)

    # -- call graph -----------------------------------------------------
    def function_node(
        self, node_key: str
    ) -> Tuple[Optional[ModuleInfo], Optional[FunctionInfo]]:
        """Resolve ``module.func`` or ``module.Class.method`` node keys."""
        prefix, _, name = node_key.rpartition(".")
        module = self.by_dotted.get(prefix)
        if module is not None:
            if name in module.functions:
                return module, module.functions[name]
            # the prefix may actually be module.Class
            mod_prefix, _, cls_name = prefix.rpartition(".")
            owner = self.by_dotted.get(mod_prefix)
            if owner is not None and cls_name in owner.classes:
                method = owner.classes[cls_name].methods.get(name)
                if method is not None:
                    return owner, method
            return None, None
        mod_prefix, _, cls_name = prefix.rpartition(".")
        owner = self.by_dotted.get(mod_prefix)
        if owner is not None and cls_name in owner.classes:
            method = owner.classes[cls_name].methods.get(name)
            if method is not None:
                return owner, method
        return None, None

    def resolve_call(self, call: str) -> Optional[str]:
        """Resolve a recorded call string to a function node key."""
        if call.startswith("?."):
            return None
        module, symbol = self.function_node(call)
        if symbol is not None:
            assert module is not None
            return call
        resolved = self.resolve_export(call)
        if resolved is None:
            return None
        prefix, _, name = resolved.rpartition(".")
        module = self.by_dotted.get(prefix)
        if module is not None and name in module.functions:
            return resolved
        return None

    def reaches_sink(
        self,
        node_key: str,
        sink_tag: str,
        direct_sink,
        exempt_module,
    ) -> bool:
        """Whether ``node_key`` (transitively) performs a sink call.

        ``direct_sink(call_string) -> bool`` marks the sinks;
        ``exempt_module(module_key) -> bool`` marks absorbing modules —
        their functions never count as reaching (the sanctioned layers).
        Memoized per ``sink_tag``; a cycle back into the current walk
        contributes ``False`` (a sink elsewhere on the cycle still wins,
        because every member is probed from the original entry point).
        """
        return self._reaches(node_key, sink_tag, direct_sink,
                             exempt_module, set())

    def _reaches(
        self, node_key, sink_tag, direct_sink, exempt_module, on_path
    ) -> bool:
        memo_key = (sink_tag, node_key)
        memo = self._reach_memo
        if memo_key in memo:
            return memo[memo_key]
        if node_key in on_path:
            return False  # cycle: no memo write, resolved by the caller
        module, func = self.function_node(node_key)
        if module is None or func is None or exempt_module(module.module):
            memo[memo_key] = False
            return False
        if any(direct_sink(call) for call, _ in func.calls):
            memo[memo_key] = True
            return True
        on_path.add(node_key)
        try:
            for call, _ in func.calls:
                target = self.resolve_call(call)
                if target is not None and self._reaches(
                    target, sink_tag, direct_sink, exempt_module, on_path
                ):
                    memo[memo_key] = True
                    return True
        finally:
            on_path.discard(node_key)
        if not on_path:
            # only safe to cache False at the walk root: inner nodes may
            # have been cut short by the cycle check above
            memo[memo_key] = False
        return False
