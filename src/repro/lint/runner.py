"""Drive the rules over sources, files, and directory trees."""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from repro.lint.core import Finding, LintContext, LintVisitor, Rule
from repro.lint.rules import ALL_RULES


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string as if it lived at ``path``.

    The path determines rule scoping (see
    :func:`repro.lint.core.module_key`), so fixtures can impersonate any
    module: ``lint_source(snippet, "src/repro/core/foo.py")``.

    Raises:
        SyntaxError: if the source does not parse (callers decide whether a
            syntax error is a lint failure; the CLI reports it as one).
    """
    tree = ast.parse(source, filename=path)
    ctx = LintContext(path=path, source=source, tree=tree)
    if not ctx.module:
        # Tests, benchmarks, and scripts deliberately break the library's
        # invariants; only files inside the repro package are linted.
        return []
    visitor = LintVisitor(ALL_RULES if rules is None else rules, ctx)
    findings = visitor.run()
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: str, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, rules=rules)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git") and not d.endswith(".egg-info")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        else:
            found.append(path)
    return sorted(dict.fromkeys(found))


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories.

    A file that fails to parse contributes a single synthetic ``RL000``
    finding rather than aborting the run, so one broken file cannot hide
    violations elsewhere.
    """
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            findings.extend(lint_file(path, rules=rules))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="RL000",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    hint="fix the syntax error first",
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
