"""Drive the rules over sources, files, and directory trees.

Two passes (see ``docs/STATIC_ANALYSIS.md``): the per-file pass walks
each module once with the RL001–RL008/RL011 rules; the cross-file pass
builds (or reloads) the :class:`~repro.lint.project.ProjectIndex` over
*every* requested file and runs the RL009/RL010/RL012 and transitive
RL001/RL007 checks against it.  ``--changed`` restricts per-file linting
and finding *reporting* to the changed files, but the index always spans
the full file set — cross-file contracts cannot be checked on a slice.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.core import Finding, LintContext, LintVisitor, Rule
from repro.lint.project import ProjectIndex
from repro.lint.rules import ALL_RULES
from repro.lint.xrules import run_cross_rules


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string as if it lived at ``path``.

    The path determines rule scoping (see
    :func:`repro.lint.core.module_key`), so fixtures can impersonate any
    module: ``lint_source(snippet, "src/repro/core/foo.py")``.

    Raises:
        SyntaxError: if the source does not parse (callers decide whether a
            syntax error is a lint failure; the CLI reports it as one).
    """
    tree = ast.parse(source, filename=path)
    ctx = LintContext(path=path, source=source, tree=tree)
    if not ctx.module:
        # Tests, benchmarks, and scripts deliberately break the library's
        # invariants; only files inside the repro package are linted.
        return []
    visitor = LintVisitor(ALL_RULES if rules is None else rules, ctx)
    findings = visitor.run()
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: str, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, rules=rules)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git") and not d.endswith(".egg-info")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        else:
            found.append(path)
    return sorted(dict.fromkeys(found))


def load_api_baseline(path: str) -> Dict[str, object]:
    """Load a committed ``api_baseline.json``.

    Raises:
        ValueError: if the payload is not a version-1 surface document.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("version") != 1:
        raise ValueError(
            f"{path} is not a version-1 API baseline; regenerate it with "
            "`repro lint --update-api`"
        )
    return payload


#: Default location of the committed surface lock, resolved from the cwd
#: (the repo root in CI and in the pre-commit hook).
DEFAULT_API_BASELINE = "api_baseline.json"


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    *,
    cross: Optional[bool] = None,
    index_cache: Optional[str] = None,
    api_baseline: Optional[str] = "auto",
    changed_only: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories.

    A file that fails to parse contributes a single synthetic ``RL000``
    finding rather than aborting the run, so one broken file cannot hide
    violations elsewhere.

    ``cross`` enables the index-backed pass; it defaults to on exactly
    when ``rules`` is not given, so callers that pin an explicit rule
    list (the fixtures) keep the old single-pass behaviour.  With
    ``api_baseline="auto"`` the RL012 diff runs iff
    ``api_baseline.json`` exists in the working directory; pass a path
    to require it, or ``None`` to skip RL012.  ``changed_only`` (an
    iterable of paths) restricts the per-file pass and the reported
    cross findings to those files — except RL012 findings, which are
    kept regardless because a surface break elsewhere must still block.
    """
    if cross is None:
        cross = rules is None
    all_files = iter_python_files(paths)
    changed: Optional[Set[str]] = None
    if changed_only is not None:
        changed = {os.path.normpath(p) for p in changed_only}

    findings: List[Finding] = []
    for path in all_files:
        if changed is not None and os.path.normpath(path) not in changed:
            continue
        try:
            findings.extend(lint_file(path, rules=rules))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="RL000",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    hint="fix the syntax error first",
                )
            )

    if cross:
        index = ProjectIndex.build(all_files, cache_path=index_cache)
        baseline_doc = None
        if api_baseline == "auto":
            if os.path.exists(DEFAULT_API_BASELINE):
                baseline_doc = load_api_baseline(DEFAULT_API_BASELINE)
        elif api_baseline is not None:
            baseline_doc = load_api_baseline(api_baseline)
        cross_findings = run_cross_rules(index, api_baseline=baseline_doc)
        if changed is not None:
            cross_findings = [
                finding
                for finding in cross_findings
                if finding.rule == "RL012"
                or os.path.normpath(finding.path) in changed
            ]
        findings.extend(cross_findings)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
