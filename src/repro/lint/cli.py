"""The ``repro lint`` subcommand (also ``python -m repro.lint``).

Exit codes: 0 clean (or only baselined findings), 1 new findings, 2 usage
error.  ``--format json`` emits a machine-readable report for editors and
the CI annotation step; ``--write-baseline`` adopts the current findings.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional

from repro.lint.baseline import (
    filter_with_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.project import ProjectIndex
from repro.lint.rules import ALL_RULES
from repro.lint.runner import (
    DEFAULT_API_BASELINE,
    iter_python_files,
    lint_paths,
)
from repro.lint.xrules import CROSS_RULES, compute_api_surface


def build_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Configure the lint argument parser (reused by the repro CLI)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="AST-based invariant linter for the repro package.",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file: subtract known findings (check mode)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="BASE",
        help="lint only files that differ from the given git ref "
        "(default HEAD) plus untracked files; the project index still "
        "spans every file so cross-file rules stay sound",
    )
    parser.add_argument(
        "--api-baseline",
        metavar="PATH",
        default=None,
        help="API-surface baseline to diff against (RL012); by default "
        f"{DEFAULT_API_BASELINE} is used when it exists in the cwd",
    )
    parser.add_argument(
        "--update-api",
        action="store_true",
        help="rewrite the API baseline from the current exported surface "
        "and exit 0 (an intentional surface change)",
    )
    parser.add_argument(
        "--index-cache",
        metavar="PATH",
        default=".repro_lint_cache.json",
        help="project-index cache file (default: .repro_lint_cache.json)",
    )
    parser.add_argument(
        "--no-index-cache",
        action="store_true",
        help="rebuild the project index from scratch, touching no cache",
    )
    return parser


def _changed_files(base: str, paths: List[str]) -> Optional[List[str]]:
    """Files under ``paths`` that differ from ``base`` or are untracked.

    Returns ``None`` when git is unavailable (callers fall back to a full
    run — safe, just slower).
    """
    changed: List[str] = []
    for command in (
        ["git", "diff", "--name-only", base],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = getattr(exc, "stderr", "") or str(exc)
            print(
                f"error: --changed needs git ({detail.strip()})",
                file=sys.stderr,
            )
            return None
        changed.extend(
            line.strip() for line in result.stdout.splitlines() if line.strip()
        )
    wanted = {os.path.normpath(p) for p in iter_python_files(paths)}
    return sorted(
        path
        for path in dict.fromkeys(changed)
        if path.endswith(".py") and os.path.normpath(path) in wanted
    )


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        catalogue = list(ALL_RULES) + [
            rule for rule in CROSS_RULES if rule.id not in
            {r.id for r in ALL_RULES}
        ]
        if args.output_format == "json":
            print(json.dumps(
                [
                    {
                        "id": rule.id,
                        "name": rule.name,
                        "rationale": rule.rationale,
                        "hint": rule.hint,
                    }
                    for rule in catalogue
                ]
                + [
                    {
                        "id": "RL012",
                        "name": "api-surface-lock",
                        "rationale": "exported names and signatures of the "
                        "locked packages must match api_baseline.json",
                        "hint": "repro lint --update-api",
                    }
                ],
                indent=2,
            ))
        else:
            for rule in catalogue:
                print(f"{rule.id} {rule.name}")
                print(f"    {rule.rationale}")
            print("RL012 api-surface-lock")
            print(
                "    exported names and signatures of repro.core/graph/"
                "stream/obs must match api_baseline.json "
                "(rebaseline: repro lint --update-api)"
            )
            print(
                "note: RL001/RL007 also run transitively over the project "
                "call graph (flagged at the solver-side call site)"
            )
        return 0

    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline PATH", file=sys.stderr)
        return 2

    index_cache = None if args.no_index_cache else args.index_cache

    if args.update_api:
        target = args.api_baseline or DEFAULT_API_BASELINE
        index = ProjectIndex.build(
            iter_python_files(args.paths), cache_path=index_cache
        )
        surface = compute_api_surface(index)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(surface, handle, indent=2, sort_keys=True)
            handle.write("\n")
        exported = sum(len(v) for v in surface["packages"].values())
        print(
            f"wrote {target}: {len(surface['packages'])} packages, "
            f"{exported} exports, {len(surface['modules'])} modules"
        )
        return 0

    if args.api_baseline is not None and not os.path.exists(args.api_baseline):
        print(
            f"error: API baseline {args.api_baseline} does not exist; "
            "create it with `repro lint --update-api`",
            file=sys.stderr,
        )
        return 2

    changed_only = None
    if args.changed is not None:
        changed_only = _changed_files(args.changed, list(args.paths))
        if changed_only is None:
            return 2
        if not changed_only:
            print("repro lint: no changed files")
            return 0

    try:
        findings = lint_paths(
            args.paths,
            index_cache=index_cache,
            api_baseline=args.api_baseline
            if args.api_baseline is not None
            else "auto",
            changed_only=changed_only,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(args.baseline, findings)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {args.baseline}")
        return 0

    stale: List = []
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, stale = filter_with_baseline(findings, baseline)

    if args.output_format == "json":
        print(json.dumps(
            {
                "findings": [finding.to_dict() for finding in findings],
                "stale_baseline_entries": [list(key) for key in stale],
            },
            indent=2,
        ))
    else:
        for finding in findings:
            print(finding.format())
        for rule, path, message in stale:
            print(
                f"note: stale baseline entry {rule} for {path} "
                f"({message!r}) — rewrite the baseline",
            )
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"repro lint: {len(findings)} {noun}")
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
