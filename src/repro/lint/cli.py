"""The ``repro lint`` subcommand (also ``python -m repro.lint``).

Exit codes: 0 clean (or only baselined findings), 1 new findings, 2 usage
error.  ``--format json`` emits a machine-readable report for editors and
the CI annotation step; ``--write-baseline`` adopts the current findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.lint.baseline import (
    filter_with_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.rules import ALL_RULES
from repro.lint.runner import lint_paths


def build_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Configure the lint argument parser (reused by the repro CLI)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="AST-based invariant linter for the repro package.",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file: subtract known findings (check mode)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        if args.output_format == "json":
            print(json.dumps(
                [
                    {
                        "id": rule.id,
                        "name": rule.name,
                        "rationale": rule.rationale,
                        "hint": rule.hint,
                    }
                    for rule in ALL_RULES
                ],
                indent=2,
            ))
        else:
            for rule in ALL_RULES:
                print(f"{rule.id} {rule.name}")
                print(f"    {rule.rationale}")
        return 0

    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline PATH", file=sys.stderr)
        return 2

    findings = lint_paths(args.paths)

    if args.write_baseline:
        count = write_baseline(args.baseline, findings)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {args.baseline}")
        return 0

    stale: List = []
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, stale = filter_with_baseline(findings, baseline)

    if args.output_format == "json":
        print(json.dumps(
            {
                "findings": [finding.to_dict() for finding in findings],
                "stale_baseline_entries": [list(key) for key in stale],
            },
            indent=2,
        ))
    else:
        for finding in findings:
            print(finding.format())
        for rule, path, message in stale:
            print(
                f"note: stale baseline entry {rule} for {path} "
                f"({message!r}) — rewrite the baseline",
            )
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"repro lint: {len(findings)} {noun}")
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
