"""Baseline files: adopt the linter on a codebase with pre-existing debt.

A baseline is a JSON list of known findings.  ``repro lint --baseline
PATH`` subtracts them from the current run, so CI can gate on *new*
violations while the old ones are burned down; ``--write-baseline``
(re)captures the current state.  Baseline entries are keyed on
``(rule, path, message)`` — deliberately line-free, so unrelated edits that
shift line numbers never churn the file.

This repository ships with an **empty** baseline: every finding is either
fixed or carries an inline justification (see ``docs/STATIC_ANALYSIS.md``).
The machinery exists for downstream forks and for emergencies.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Iterable, List, Set, Tuple

from repro.lint.core import Finding

_VERSION = 1

BaselineKey = Tuple[str, str, str]


def load_baseline(path: str) -> Set[BaselineKey]:
    """Read a baseline file; a missing file means an empty baseline."""
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ValueError(f"{path}: not a repro-lint baseline (version 1)")
    keys: Set[BaselineKey] = set()
    for entry in payload.get("findings", []):
        keys.add((entry["rule"], entry["path"], entry["message"]))
    return keys


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write the given findings as the new baseline; returns the count."""
    entries = sorted(
        {finding.baseline_key() for finding in findings}
    )
    payload = {
        "version": _VERSION,
        "findings": [
            {"rule": rule, "path": file_path, "message": message}
            for rule, file_path, message in entries
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def filter_with_baseline(
    findings: Iterable[Finding], baseline: Set[BaselineKey]
) -> Tuple[List[Finding], List[BaselineKey]]:
    """Split findings into (new, stale-baseline-entries).

    A baseline entry matches any number of findings with its key (several
    identical violations in one file collapse to one entry, like ruff's
    ``--add-noqa`` behaviour).  Entries that match nothing are *stale* —
    the debt was paid — and are reported so the baseline can be re-written.
    """
    matched: Counter = Counter()
    new: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if key in baseline:
            matched[key] += 1
        else:
            new.append(finding)
    stale = sorted(key for key in baseline if key not in matched)
    return new, stale
