"""``repro lint`` — two-pass semantic analyzer for the reproduction.

The reproduction's correctness rests on cross-cutting conventions that no
single unit test can see: every shortest-path query goes through the
epoch-versioned :class:`~repro.graph.spcache.ShortestPathCache`, residual
capacity is only mutated by the resource layer under
:class:`~repro.network.allocation.AllocationTransaction` ownership, every
topology/capacity mutation bumps the network epoch, and every stochastic
component draws from an explicitly seeded RNG.  This package enforces those
conventions *statically*, at CI time, instead of waiting for a 50-instance
differential run to drift.

Two passes:

- the **per-file pass** walks each module once with the RL001–RL008 and
  RL011 rules (:mod:`repro.lint.rules`);
- the **cross-file pass** builds a cached :class:`ProjectIndex` over the
  whole file set (:mod:`repro.lint.project`) and runs the RL009/RL010
  dataflow rules, the RL012 API-surface lock, and the transitive
  RL001/RL007 call-graph extension (:mod:`repro.lint.xrules`).

Public surface:

- :func:`lint_paths` / :func:`lint_source` — run the rules.
- :data:`ALL_RULES` / :data:`CROSS_RULES` — the rule registries.
- :class:`Finding` — one violation: rule, path, line, message, hint.
- :class:`ProjectIndex` — the pass-1 artifact (symbol tables, class
  attribute maps, call graph, export surface).
- :func:`compute_api_surface` / :func:`diff_api_surface` — the RL012
  surface snapshot and its diff against ``api_baseline.json``.
- :mod:`repro.lint.cli` — the ``repro lint`` subcommand implementation.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the suppression
syntax (``# repro-lint: disable=RLxxx``).
"""

from repro.lint.baseline import (
    filter_with_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.core import Finding, LintContext, Rule
from repro.lint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
)
from repro.lint.rules import ALL_RULES, get_rule
from repro.lint.runner import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    load_api_baseline,
)
from repro.lint.xrules import (
    API_LOCKED_PACKAGES,
    CROSS_RULES,
    CrossRule,
    compute_api_surface,
    diff_api_surface,
    run_cross_rules,
)

__all__ = [
    "ALL_RULES",
    "API_LOCKED_PACKAGES",
    "CROSS_RULES",
    "ClassInfo",
    "CrossRule",
    "Finding",
    "FunctionInfo",
    "LintContext",
    "ModuleInfo",
    "ProjectIndex",
    "Rule",
    "compute_api_surface",
    "diff_api_surface",
    "filter_with_baseline",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_api_baseline",
    "load_baseline",
    "run_cross_rules",
    "write_baseline",
]
