"""``repro lint`` — AST-based invariant linter for the reproduction.

The reproduction's correctness rests on cross-cutting conventions that no
single unit test can see: every shortest-path query goes through the
epoch-versioned :class:`~repro.graph.spcache.ShortestPathCache`, residual
capacity is only mutated by the resource layer under
:class:`~repro.network.allocation.AllocationTransaction` ownership, every
topology/capacity mutation bumps the network epoch, and every stochastic
component draws from an explicitly seeded RNG.  This package enforces those
conventions *statically*, at CI time, instead of waiting for a 50-instance
differential run to drift.

Public surface:

- :func:`lint_paths` / :func:`lint_source` — run all registered rules.
- :data:`ALL_RULES` — the rule registry (RL001 … RL008).
- :class:`Finding` — one violation: rule, path, line, message, hint.
- :mod:`repro.lint.cli` — the ``repro lint`` subcommand implementation.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the suppression
syntax (``# repro-lint: disable=RLxxx``).
"""

from repro.lint.baseline import (
    filter_with_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.core import Finding, LintContext, Rule
from repro.lint.rules import ALL_RULES, get_rule
from repro.lint.runner import iter_python_files, lint_file, lint_paths, lint_source

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "Rule",
    "filter_with_baseline",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
]
