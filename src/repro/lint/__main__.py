"""``python -m repro.lint`` — pre-commit / editor entry point."""

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
