"""Pass 2, cross-file half: rules that need the :class:`ProjectIndex`.

The per-file rules in :mod:`repro.lint.rules` see one module at a time.
The rules here check contracts that live *between* files:

- **RL009** — a ``state()``/``restore()`` pair must cover every mutable
  attribute the class (or any project-local base) assigns in ``__init__``
  and mutates elsewhere, or checkpoint/resume silently stops being
  bit-identical (the PR 8 contract).
- **RL010** — iterating a ``set`` in hash-salted order must never feed a
  digest/merge path or materialize an ordered output, or the chained
  decision digest stops being worker-count-invariant.
- **RL012** — the exported surface of the locked packages is diffed
  against a committed ``api_baseline.json``; intentional changes
  rebaseline with ``repro lint --update-api``.
- **transitive RL001/RL007** — the call graph extends the per-file raw
  Dijkstra / wall-clock rules one-or-more hops: a solver-side call into a
  helper that (transitively) reaches ``time.time()`` or a raw
  ``dijkstra()`` is flagged at the solver-side call site, so a suppressed
  sink cannot silently grow new callers.

Cross rules emit plain :class:`~repro.lint.core.Finding` objects and
honour the same ``# repro-lint: disable=...`` pragmas as the per-file
pass (the index serializes each file's suppression maps).
"""

from __future__ import annotations

import ast  # noqa: F401  (kept for symmetry with rules.py; fixtures import both)
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.lint.core import Finding
from repro.lint.project import ClassInfo, FunctionInfo, ModuleInfo, ProjectIndex
from repro.lint.rules import _SP_QUALIFIED, _WALL_CLOCK, UncachedShortestPath

__all__ = [
    "API_LOCKED_PACKAGES",
    "CROSS_RULES",
    "CheckpointStateDrift",
    "CrossRule",
    "DigestMergeOrderNondeterminism",
    "TransitiveSinkReach",
    "compute_api_surface",
    "diff_api_surface",
    "run_cross_rules",
]


class CrossRule:
    """Base class for one index-backed rule."""

    #: Stable identifier used in pragmas/baselines (may reuse a per-file
    #: id when the cross rule extends it transitively).
    id: str = ""
    name: str = ""
    rationale: str = ""
    hint: str = ""

    def check(self, index: ProjectIndex) -> List[Finding]:
        """Return every finding this rule sees in the indexed project."""
        raise NotImplementedError

    def _report(
        self,
        findings: List[Finding],
        module: ModuleInfo,
        line: int,
        col: int,
        message: str,
        hint: Optional[str] = None,
    ) -> None:
        """Append a finding unless a pragma in ``module`` suppresses it."""
        if module.is_suppressed(self.id, line):
            return
        findings.append(
            Finding(
                rule=self.id,
                path=module.path,
                line=line,
                col=col,
                message=message,
                hint=self.hint if hint is None else hint,
            )
        )


# ----------------------------------------------------------------------
# RL009 — checkpoint-state drift
# ----------------------------------------------------------------------

def _normalize(name: str) -> str:
    return name.lstrip("_")


def _key_covers(key: str, attr: str) -> bool:
    """Whether state key ``key`` plausibly serializes attribute ``attr``.

    Exact match after stripping leading underscores, or a one-sided
    underscore-prefix extension: ``timing_rng`` covers ``_timing``,
    ``next_id`` covers ``_next_id``.
    """
    normalized_key, normalized_attr = _normalize(key), _normalize(attr)
    return (
        normalized_key == normalized_attr
        or normalized_key.startswith(normalized_attr + "_")
        or normalized_attr.startswith(normalized_key + "_")
    )


class CheckpointStateDrift(CrossRule):
    """A ``state()`` dict misses a mutable attribute (or ``restore`` a key)."""

    id = "RL009"
    name = "checkpoint-state-drift"
    rationale = (
        "Bit-identical checkpoint/resume requires state() to serialize "
        "every attribute that is assigned in __init__ and mutated later; "
        "a missed field resumes with its constructor value and the replay "
        "diverges from the uninterrupted run on the first decision that "
        "touches it.  restore() must read every key state() writes, or "
        "the field round-trips to nowhere."
    )
    hint = (
        "add the attribute to state()/restore() (prefix-insensitive key "
        "names match: `_timing` <-> `timing_rng`), or suppress with a "
        "justification if the field is deliberately re-derived on resume"
    )
    #: Only the checkpointable layers carry the contract.
    _scope = ("repro/stream/", "repro/obs/", "repro/workload/")

    def check(self, index: ProjectIndex) -> List[Finding]:
        findings: List[Finding] = []
        for module in sorted(index.modules.values(), key=lambda m: m.path):
            if not module.module.startswith(self._scope):
                continue
            for cls in module.classes.values():
                self._check_class(index, module, cls, findings)
        return findings

    def _chain(
        self, index: ProjectIndex, module: ModuleInfo, cls: ClassInfo
    ) -> List[ClassInfo]:
        """The class plus every project-local base, leaf first (BFS)."""
        chain: List[ClassInfo] = []
        seen: Set[str] = set()
        queue: List[Tuple[ModuleInfo, ClassInfo]] = [(module, cls)]
        while queue:
            owner, info = queue.pop(0)
            key = f"{owner.dotted}.{info.name}"
            if key in seen:
                continue
            seen.add(key)
            chain.append(info)
            for base in info.bases:
                base_module, base_info = index.lookup_symbol(base)
                if base_module is not None and isinstance(
                    base_info, ClassInfo
                ):
                    queue.append((base_module, base_info))
        return chain

    def _check_class(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        cls: ClassInfo,
        findings: List[Finding],
    ) -> None:
        chain = self._chain(index, module, cls)
        if not any(info.has_state for info in chain):
            return
        init_attrs: Dict[str, int] = {}
        mutated: Dict[str, int] = {}
        state_keys: Set[str] = set()
        restore_keys: Set[str] = set()
        any_restore = False
        for info in chain:
            for attr, line in info.init_attrs.items():
                init_attrs.setdefault(attr, line)
            for attr, line in info.mutated_attrs.items():
                mutated.setdefault(attr, line)
            state_keys.update(info.state_keys)
            restore_keys.update(info.restore_keys)
            any_restore = any_restore or info.has_restore
        line = cls.state_lineno if cls.has_state else cls.lineno
        for attr in sorted(set(init_attrs) & set(mutated)):
            if not any(_key_covers(key, attr) for key in state_keys):
                self._report(
                    findings,
                    module,
                    line,
                    0,
                    f"checkpoint state of {cls.name} does not cover mutable "
                    f"attribute {attr!r} (assigned in __init__, mutated "
                    "elsewhere)",
                )
        if any_restore and restore_keys:
            restore_line = (
                cls.restore_lineno if cls.has_restore else cls.lineno
            )
            for key in sorted(state_keys):
                if key not in restore_keys:
                    self._report(
                        findings,
                        module,
                        restore_line,
                        0,
                        f"restore() of {cls.name} never reads state key "
                        f"{key!r}; the field round-trips to nowhere",
                    )


# ----------------------------------------------------------------------
# RL010 — digest/merge-order nondeterminism
# ----------------------------------------------------------------------

def _is_digest_sink(call: str) -> bool:
    return call.startswith("hashlib.") or call.endswith(".merge")


class DigestMergeOrderNondeterminism(CrossRule):
    """Hash-salted set iteration feeding digests, merges, or ordered output."""

    id = "RL010"
    name = "digest-merge-order-nondeterminism"
    rationale = (
        "Set iteration order is salted per process (PYTHONHASHSEED); "
        "inside a function that reaches hashlib/digest-chaining or a "
        "shard/parallel merge, or whenever the loop materializes an "
        "ordered structure, that order leaks into results and breaks "
        "worker-count invariance.  Order-free reductions (all/any/min/"
        "max/len/set/sorted) are exempt."
    )
    hint = (
        "iterate `sorted(the_set)` (or build the sequence with an ordered "
        "first-appearance dedup like dict.fromkeys) before the order can "
        "be observed"
    )
    #: Packages whose results feed digests, merges, or installed state.
    _scope = (
        "repro/stream/",
        "repro/obs/",
        "repro/network/",
        "repro/resilience/",
        "repro/core/",
    )

    def check(self, index: ProjectIndex) -> List[Finding]:
        findings: List[Finding] = []
        for module in sorted(index.modules.values(), key=lambda m: m.path):
            if not module.module.startswith(self._scope):
                continue
            for node_key, func in _function_nodes(module):
                if not func.set_iterations:
                    continue
                reaches_digest = index.reaches_sink(
                    node_key,
                    "rl010-digest",
                    _is_digest_sink,
                    lambda _module_key: False,
                )
                for line, col, kind, builds_ordered in func.set_iterations:
                    if reaches_digest:
                        reason = (
                            "inside a function on a digest/merge path "
                            f"(via {node_key.rsplit('.', 1)[1]}())"
                        )
                    elif builds_ordered:
                        reason = "the loop materializes an ordered output"
                    else:
                        continue
                    self._report(
                        findings,
                        module,
                        line,
                        col,
                        f"iteration over a set in salted hash order; {reason}",
                    )
        return findings


def _function_nodes(
    module: ModuleInfo,
) -> List[Tuple[str, FunctionInfo]]:
    """``(call-graph node key, FunctionInfo)`` for every function/method."""
    nodes: List[Tuple[str, FunctionInfo]] = [
        (f"{module.dotted}.{name}", info)
        for name, info in module.functions.items()
    ]
    for cls_name, cls in module.classes.items():
        for method_name, info in cls.methods.items():
            nodes.append(
                (f"{module.dotted}.{cls_name}.{method_name}", info)
            )
    return nodes


# ----------------------------------------------------------------------
# transitive RL001 / RL007 — call-graph extension of the per-file rules
# ----------------------------------------------------------------------

class TransitiveSinkReach(CrossRule):
    """A solver-side call reaches a guarded sink through helper hops.

    Reuses the per-file rule ids (RL001/RL007) so one pragma vocabulary
    covers both passes.  Only *cross-module* calls are flagged: a
    same-module helper is covered by the justification on its own
    suppressed sink, but a new caller from another module is not.
    """

    #: Modules whose functions are held to the transitive contract.
    _caller_scope = (
        "repro/core/",
        "repro/stream/",
        "repro/resilience/",
        "repro/simulation/",
    )

    def __init__(
        self,
        rule_id: str,
        name: str,
        rationale: str,
        hint: str,
        sink_label: str,
        direct_sink: Callable[[str], bool],
        exempt_module: Callable[[str], bool],
    ) -> None:
        self.id = rule_id
        self.name = name
        self.rationale = rationale
        self.hint = hint
        self._sink_label = sink_label
        self._direct_sink = direct_sink
        self._exempt_module = exempt_module

    def check(self, index: ProjectIndex) -> List[Finding]:
        findings: List[Finding] = []
        for module in sorted(index.modules.values(), key=lambda m: m.path):
            if not module.module.startswith(self._caller_scope):
                continue
            if self._exempt_module(module.module):
                continue
            for _node_key, func in _function_nodes(module):
                self._check_function(index, module, func, findings)
        return findings

    def _check_function(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        func: FunctionInfo,
        findings: List[Finding],
    ) -> None:
        reported: Set[Tuple[str, int]] = set()
        for call, line in func.calls:
            if self._direct_sink(call):
                continue  # the per-file rule owns direct sink calls
            target = index.resolve_call(call)
            if target is None:
                continue
            target_module, _target_func = index.function_node(target)
            if target_module is None:
                continue
            if target_module.dotted == module.dotted:
                continue  # same-module reach is covered by the local pragma
            if not index.reaches_sink(
                target,
                f"{self.id}-transitive",
                self._direct_sink,
                self._exempt_module,
            ):
                continue
            if (target, line) in reported:
                continue
            reported.add((target, line))
            short = target.rsplit(".", 1)[1]
            self._report(
                findings,
                module,
                line,
                0,
                f"call to {short}() ({target}) transitively reaches "
                f"{self._sink_label}",
            )


#: Sanctioned algorithm layers whose *suppressed* raw searches are their
#: documented implementation (the LARAC delay-constrained search, the
#: reference ``G_k^i`` construction).  They absorb RL001 transitivity:
#: calling them is the architecture, so the flag must not propagate to
#: every solver that does.  A brand-new helper wrapping ``dijkstra()``
#: is NOT on this list and does infect its callers.
_RL001_ABSORBING = (
    "repro/core/auxiliary.py",
    "repro/graph/constrained.py",
)


def _rl001_exempt(module_key: str) -> bool:
    return (
        module_key in UncachedShortestPath._allowed
        or module_key in _RL001_ABSORBING
    )


def _rl007_exempt(module_key: str) -> bool:
    return module_key.startswith("repro/obs/")


_TRANSITIVE_RL001 = TransitiveSinkReach(
    rule_id="RL001",
    name="uncached-shortest-path (transitive)",
    rationale=(
        "A helper that performs a raw shortest-path search infects every "
        "caller: flagging the solver-side call site keeps a suppressed "
        "one-shot search from silently growing new hot-path callers."
    ),
    hint=(
        "route the path query through the versioned cache at the caller, "
        "or suppress at the call site with a justification"
    ),
    sink_label="a raw shortest-path search (RL001 sink)",
    direct_sink=lambda call: call in _SP_QUALIFIED,
    exempt_module=_rl001_exempt,
)

_TRANSITIVE_RL007 = TransitiveSinkReach(
    rule_id="RL007",
    name="wall-clock-outside-obs (transitive)",
    rationale=(
        "A helper that reads the wall clock makes every solver-side "
        "caller time-dependent; the flag lands at the caller so decision "
        "paths cannot absorb clock reads through one level of indirection."
    ),
    hint=(
        "move the timing into a repro.obs span, or suppress at the call "
        "site if the value is a reported metric"
    ),
    sink_label="a wall-clock read (RL007 sink)",
    direct_sink=lambda call: call in _WALL_CLOCK,
    exempt_module=_rl007_exempt,
)


# ----------------------------------------------------------------------
# RL012 — API-surface lock
# ----------------------------------------------------------------------

#: Packages whose public surface is locked by ``api_baseline.json``.
API_LOCKED_PACKAGES = ("repro.core", "repro.graph", "repro.stream", "repro.obs")

#: Identifier and hint shared by the surface-diff findings.
_RL012_ID = "RL012"
_RL012_HINT = (
    "if the change is intentional, rebaseline with `repro lint "
    "--update-api`; otherwise restore the exported surface"
)


def _describe_export(index: ProjectIndex, dotted_name: str) -> Dict[str, Any]:
    """A stable JSON descriptor for one exported name."""
    _module, symbol = index.lookup_symbol(dotted_name)
    if isinstance(symbol, FunctionInfo):
        return {"kind": "function", "signature": symbol.signature}
    if isinstance(symbol, ClassInfo):
        init = symbol.methods.get("__init__")
        methods = {
            name: info.signature
            for name, info in sorted(symbol.methods.items())
            if not name.startswith("_")
        }
        return {
            "kind": "class",
            "init": init.signature if init is not None else "(self)",
            "methods": methods,
        }
    return {"kind": "object"}


def compute_api_surface(index: ProjectIndex) -> Dict[str, Any]:
    """The current surface of the locked packages, baseline-shaped."""
    packages: Dict[str, Any] = {}
    modules: Dict[str, List[str]] = {}
    for package in API_LOCKED_PACKAGES:
        init_module = index.by_dotted.get(package)
        if init_module is None:
            continue
        exports = init_module.exports or []
        packages[package] = {
            name: _describe_export(index, f"{package}.{name}")
            for name in sorted(exports)
        }
        prefix = package.replace(".", "/") + "/"
        for module in index.modules.values():
            if not module.module.startswith(prefix):
                continue
            if module.module.endswith("__init__.py"):
                continue
            modules[module.module] = sorted(module.public_defs)
    return {"version": 1, "packages": packages, "modules": modules}


def diff_api_surface(
    index: ProjectIndex,
    baseline: Dict[str, Any],
) -> List[Finding]:
    """RL012 findings: the indexed surface vs the committed baseline.

    Packages/modules absent from the *index* are skipped (a ``--changed``
    or fixture run must never produce spurious RL012 findings); packages/
    modules present in the index but absent from the *baseline* are
    compared against an empty surface, so new names force a rebaseline.
    """
    findings: List[Finding] = []
    current = compute_api_surface(index)
    base_packages = baseline.get("packages", {})
    base_modules = baseline.get("modules", {})

    def emit(module: ModuleInfo, message: str) -> None:
        if module.is_suppressed(_RL012_ID, 1):
            return
        findings.append(
            Finding(
                rule=_RL012_ID,
                path=module.path,
                line=1,
                col=0,
                message=message,
                hint=_RL012_HINT,
            )
        )

    for package, exports in sorted(current["packages"].items()):
        init_module = index.by_dotted[package]
        base_exports = base_packages.get(package, {})
        for name in sorted(set(exports) - set(base_exports)):
            emit(
                init_module,
                f"{package} newly exports {name!r} (not in the API baseline)",
            )
        for name in sorted(set(base_exports) - set(exports)):
            emit(
                init_module,
                f"{package} no longer exports {name!r} (locked by the API "
                "baseline)",
            )
        for name in sorted(set(exports) & set(base_exports)):
            if exports[name] != base_exports[name]:
                emit(
                    init_module,
                    f"signature of {package}.{name} changed from the API "
                    "baseline",
                )

    by_module_key = {info.module: info for info in index.modules.values()}
    for module_key, names in sorted(current["modules"].items()):
        module = by_module_key.get(module_key)
        if module is None:
            continue
        base_names = set(base_modules.get(module_key, []))
        for name in sorted(set(names) - base_names):
            emit(
                module,
                f"new public name {name!r} in {module_key} is not in the "
                "API baseline",
            )
        for name in sorted(base_names - set(names)):
            emit(
                module,
                f"public name {name!r} removed from {module_key} (locked "
                "by the API baseline)",
            )
    return findings


# ----------------------------------------------------------------------
# registry / entry point
# ----------------------------------------------------------------------

CROSS_RULES: Tuple[CrossRule, ...] = (
    CheckpointStateDrift(),
    DigestMergeOrderNondeterminism(),
    _TRANSITIVE_RL001,
    _TRANSITIVE_RL007,
)


def run_cross_rules(
    index: ProjectIndex,
    api_baseline: Optional[Dict[str, Any]] = None,
) -> List[Finding]:
    """Run every cross rule (plus RL012 when a baseline is supplied)."""
    findings: List[Finding] = []
    for rule in CROSS_RULES:
        findings.extend(rule.check(index))
    if api_baseline is not None:
        findings.extend(diff_api_surface(index, api_baseline))
    return findings
