"""The project-specific invariant rules (RL001 … RL008).

Each rule protects one of the cross-cutting contracts the reproduction's
correctness argument rests on; ``docs/STATIC_ANALYSIS.md`` documents every
rule with an example violation and the sanctioned fix.  Rules are scoped to
the ``repro`` package (see :func:`repro.lint.core.module_key`): tests,
benchmarks and scripts deliberately break these contracts and are never
linted.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from repro.lint.core import LintContext, Rule

# ----------------------------------------------------------------------
# RL001 — shortest-path searches must go through the versioned cache
# ----------------------------------------------------------------------

#: The shortest-path primitives and every module they are re-exported from.
_SP_MODULES = (
    "repro.graph.shortest_paths",
    "repro.graph.csr",
    "repro.graph",
    "repro",
)
_SP_FUNCTIONS = frozenset(
    {
        "dijkstra",
        "shortest_path",
        "shortest_path_length",
        "single_source_distances",
        "all_pairs_shortest_paths",
        "dijkstra_csr",
        "dijkstra_many",
    }
)
_SP_QUALIFIED = frozenset(
    f"{module}.{name}" for module in _SP_MODULES for name in _SP_FUNCTIONS
)

#: Dict-``Graph`` auxiliary-construction helpers: each call materializes a
#: full ``G_k^i`` (or a scaled topology copy), which the CSR-native solver
#: core forbids on hot paths — the sweep runs on the compiled view.
_AUX_BUILD_MODULES = ("repro.core.auxiliary", "repro.core", "repro")
_AUX_BUILD_FUNCTIONS = frozenset({"scale_graph", "explicit_auxiliary_graph"})
_AUX_BUILD_QUALIFIED = frozenset(
    f"{module}.{name}"
    for module in _AUX_BUILD_MODULES
    for name in _AUX_BUILD_FUNCTIONS
)
#: Substrate compilation entry point and its re-export paths.
_CSR_COMPILE_QUALIFIED = frozenset(
    f"{module}.compile_csr"
    for module in ("repro.graph.csr", "repro.graph", "repro")
)


class UncachedShortestPath(Rule):
    """Direct Dijkstra calls bypass the epoch-versioned cache.

    Inside ``repro/core`` the rule additionally guards the CSR-native
    solver core's one-compilation-per-request invariant: no direct
    ``compile_csr()`` (the substrate is compiled once, epoch-stamped, by
    the shortest-path cache) and no dict-``Graph`` auxiliary construction
    (``scale_graph`` / ``explicit_auxiliary_graph``) outside the
    explicitly suppressed reference/oracle paths.
    """

    id = "RL001"
    name = "uncached-shortest-path"
    rationale = (
        "Shortest-path queries must go through ShortestPathCache / "
        "VersionedCacheRegistry so results are shared and can never be "
        "served stale across residual-state epochs.  For the same reason "
        "the solver core must not recompile the substrate or materialize "
        "dict auxiliary graphs per combination: the auxiliary graph lives "
        "in the cache's single compiled view (AuxiliaryCSR), with only the "
        "virtual-source row varying across the sweep."
    )
    hint = (
        "use network.path_cache() (topology) or "
        "network.residual_path_cache(bw) (epoch-keyed); read the compiled "
        "substrate via ShortestPathCache.compiled(); suppress only for "
        "one-shot searches / reference constructions on transient graphs"
    )
    node_types = (ast.Call,)
    _allowed = (
        "repro/graph/spcache.py",
        "repro/graph/shortest_paths.py",
        "repro/graph/csr.py",
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.in_module(*self._allowed)

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Call)
        qualified = ctx.qualified_call_name(node.func)
        if qualified in _SP_QUALIFIED:
            short = qualified.rsplit(".", 1)[1]
            ctx.report(
                self,
                node,
                f"direct call to {short}() bypasses the versioned "
                "shortest-path cache",
            )
            return
        if not ctx.in_package("repro/core"):
            return
        if qualified in _CSR_COMPILE_QUALIFIED:
            ctx.report(
                self,
                node,
                "compile_csr() inside the solver core recompiles the "
                "substrate; the request's single epoch-stamped compilation "
                "is read via ShortestPathCache.compiled()",
            )
        elif qualified in _AUX_BUILD_QUALIFIED:
            short = qualified.rsplit(".", 1)[1]
            ctx.report(
                self,
                node,
                f"{short}() materializes a dict auxiliary graph inside the "
                "solver core; hot paths must use the CSR-compiled view "
                "(AuxiliaryCSR / FlatContext)",
            )


# ----------------------------------------------------------------------
# RL002 — residual capacity is owned by the resource layer
# ----------------------------------------------------------------------
class ResidualWriteOutsideAllocation(Rule):
    """Writes to ``.residual`` outside the transaction-owned resource layer."""

    id = "RL002"
    name = "residual-write-outside-allocation"
    rationale = (
        "Residual bandwidth/compute may only be mutated by the resource "
        "layer (AllocationTransaction and the SDNetwork/element primitives "
        "it drives); any other write silently desynchronizes transaction "
        "ownership and voids the admission-control bookkeeping."
    )
    hint = (
        "route the mutation through AllocationTransaction / "
        "SDNetwork.allocate_*/release_*"
    )
    node_types = (ast.Assign, ast.AugAssign)
    _allowed = (
        "repro/network/allocation.py",
        "repro/network/elements.py",
        "repro/network/sdn.py",
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.in_module(*self._allowed)

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            assert isinstance(node, ast.AugAssign)
            targets = [node.target]
        for target in targets:
            for leaf in _assignment_leaves(target):
                if isinstance(leaf, ast.Attribute) and leaf.attr == "residual":
                    ctx.report(
                        self,
                        node,
                        "write to a .residual attribute outside the "
                        "resource layer (transaction-ownership violation)",
                    )


def _assignment_leaves(target: ast.expr) -> List[ast.expr]:
    """Flatten tuple/list unpacking targets into their leaf expressions."""
    if isinstance(target, (ast.Tuple, ast.List)):
        leaves: List[ast.expr] = []
        for element in target.elts:
            leaves.extend(_assignment_leaves(element))
        return leaves
    if isinstance(target, ast.Starred):
        return _assignment_leaves(target.value)
    return [target]


# ----------------------------------------------------------------------
# RL003 — all randomness is explicitly seeded
# ----------------------------------------------------------------------

#: ``random`` module-level functions that draw from the hidden global RNG.
_GLOBAL_RANDOM_FUNCTIONS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)
#: ``numpy.random`` attributes that are fine: explicit generator plumbing.
_NUMPY_SEEDED_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937"}
)


class UnseededRandomness(Rule):
    """Module-level ``random.*`` / global ``numpy.random`` draws."""

    id = "RL003"
    name = "unseeded-randomness"
    rationale = (
        "Every stochastic component must draw from an explicitly seeded "
        "random.Random(seed) (or numpy default_rng(seed)); the hidden "
        "global RNG makes runs irreproducible and breaks the differential "
        "harness."
    )
    hint = "thread a random.Random(seed) instance through instead"
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Call)
        qualified = ctx.qualified_call_name(node.func)
        if qualified is None:
            return
        if qualified.startswith("random."):
            function = qualified[len("random."):]
            if function in _GLOBAL_RANDOM_FUNCTIONS:
                ctx.report(
                    self,
                    node,
                    f"random.{function}() draws from the hidden global RNG",
                )
        elif qualified.startswith("numpy.random."):
            attribute = qualified[len("numpy.random."):].split(".", 1)[0]
            if attribute not in _NUMPY_SEEDED_OK:
                ctx.report(
                    self,
                    node,
                    f"numpy.random.{attribute}() uses the global numpy RNG",
                )


# ----------------------------------------------------------------------
# RL004 — no float equality on cost/weight expressions
# ----------------------------------------------------------------------

_COSTLIKE = re.compile(
    r"cost|weight|dist|residual|bandwidth|capacity|delay|util|price|budget",
    re.IGNORECASE,
)
#: Float literals that are exact in IEEE-754 and conventional as sentinels.
_EXACT_FLOATS = frozenset({0.0, 1.0, -1.0})
_INFINITY_NAMES = frozenset({"INFINITY", "INF"})


class FloatEqualityOnCosts(Rule):
    """``==``/``!=`` between computed cost/weight floats."""

    id = "RL004"
    name = "float-equality-on-costs"
    rationale = (
        "Costs and weights are sums of float products; exact equality on "
        "them is order-of-evaluation dependent and silently diverges "
        "between equivalent engines.  Compare with the 1e-9 tolerance "
        "helpers instead (sentinel comparisons against 0.0/1.0/inf are "
        "exact and exempt)."
    )
    hint = "use abs(a - b) <= 1e-9 (or math.isclose) for computed values"
    node_types = (ast.Compare,)

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Compare)
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if self._is_exact(left, ctx) or self._is_exact(right, ctx):
                # one side is an exact sentinel — only flag a comparison
                # against a *non*-sentinel float literal like ``x == 0.3``
                for side in (left, right):
                    if self._is_inexact_float_literal(side):
                        ctx.report(
                            self,
                            node,
                            "float equality against a non-sentinel literal",
                        )
                        break
                continue
            if self._is_costlike(left) or self._is_costlike(right):
                ctx.report(
                    self,
                    node,
                    "exact float equality on a cost/weight expression",
                )

    @staticmethod
    def _terminal_name(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            return expr.attr
        return None

    def _is_costlike(self, expr: ast.expr) -> bool:
        name = self._terminal_name(expr)
        return name is not None and bool(_COSTLIKE.search(name))

    def _is_exact(self, expr: ast.expr, ctx: LintContext) -> bool:
        """Literals/sentinels whose equality comparison is well-defined."""
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
            expr = expr.operand
        if isinstance(expr, ast.Constant):
            value = expr.value
            if isinstance(value, bool) or value is None or isinstance(value, str):
                return True
            if isinstance(value, int):
                return True
            if isinstance(value, float):
                return value in _EXACT_FLOATS or value != value or value in (
                    float("inf"), float("-inf"),
                )
            return False
        name = self._terminal_name(expr)
        if name in _INFINITY_NAMES:
            return True
        if isinstance(expr, ast.Attribute) and expr.attr in ("inf", "nan"):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id == "float" and expr.args:
                argument = expr.args[0]
                if isinstance(argument, ast.Constant) and argument.value in (
                    "inf", "-inf", "nan",
                ):
                    return True
        return False

    @staticmethod
    def _is_inexact_float_literal(expr: ast.expr) -> bool:
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
            expr = expr.operand
        return (
            isinstance(expr, ast.Constant)
            and isinstance(expr.value, float)
            and not isinstance(expr.value, bool)
            and expr.value == expr.value  # not NaN
            and expr.value not in (float("inf"), float("-inf"))
            and expr.value not in _EXACT_FLOATS
        )


# ----------------------------------------------------------------------
# RL005 — every mutation in SDNetwork bumps the epoch
# ----------------------------------------------------------------------
class MutationWithoutEpochBump(Rule):
    """A method of ``network/sdn.py`` mutates state but never bumps epoch."""

    id = "RL005"
    name = "mutation-without-epoch-bump"
    rationale = (
        "Every residual/topology mutation inside SDNetwork must bump "
        "self._epoch in the same method, or the VersionedCacheRegistry "
        "serves shortest paths computed on a graph that no longer exists."
    )
    hint = "add `self._epoch += 1` on every state-changing path"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)
    _mutating_attrs = frozenset({"residual", "up"})
    _mutating_calls = frozenset({"allocate", "release"})

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_module("repro/network/sdn.py")

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        mutates = False
        bumps = False
        for child in ast.walk(node):
            if isinstance(child, (ast.Assign, ast.AugAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    for leaf in _assignment_leaves(target):
                        if not isinstance(leaf, ast.Attribute):
                            continue
                        if leaf.attr == "_epoch":
                            bumps = True
                        elif leaf.attr in self._mutating_attrs:
                            mutates = True
            elif isinstance(child, ast.Call):
                func = child.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._mutating_calls
                ):
                    mutates = True
        if mutates and not bumps:
            ctx.report(
                self,
                node,
                f"{node.name}() mutates capacity/topology state without "
                "bumping self._epoch",
            )


# ----------------------------------------------------------------------
# RL006 — phase spans only as context managers
# ----------------------------------------------------------------------

_SPAN_QUALIFIED = frozenset(
    {
        "repro.obs.span",
        "repro.obs.registry.span",
        "repro.obs.registry.MetricsRegistry.span",
    }
)


class SpanOutsideWith(Rule):
    """``obs.span(...)`` used as a bare call instead of ``with obs.span(...)``."""

    id = "RL006"
    name = "span-outside-with"
    rationale = (
        "A MetricsRegistry phase span opened outside a `with` block is "
        "never guaranteed to close; one unbalanced span corrupts the whole "
        "phase hierarchy for the rest of the process."
    )
    hint = "wrap the call: `with _obs_span(\"phase\"): ...`"
    node_types = (ast.Call,)

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.in_package("repro/obs")

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Call)
        qualified = ctx.qualified_call_name(node.func)
        if qualified not in _SPAN_QUALIFIED:
            return
        if id(node) not in ctx.with_context_calls:
            ctx.report(
                self,
                node,
                "phase span opened outside a `with` statement "
                "(unbalanced-span risk)",
            )


# ----------------------------------------------------------------------
# RL007 — wall-clock reads only in the observability layer
# ----------------------------------------------------------------------

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockOutsideObs(Rule):
    """Wall-clock reads outside ``repro/obs`` (benchmarks are never linted).

    The streaming-telemetry aggregators are held to the *same* standard as
    solver code even though they live inside ``repro/obs``:
    ``obs/window.py`` must stay clock-free (windowed values are pure
    functions of the event stream), and ``obs/emitter.py`` — whose
    ``every_seconds`` flush trigger is wall time by contract — is the one
    justified file-level suppression site.
    """

    id = "RL007"
    name = "wall-clock-outside-obs"
    rationale = (
        "Algorithms must be a pure function of (network, request, seed); a "
        "wall-clock read anywhere near a decision path is a reproducibility "
        "hazard.  Timing belongs to repro.obs spans and the benchmarks.  "
        "Engines that *report* measured runtime as a result metric carry a "
        "justified file-level suppression, as does obs/emitter.py (its "
        "every_seconds flush trigger is wall time by contract); "
        "obs/window.py gets no exemption at all — windowed aggregates must "
        "be pure functions of the event stream."
    )
    hint = "use an obs span, or suppress with a justification if the value is a reported metric"
    node_types = (ast.Call,)

    def applies_to(self, ctx: LintContext) -> bool:
        if ctx.in_module("repro/obs/emitter.py", "repro/obs/window.py"):
            return True
        return not ctx.in_package("repro/obs")

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Call)
        qualified = ctx.qualified_call_name(node.func)
        if qualified in _WALL_CLOCK:
            ctx.report(
                self,
                node,
                f"wall-clock read {qualified}() outside the observability "
                "layer",
            )


# ----------------------------------------------------------------------
# RL008 — no bare/overbroad except in solver and engine paths
# ----------------------------------------------------------------------

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


class BroadExceptInSolverPath(Rule):
    """Bare ``except:`` / ``except Exception`` in solver or engine code."""

    id = "RL008"
    name = "broad-except-in-solver-path"
    rationale = (
        "A broad except in a solver or engine swallows the typed "
        "infeasibility/capacity exceptions the admission logic branches "
        "on, converting accounting bugs into silently wrong figures."
    )
    hint = "catch the specific repro.exceptions type the call can raise"
    node_types = (ast.ExceptHandler,)

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_package(
            "repro/core", "repro/simulation", "repro/resilience", "repro/graph"
        )

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            ctx.report(self, node, "bare `except:` in a solver/engine path")
            return
        for exc in self._exception_names(node.type):
            if exc in _BROAD_EXCEPTIONS:
                ctx.report(
                    self,
                    node,
                    f"overbroad `except {exc}` in a solver/engine path",
                )
                return

    @staticmethod
    def _exception_names(expr: ast.expr) -> List[str]:
        if isinstance(expr, ast.Tuple):
            names: List[str] = []
            for element in expr.elts:
                names.extend(BroadExceptInSolverPath._exception_names(element))
            return names
        if isinstance(expr, ast.Name):
            return [expr.id]
        if isinstance(expr, ast.Attribute):
            return [expr.attr]
        return []


# ----------------------------------------------------------------------
# RL011 — AllocationTransaction must commit/rollback on every path
# ----------------------------------------------------------------------

#: The transaction constructor and its re-export path.
_TXN_QUALIFIED = frozenset(
    {
        "repro.network.allocation.AllocationTransaction",
        "repro.network.AllocationTransaction",
    }
)


class TransactionWithoutExitPath(Rule):
    """``AllocationTransaction(...)`` created outside ``with``/``try-finally``.

    The manual ``txn = AllocationTransaction(n); try: ... except
    CapacityExceededError: txn.rollback()`` pattern is path-*insensitive*:
    any exception other than the one caught (a typed infeasibility error
    from deeper in the solver, a ``KeyboardInterrupt`` in a long sweep)
    leaks the partial reservation forever.  ``__exit__`` rolls back
    whenever ``commit()`` was not reached, so the ``with`` form is safe on
    every path; a ``try/finally`` that owns the rollback is equivalent.
    ``AllocationTransaction.adopt(...)`` builds an already-committed
    transaction and is exempt.
    """

    id = "RL011"
    name = "transaction-without-exit-path"
    rationale = (
        "An AllocationTransaction reserves residual capacity the moment "
        "allocate_* is called; unless construction is wrapped in `with` "
        "(or try/finally), any exception path that skips rollback() leaks "
        "the reservation and silently shrinks the network for every later "
        "request — the RL002 ownership story made path-sensitive."
    )
    hint = (
        "use `with AllocationTransaction(network) as txn:` and call "
        "txn.commit() on the success path (__exit__ rolls back otherwise)"
    )
    node_types = (ast.Call,)
    _allowed = ("repro/network/allocation.py",)

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.in_module(*self._allowed)

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Call)
        qualified = ctx.qualified_call_name(node.func)
        if qualified not in _TXN_QUALIFIED:
            return
        if id(node) in ctx.with_context_calls:
            return
        if id(node) in self._try_finally_nodes(ctx):
            return
        ctx.report(
            self,
            node,
            "AllocationTransaction created outside `with`/try-finally; "
            "an unexpected exception before commit() leaks the reservation",
        )

    @staticmethod
    def _try_finally_nodes(ctx: LintContext) -> frozenset:
        """ids of AST nodes covered by a ``try``/``finally``.

        Covered means inside the ``try`` body, or in the statement
        *directly before* it — the idiomatic ``txn = ...; try: ...
        finally: ...`` must construct the transaction one line above the
        ``try`` so the ``finally`` can reference it.
        """
        cached = getattr(ctx, "_rl011_try_finally", None)
        if cached is not None:
            return cached
        ids = set()

        def cover(stmt: ast.stmt) -> None:
            for inner in ast.walk(stmt):
                ids.add(id(inner))

        for outer in ast.walk(ctx.tree):
            for block in ("body", "orelse", "finalbody"):
                statements = getattr(outer, block, None)
                if not isinstance(statements, list):
                    continue
                for index, stmt in enumerate(statements):
                    if isinstance(stmt, ast.Try) and stmt.finalbody:
                        for covered in stmt.body:
                            cover(covered)
                        if index > 0:
                            cover(statements[index - 1])
        frozen = frozenset(ids)
        ctx._rl011_try_finally = frozen  # type: ignore[attr-defined]
        return frozen


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

ALL_RULES: Tuple[Rule, ...] = (
    UncachedShortestPath(),
    ResidualWriteOutsideAllocation(),
    UnseededRandomness(),
    FloatEqualityOnCosts(),
    MutationWithoutEpochBump(),
    SpanOutsideWith(),
    WallClockOutsideObs(),
    BroadExceptInSolverPath(),
    TransactionWithoutExitPath(),
)

_RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}


def get_rule(rule_id: str) -> Rule:
    """Return the rule registered under ``rule_id``.

    Raises:
        KeyError: if no such rule exists.
    """
    return _RULES_BY_ID[rule_id]
