"""Bounded-memory windowed aggregators for streaming telemetry.

Long-running admission services cannot afford end-of-run aggregates: the
streaming engine (ROADMAP item 1) needs p99 admission latency, rolling
admission rates, and per-window counts while the request stream is still
flowing, all in O(1) memory per metric.  This module provides the three
aggregator shapes the emitter and dashboard build on:

- :class:`FixedBucketHistogram` — observations land in a *fixed* set of
  buckets (no per-observation storage), with Prometheus-style cumulative
  ``le`` export and deterministic p50/p90/p99 extraction by linear
  interpolation inside the winning bucket.  Bucket counts are integers, so
  parallel merge (:meth:`MetricsRegistry.merge
  <repro.obs.registry.MetricsRegistry.merge>`) reproduces a serial run's
  counts bit-for-bit for any worker partition of a deterministic value
  stream.
- :class:`EmaRate` — an exponential moving average over a sample stream
  (e.g. per-snapshot admission rate).  Purely arithmetic: the smoothing is
  a function of the sample sequence, never of wall time.
- :class:`SlidingWindowCounter` — a ring of per-tick slots covering the
  last ``window`` ticks; the emitter advances it once per flush to derive
  rolling rates over a bounded horizon.

None of these classes read a clock: ticks, samples, and observations are
supplied by the caller, which is what keeps every derived value a pure
function of the event stream (and thus identical across reruns and worker
counts).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Tuple

__all__ = [
    "DEFAULT_COST_BOUNDS",
    "DEFAULT_LATENCY_BOUNDS",
    "EmaRate",
    "FixedBucketHistogram",
    "SlidingWindowCounter",
]

#: Default bucket upper bounds for latency-shaped observations (seconds).
#: Spans 10 µs to 10 s in a 1–2.5–5 decade ladder; everything above the
#: last bound lands in the overflow bucket.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = (
    0.00001, 0.000025, 0.00005,
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Default bucket upper bounds for cost-shaped observations (operational
#: cost units): a 1–2.5–5 ladder over four decades.
DEFAULT_COST_BOUNDS: Tuple[float, ...] = (
    1.0, 2.5, 5.0,
    10.0, 25.0, 50.0,
    100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


class FixedBucketHistogram:
    """A histogram with fixed bucket boundaries and an overflow bucket.

    ``bounds`` are the inclusive upper edges of the finite buckets
    (Prometheus ``le`` semantics: a value equal to a bound counts in that
    bound's bucket); one extra overflow bucket catches everything larger,
    so ``len(counts) == len(bounds) + 1`` and memory never depends on the
    number of observations.

    Exact ``count``/``sum``/``min``/``max`` ride along so quantile
    estimates can be clamped to the observed range and mean extraction
    stays exact.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(
        self, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS
    ) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError("histogram needs at least one bucket bound")
        for lo, hi in zip(edges, edges[1:]):
            if not lo < hi:
                raise ValueError(
                    f"bucket bounds must be strictly increasing, got {edges}"
                )
        if edges[-1] != edges[-1] or edges[-1] == float("inf"):
            raise ValueError("bucket bounds must be finite")
        self.bounds: Tuple[float, ...] = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    # -- recording ------------------------------------------------------
    def observe(self, value: float) -> None:
        """Fold one observation into its bucket (O(log buckets))."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    # -- extraction -----------------------------------------------------
    @property
    def mean(self) -> float:
        """Exact average observation (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (last == ``count``)."""
        cumulative: List[int] = []
        running = 0
        for bucket in self.counts:
            running += bucket
            cumulative.append(running)
        return cumulative

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolation inside the bucket.

        Deterministic given the bucket counts: the target rank's bucket is
        found by a cumulative walk and the value is linearly interpolated
        between the bucket's edges (the first bucket's lower edge is 0, the
        overflow bucket reports the observed maximum).  Estimates are
        clamped to the observed ``[min, max]`` range.
        """
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        running = 0
        for index, bucket in enumerate(self.counts):
            if bucket == 0:
                continue
            below = running
            running += bucket
            if running >= target:
                if index == len(self.bounds):
                    return self.max
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                fraction = (target - below) / bucket
                estimate = lower + (upper - lower) * fraction
                return max(self.min, min(estimate, self.max))
        return self.max

    def percentiles(self) -> Dict[str, float]:
        """The dashboard trio: p50 / p90 / p99."""
        return {
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    # -- aggregation ----------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for snapshots and JSON export."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }

    def merge(self, data: Mapping[str, object]) -> None:
        """Fold an :meth:`as_dict` payload into this histogram.

        Bucket counts add (integers — merge order never changes them),
        sums add, min/max combine.  The payload's bounds must match
        exactly: merging histograms with different bucket ladders would
        silently misbin.

        Raises:
            ValueError: if the payload's bounds differ from this
                histogram's.
        """
        bounds = tuple(float(b) for b in data["bounds"])  # type: ignore[union-attr]
        if bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{bounds} != {self.bounds}"
            )
        counts = data["counts"]
        for index, value in enumerate(counts):  # type: ignore[arg-type]
            self.counts[index] += int(value)
        merged_count = int(data.get("count", 0))  # type: ignore[arg-type]
        if not merged_count:
            return
        self.count += merged_count
        self.sum += float(data["sum"])  # type: ignore[arg-type]
        if float(data["min"]) < self.min:  # type: ignore[arg-type]
            self.min = float(data["min"])  # type: ignore[arg-type]
        if float(data["max"]) > self.max:  # type: ignore[arg-type]
            self.max = float(data["max"])  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return (
            f"FixedBucketHistogram(buckets={len(self.counts)}, "
            f"count={self.count}, sum={self.sum:.6f})"
        )


class EmaRate:
    """Exponential moving average over an explicit sample stream.

    ``update(sample)`` folds one sample in and returns the new average;
    the first sample initializes the level directly (no zero-bias ramp).
    The smoothing depends only on the sample *sequence* — there is no
    clock anywhere — so two replays of the same stream agree exactly.
    """

    __slots__ = ("alpha", "value", "samples")

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value = 0.0
        self.samples = 0

    def update(self, sample: float) -> float:
        """Fold one sample; returns the updated average."""
        if self.samples == 0:
            self.value = float(sample)
        else:
            self.value += self.alpha * (float(sample) - self.value)
        self.samples += 1
        return self.value

    def __repr__(self) -> str:
        return (
            f"EmaRate(alpha={self.alpha}, value={self.value:.6f}, "
            f"samples={self.samples})"
        )


class SlidingWindowCounter:
    """Event counts over the last ``window`` ticks, in O(window) memory.

    The caller defines what a tick is (the emitter uses one tick per
    flush; a per-request integration would tick per request): ``add``
    accumulates into the current tick's slot, ``advance`` rotates the ring
    and evicts the slot that falls off the horizon.  ``total`` is
    maintained incrementally, so both operations are O(1).
    """

    __slots__ = ("window", "_slots", "_head", "_total", "ticks")

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._slots: List[float] = [0.0] * window
        self._head = 0
        self._total = 0.0
        self.ticks = 0

    def add(self, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into the current tick's slot."""
        self._slots[self._head] += amount
        self._total += amount

    def advance(self, ticks: int = 1) -> None:
        """Move the window forward, evicting slots beyond the horizon."""
        for _ in range(min(ticks, self.window)):
            self._head = (self._head + 1) % self.window
            self._total -= self._slots[self._head]
            self._slots[self._head] = 0.0
        self.ticks += ticks

    @property
    def total(self) -> float:
        """Sum over the slots currently inside the window."""
        return self._total

    @property
    def covered(self) -> int:
        """How many ticks the window currently spans (≤ ``window``)."""
        return min(self.ticks + 1, self.window)

    def state(self) -> dict:
        """JSON-serializable snapshot of the ring (checkpoint support)."""
        return {
            "window": self.window,
            "slots": list(self._slots),
            "head": self._head,
            "ticks": self.ticks,
            # The running total is serialized rather than recomputed: the
            # incremental add/subtract order is part of the bit-identity
            # contract, and a fresh sum() could differ in the last ulp.
            "total": self._total,
        }

    def restore(self, state: dict) -> None:
        """Reset the ring to a :meth:`state` snapshot.

        The snapshot must come from a counter with the same ``window``;
        the derived total is recomputed from the restored slots.
        """
        if state["window"] != self.window:
            raise ValueError(
                f"cannot restore a window-{state['window']} snapshot into "
                f"a window-{self.window} counter"
            )
        self._slots = [float(s) for s in state["slots"]]
        self._head = int(state["head"])
        self.ticks = int(state["ticks"])
        self._total = float(state["total"])

    def rate(self) -> float:
        """Average amount per covered tick."""
        return self._total / self.covered

    def __repr__(self) -> str:
        return (
            f"SlidingWindowCounter(window={self.window}, "
            f"total={self._total:.6f}, ticks={self.ticks})"
        )
