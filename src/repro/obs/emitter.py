# repro-lint: disable-file=RL007 -- the emitter is the one module whose
# *job* is reading the wall clock: every_seconds flush triggers are defined
# in real time by contract (a scrape sink must refresh even while a single
# slow request is in flight).  Everything it computes from the clock stays
# inside the payload's bookkeeping; no metric value depends on it.
"""Periodic snapshot emitter: delta telemetry for long-running streams.

An end-of-run :func:`repro.obs.snapshot` is useless to a service that
never ends.  The :class:`SnapshotEmitter` turns the cumulative registry
into a *stream* of bounded delta payloads:

- the engine calls :meth:`SnapshotEmitter.tick` once per processed
  request; every ``every_requests`` ticks (or ``every_seconds`` wall
  seconds, whichever fires first) the emitter flushes;
- each flush computes **compensated deltas** against a mirror of what has
  already been emitted (``delta`` is nudged by ULPs until
  ``emitted + delta == current`` exactly), so a consumer that sums the
  delta stream in order reconstructs the final cumulative snapshot
  *bit-for-bit* — counters, histogram bucket counts, and float sums alike;
- payloads go to pluggable sinks (:class:`JsonlSink` appends one JSON
  line per delta; :class:`PrometheusSink` rewrites a scrape file with the
  cumulative state) and into a bounded **flight-recorder ring** of the
  last ``ring_size`` payloads, dumped on exception for post-mortems.

Memory is O(metrics + ring_size), independent of stream length: the
mirror holds one float per counter / timer field / histogram bucket, and
the ring is a ``deque(maxlen=...)``.  Used as a context manager the
emitter final-flushes on clean exit and crash-dumps the ring (plus an
``"exception"`` flush) when the block raises.
"""

from __future__ import annotations

import json
import math
import time
from collections import deque
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.obs import registry as _registry
from repro.obs.tracing import trace_instant
from repro.obs.window import SlidingWindowCounter

__all__ = [
    "JsonlSink",
    "PrometheusSink",
    "SnapshotEmitter",
    "sum_deltas",
]

#: Counter keys the emitter derives rolling rates from (engine names).
_ADMITTED_KEY = "online.admitted"
_DECISIONS_KEY = "online.decisions"


def _exact_delta(current: float, emitted: float) -> float:
    """The delta ``d`` with ``emitted + d == current`` *exactly*.

    ``current - emitted`` is the obvious candidate and is exact whenever
    Sterbenz's lemma applies (``current/2 <= emitted <= 2*current``) —
    i.e. on every flush after a series has stopped doubling.  When the
    naive delta rounds, nudge it one ULP at a time toward the target;
    monotone telemetry series always reach it within a few steps.  The
    bounded fallback concedes a sub-ULP drift rather than looping.
    """
    delta = current - emitted
    if emitted + delta == current:
        return delta
    for _ in range(64):
        toward = math.inf if emitted + delta < current else -math.inf
        delta = math.nextafter(delta, toward)
        if emitted + delta == current:
            return delta
    return current - emitted


class JsonlSink:
    """Appends one compact JSON line per delta payload to ``path``."""

    __slots__ = ("path", "_handle")

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")

    def emit(
        self,
        delta: Mapping[str, Any],
        cumulative: Mapping[str, Mapping],
    ) -> None:
        """Write ``delta`` as one line (the cumulative state is unused)."""
        self._handle.write(json.dumps(delta, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file handle."""
        self._handle.close()


class PrometheusSink:
    """Rewrites a scrape file with the cumulative state on every flush.

    Prometheus scraping wants current totals, not deltas, so this sink
    ignores the delta payload and re-renders the full snapshot through
    :func:`repro.obs.export.write_prometheus` — an atomic-enough refresh
    for a node-exporter-style textfile collector.
    """

    __slots__ = ("path",)

    def __init__(self, path: str) -> None:
        self.path = path

    def emit(
        self,
        delta: Mapping[str, Any],
        cumulative: Mapping[str, Mapping],
    ) -> None:
        """Render ``cumulative`` into the scrape file."""
        from repro.obs.export import write_prometheus

        write_prometheus(cumulative, self.path)

    def close(self) -> None:
        """Nothing to release — each flush reopens the file."""


class SnapshotEmitter:
    """Flushes registry deltas every N requests or T seconds.

    Parameters:
        every_requests: flush after this many :meth:`tick` calls since
            the previous flush (``None`` disables the count trigger).
        every_seconds: flush when this much wall time has passed since
            the previous flush, checked on each tick (``None`` disables
            the timer trigger).
        ring_size: how many recent payloads the flight recorder keeps.
        sinks: objects with ``emit(delta, cumulative)`` (and optionally
            ``close()``) receiving every flush.
        crash_dump_path: where :meth:`dump_ring` writes when the emitter
            is used as a context manager and the block raises.
        source: snapshot supplier, defaulting to the process registry —
            injectable for tests.
        clock: monotonic-seconds supplier for the timer trigger.
        rate_window: how many flushes the rolling admission rate spans.
    """

    __slots__ = (
        "every_requests",
        "every_seconds",
        "ring_size",
        "sinks",
        "crash_dump_path",
        "_source",
        "_clock",
        "_ring",
        "_emitted",
        "_seq",
        "_ticks_total",
        "_ticks_since_flush",
        "_last_flush_at",
        "_window_requests",
        "_window_admitted",
        "_window_decisions",
        "closed",
    )

    def __init__(
        self,
        every_requests: Optional[int] = 1000,
        every_seconds: Optional[float] = None,
        ring_size: int = 32,
        sinks: Sequence[Any] = (),
        crash_dump_path: Optional[str] = None,
        source: Optional[Callable[[], Dict[str, Dict]]] = None,
        clock: Callable[[], float] = time.monotonic,
        rate_window: int = 8,
    ) -> None:
        if every_requests is not None and every_requests < 1:
            raise ValueError(
                f"every_requests must be >= 1, got {every_requests}"
            )
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError(
                f"every_seconds must be > 0, got {every_seconds}"
            )
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.every_requests = every_requests
        self.every_seconds = every_seconds
        self.ring_size = ring_size
        self.sinks = list(sinks)
        self.crash_dump_path = crash_dump_path
        self._source = _registry.snapshot if source is None else source
        self._clock = clock
        self._ring: deque = deque(maxlen=ring_size)
        # Mirror of everything emitted so far; flat float per counter,
        # per timer field, per histogram scalar/bucket.
        self._emitted: Dict[str, float] = {}
        self._seq = 0
        self._ticks_total = 0
        self._ticks_since_flush = 0
        self._last_flush_at = clock()
        self._window_requests = SlidingWindowCounter(rate_window)
        self._window_admitted = SlidingWindowCounter(rate_window)
        self._window_decisions = SlidingWindowCounter(rate_window)
        self.closed = False

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "SnapshotEmitter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.flush("exception")
            if self.crash_dump_path is not None:
                self.dump_ring(self.crash_dump_path)
            self.close()
            return False
        self.finish()
        return False

    def finish(self) -> Optional[Dict[str, Any]]:
        """Final-flush (always, even with nothing pending) and close."""
        payload = self.flush("final")
        self.close()
        return payload

    def close(self) -> None:
        """Close every sink that supports it (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    # -- stream interface -----------------------------------------------
    @property
    def seq(self) -> int:
        """How many payloads have been flushed."""
        return self._seq

    @property
    def total_requests(self) -> int:
        """Total ticks observed over the emitter's lifetime."""
        return self._ticks_total

    def tick(self, n: int = 1) -> Optional[Dict[str, Any]]:
        """Count ``n`` processed requests; flush if a trigger fires.

        Returns the flushed payload, or ``None`` when no trigger fired.
        """
        self._ticks_total += n
        self._ticks_since_flush += n
        if (
            self.every_requests is not None
            and self._ticks_since_flush >= self.every_requests
        ):
            return self.flush("interval")
        if (
            self.every_seconds is not None
            and self._clock() - self._last_flush_at >= self.every_seconds
        ):
            return self.flush("timer")
        return None

    def flush(self, reason: str = "manual") -> Dict[str, Any]:
        """Emit one delta payload against the current snapshot."""
        cumulative = self._source()
        payload = self._delta_payload(cumulative, reason)
        self._ring.append(payload)
        for sink in self.sinks:
            sink.emit(payload, cumulative)
        trace_instant(
            "emitter.flush", seq=payload["seq"], reason=reason
        )
        self._seq += 1
        self._ticks_since_flush = 0
        self._last_flush_at = self._clock()
        return payload

    # -- checkpoint support ----------------------------------------------
    # _ring (flight recorder), _last_flush_at (wall-clock anchor, re-armed
    # from "now" on restore) and closed are deliberately not checkpointed;
    # see the docstring's delta contract for why resume stays bit-exact.
    # repro-lint: disable=RL009 — justified above
    def state(self) -> Dict[str, Any]:
        """JSON-serializable emitter state for checkpoint/restore.

        Captures everything the delta contract depends on — the emitted
        mirror, the sequence number, tick counts, and the rolling-rate
        windows — but *not* the sinks, the flight-recorder ring, or the
        wall-clock anchor (a restored emitter re-arms its timer trigger
        from "now").  A restored emitter continues the delta stream
        exactly where the checkpointed one stopped: summing the combined
        payload streams still rebuilds the cumulative registry bit-for-bit
        for every value-based metric (wall-clock-valued histograms agree
        on totals only, as in parallel merges).
        """
        return {
            "emitted": dict(self._emitted),
            "seq": self._seq,
            "ticks_total": self._ticks_total,
            "ticks_since_flush": self._ticks_since_flush,
            "window_requests": self._window_requests.state(),
            "window_admitted": self._window_admitted.state(),
            "window_decisions": self._window_decisions.state(),
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Adopt a :meth:`state` snapshot (the mirror must match the
        registry contents the caller restored alongside it)."""
        self._emitted = {
            key: float(value) for key, value in state["emitted"].items()
        }
        self._seq = int(state["seq"])
        self._ticks_total = int(state["ticks_total"])
        self._ticks_since_flush = int(state["ticks_since_flush"])
        self._window_requests.restore(state["window_requests"])
        self._window_admitted.restore(state["window_admitted"])
        self._window_decisions.restore(state["window_decisions"])
        self._last_flush_at = self._clock()

    # -- flight recorder -------------------------------------------------
    def ring(self) -> List[Dict[str, Any]]:
        """The last ``ring_size`` payloads, oldest first."""
        return list(self._ring)

    def dump_ring(self, path: str) -> None:
        """Write the flight-recorder ring as JSONL (one payload/line)."""
        with open(path, "w", encoding="utf-8") as handle:
            for payload in self._ring:
                handle.write(json.dumps(payload, sort_keys=True) + "\n")

    # -- delta computation ----------------------------------------------
    def _take(self, key: str, current: float) -> float:
        """Exact-compensated delta for one mirrored scalar."""
        emitted = self._emitted.get(key, 0.0)
        delta = _exact_delta(current, emitted)
        self._emitted[key] = emitted + delta
        return delta

    def _delta_payload(
        self, cumulative: Mapping[str, Mapping], reason: str
    ) -> Dict[str, Any]:
        counters: Dict[str, float] = {}
        for name, value in cumulative.get("counters", {}).items():
            delta = self._take(f"c:{name}", value)
            if delta:
                counters[name] = delta
        timers: Dict[str, Dict[str, float]] = {}
        for name, stat in cumulative.get("timers", {}).items():
            count = self._take(f"t:{name}:count", stat["count"])
            if not count:
                continue
            timers[name] = {
                "count": int(count),
                "total": self._take(f"t:{name}:total", stat["total"]),
            }
        histograms: Dict[str, Dict[str, Any]] = {}
        for name, data in cumulative.get("histograms", {}).items():
            count = self._take(f"h:{name}:count", data["count"])
            if not count:
                continue
            histograms[name] = {
                "bounds": list(data["bounds"]),
                "counts": [
                    int(self._take(f"h:{name}:b{index}", bucket))
                    for index, bucket in enumerate(data["counts"])
                ],
                "count": int(count),
                "sum": self._take(f"h:{name}:sum", data["sum"]),
                # min/max are not additive: these are the *cumulative*
                # values, take-last semantics (like gauges).
                "min": data["min"],
                "max": data["max"],
            }
        self._window_requests.add(self._ticks_since_flush)
        self._window_admitted.add(counters.get(_ADMITTED_KEY, 0.0))
        self._window_decisions.add(counters.get(_DECISIONS_KEY, 0.0))
        decisions = self._window_decisions.total
        derived = {
            "window_requests": self._window_requests.total,
            "window_admitted": self._window_admitted.total,
            "window_admission_rate": (
                self._window_admitted.total / decisions if decisions else 0.0
            ),
        }
        self._window_requests.advance()
        self._window_admitted.advance()
        self._window_decisions.advance()
        return {
            "seq": self._seq,
            "reason": reason,
            "requests": self._ticks_since_flush,
            "total_requests": self._ticks_total,
            "counters": counters,
            "gauges": dict(cumulative.get("gauges", {})),
            "timers": timers,
            "histograms": histograms,
            "derived": derived,
        }

    def __repr__(self) -> str:
        return (
            f"SnapshotEmitter(seq={self._seq}, "
            f"total_requests={self._ticks_total}, "
            f"ring={len(self._ring)}/{self.ring_size})"
        )


def sum_deltas(payloads: Sequence[Mapping[str, Any]]) -> Dict[str, Dict]:
    """Reconstruct a cumulative snapshot by summing delta payloads.

    The consumer half of the emitter contract: folding the payloads **in
    emission order** with plain ``+=`` reproduces the emitter's mirror,
    which the compensated deltas pin to the registry's final cumulative
    state bit-for-bit (counters, histogram bucket counts/sums, timer
    count/total; gauges and histogram min/max take the last value; timer
    min/max are not part of the delta stream).
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    timers: Dict[str, Dict[str, float]] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for payload in payloads:
        for name, delta in payload.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + delta
        gauges.update(payload.get("gauges", {}))
        for name, stat in payload.get("timers", {}).items():
            into = timers.setdefault(name, {"count": 0, "total": 0.0})
            into["count"] += stat["count"]
            into["total"] += stat["total"]
        for name, data in payload.get("histograms", {}).items():
            into = histograms.get(name)
            if into is None:
                histograms[name] = {
                    "bounds": list(data["bounds"]),
                    "counts": list(data["counts"]),
                    "count": data["count"],
                    "sum": data["sum"],
                    "min": data["min"],
                    "max": data["max"],
                }
                continue
            for index, bucket in enumerate(data["counts"]):
                into["counts"][index] += bucket
            into["count"] += data["count"]
            into["sum"] += data["sum"]
            into["min"] = data["min"]
            into["max"] = data["max"]
    return {
        "counters": counters,
        "gauges": gauges,
        "timers": timers,
        "histograms": histograms,
    }
