"""Process-local metrics: counters, gauges, and nested phase timers.

One :class:`MetricsRegistry` lives per process.  Solver hot paths are
instrumented with the *module-level* helpers :func:`inc`, :func:`gauge`,
:func:`observe`, and :func:`span` — never with direct registry access — so
that the disabled path costs exactly one global-flag test per call and no
dictionary lookups:

- when telemetry is **disabled** (the default), :func:`span` returns a
  shared :data:`NULL_SPAN` singleton whose ``__enter__``/``__exit__`` do
  nothing, and :func:`inc`/:func:`gauge`/:func:`observe` return after a
  single ``if not _ENABLED`` check;
- when **enabled**, counters land in plain dicts and spans record wall
  time under a dotted path built from the enclosing span stack, e.g.
  ``appro_multi.evaluate.kmb.prune`` — the nesting the phase table renders.

The registry is deliberately *not* thread-safe: solver runs are sequential
within a process, and cross-process aggregation goes through
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.merge` (see
:mod:`repro.simulation.parallel`, which ships worker snapshots back to the
parent so ``--workers N`` reports the same totals as a serial run).
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "TimerStat",
    "counters",
    "counters_since",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "inc",
    "merge",
    "observe",
    "registry",
    "reset",
    "snapshot",
    "span",
]


class TimerStat:
    """Aggregate of one timer/histogram series: count, total, min, max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the aggregate."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for snapshots and JSON export."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return (
            f"TimerStat(count={self.count}, total={self.total:.6f}, "
            f"min={self.min if self.count else 0.0:.6f}, max={self.max:.6f})"
        )


class _NullSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The singleton returned by :func:`span` while telemetry is disabled.
NULL_SPAN = _NullSpan()


class Span:
    """A timed phase; nests by joining names with ``.`` along the stack.

    Entering pushes the dotted path onto the owning registry's span stack;
    exiting pops it and records the elapsed wall time under that path.
    Exceptions propagate (the duration is still recorded), so a span is
    safe around code that may raise ``InfeasibleRequestError`` and friends.
    """

    __slots__ = ("_registry", "name", "path", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self.name = name
        self.path = name
        self._start = 0.0

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack
        self.path = f"{stack[-1]}.{self.name}" if stack else self.name
        stack.append(self.path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self._start
        self._registry._span_stack.pop()
        self._registry.observe(self.path, elapsed)
        return False


class MetricsRegistry:
    """Named counters, gauges, and timers with snapshot/merge support.

    Counters are monotone floats (merge = add); gauges are level samples
    (merge = overwrite with the incoming value); timers aggregate span
    durations (merge = combine count/total/min/max).  The merge rules keep
    parent-merged worker snapshots additive, which is what makes the
    parallel runner's totals equal to a serial run's.
    """

    __slots__ = ("counters", "gauges", "timers", "_span_stack")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, TimerStat] = {}
        self._span_stack: List[str] = []

    # -- recording ------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold one duration/sample into timer ``name``."""
        stat = self.timers.get(name)
        if stat is None:
            stat = TimerStat()
            self.timers[name] = stat
        stat.add(value)

    def span(self, name: str) -> Span:
        """Return a context manager timing one (possibly nested) phase."""
        return Span(self, name)

    # -- aggregation ----------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Return a picklable plain-dict copy of the current state."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {
                name: stat.as_dict() for name, stat in self.timers.items()
            },
        }

    def merge(self, snap: Mapping[str, Mapping]) -> None:
        """Fold a :meth:`snapshot` payload into this registry.

        Counters add, gauges overwrite, timers combine — so merging the
        per-point snapshots of a worker pool reproduces the counters a
        serial run would have accumulated in place.
        """
        for name, value in snap.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            self.gauges[name] = value
        for name, data in snap.get("timers", {}).items():
            stat = self.timers.get(name)
            if stat is None:
                stat = TimerStat()
                self.timers[name] = stat
            count = int(data.get("count", 0))
            if not count:
                continue
            stat.count += count
            stat.total += data["total"]
            if data["min"] < stat.min:
                stat.min = data["min"]
            if data["max"] > stat.max:
                stat.max = data["max"]

    def clear(self) -> None:
        """Drop every metric (the span stack survives: clears mid-span are
        allowed and currently open spans still record on exit)."""
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, timers={len(self.timers)})"
        )


#: The process-local registry all module-level helpers write to.
_REGISTRY = MetricsRegistry()

#: Global enable flag — the *only* state the disabled hot path reads.
_ENABLED = False


def enable() -> None:
    """Turn telemetry recording on for this process."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn telemetry recording off (the near-zero-cost default)."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return _ENABLED


def registry() -> MetricsRegistry:
    """The process-local registry (for tests and exporters)."""
    return _REGISTRY


def span(name: str):
    """Time a phase: ``with span("kmb"): ...`` — no-op when disabled."""
    if not _ENABLED:
        return NULL_SPAN
    return Span(_REGISTRY, name)


def inc(name: str, amount: float = 1.0) -> None:
    """Bump a counter — no-op when disabled."""
    if not _ENABLED:
        return
    counters = _REGISTRY.counters
    counters[name] = counters.get(name, 0.0) + amount


def gauge(name: str, value: float) -> None:
    """Set a gauge — no-op when disabled."""
    if not _ENABLED:
        return
    _REGISTRY.gauges[name] = value


def observe(name: str, value: float) -> None:
    """Record one timer observation — no-op when disabled."""
    if not _ENABLED:
        return
    _REGISTRY.observe(name, value)


def snapshot() -> Dict[str, Dict]:
    """Snapshot the process-local registry."""
    return _REGISTRY.snapshot()


def merge(snap: Mapping[str, Mapping]) -> None:
    """Merge a worker snapshot into the process-local registry."""
    _REGISTRY.merge(snap)


def reset() -> None:
    """Clear the process-local registry."""
    _REGISTRY.clear()


def counters() -> Dict[str, float]:
    """A copy of the current counter values."""
    return dict(_REGISTRY.counters)


def counters_since(before: Optional[Mapping[str, float]]) -> Dict[str, float]:
    """Counter deltas accumulated since a :func:`counters` baseline.

    Returns only the counters that changed; with ``before=None`` (telemetry
    was disabled when the baseline would have been taken) returns ``{}``.
    """
    if before is None:
        return {}
    delta: Dict[str, float] = {}
    for name, value in _REGISTRY.counters.items():
        changed = value - before.get(name, 0.0)
        if changed:
            delta[name] = changed
    return delta
