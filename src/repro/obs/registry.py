"""Process-local metrics: counters, gauges, and nested phase timers.

One :class:`MetricsRegistry` lives per process.  Solver hot paths are
instrumented with the *module-level* helpers :func:`inc`, :func:`gauge`,
:func:`observe`, and :func:`span` — never with direct registry access — so
that the disabled path costs exactly one global-flag test per call and no
dictionary lookups:

- when telemetry is **disabled** (the default), :func:`span` returns a
  shared :data:`NULL_SPAN` singleton whose ``__enter__``/``__exit__`` do
  nothing, and :func:`inc`/:func:`gauge`/:func:`observe` return after a
  single ``if not _ENABLED`` check;
- when **enabled**, counters land in plain dicts and spans record wall
  time under a dotted path built from the enclosing span stack, e.g.
  ``appro_multi.evaluate.kmb.prune`` — the nesting the phase table renders.

The registry is deliberately *not* thread-safe: solver runs are sequential
within a process, and cross-process aggregation goes through
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.merge` (see
:mod:`repro.simulation.parallel`, which ships worker snapshots back to the
parent so ``--workers N`` reports the same totals as a serial run).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional

from repro.obs.window import DEFAULT_LATENCY_BOUNDS, FixedBucketHistogram

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "TimerStat",
    "counters",
    "counters_since",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "hist",
    "inc",
    "merge",
    "observe",
    "registry",
    "reset",
    "snapshot",
    "span",
]


class TimerStat:
    """Aggregate of one timer/histogram series: count, total, min, max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the aggregate."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for snapshots and JSON export."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return (
            f"TimerStat(count={self.count}, total={self.total:.6f}, "
            f"min={self.min if self.count else 0.0:.6f}, max={self.max:.6f})"
        )


#: Bound once so the span hot path pays a global load, not an attribute
#: chain, for every timestamp.
_now = time.perf_counter


class _NullSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type=None, exc=None, tb=None) -> bool:
        return False


#: The singleton returned by :func:`span` while telemetry is disabled.
NULL_SPAN = _NullSpan()


class Span:
    """A timed phase; nests by joining names with ``.`` along the stack.

    Entering pushes the dotted path onto the owning registry's span stack;
    exiting pops it and records the elapsed wall time under that path.
    Exceptions propagate (the duration is still recorded), so a span is
    safe around code that may raise ``InfeasibleRequestError`` and friends.

    Instances are recycled per name via the registry's span pool (the
    streaming-overhead contract counts every allocation on the hot path),
    so ``_active`` guards the rare recursive re-entry of one name: a live
    pooled span is never handed out twice.
    """

    __slots__ = ("_registry", "name", "path", "_start", "_active")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self.name = name
        self.path = name
        self._start = 0.0
        self._active = False

    def __enter__(self) -> "Span":
        self._active = True
        stack = self._registry._span_stack
        self.path = f"{stack[-1]}.{self.name}" if stack else self.name
        stack.append(self.path)
        self._start = _now()
        return self

    def __exit__(self, exc_type=None, exc=None, tb=None) -> bool:
        end = _now()
        registry = self._registry
        registry._span_stack.pop()
        path = self.path
        stat = registry.timers.get(path)
        if stat is None:
            stat = TimerStat()
            registry.timers[path] = stat
        stat.add(end - self._start)
        self._active = False
        sink = _TRACE_SINK
        if sink is not None:
            sink.add_span(path, self._start, end)
        return False


class MetricsRegistry:
    """Named counters, gauges, and timers with snapshot/merge support.

    Counters are monotone floats (merge = add); gauges are level samples
    (merge = overwrite with the incoming value); timers aggregate span
    durations (merge = combine count/total/min/max).  The merge rules keep
    parent-merged worker snapshots additive, which is what makes the
    parallel runner's totals equal to a serial run's.
    """

    __slots__ = (
        "counters",
        "gauges",
        "timers",
        "histograms",
        "_span_stack",
        "_span_pool",
    )

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, TimerStat] = {}
        self.histograms: Dict[str, FixedBucketHistogram] = {}
        self._span_stack: List[str] = []
        self._span_pool: Dict[str, Span] = {}

    # -- recording ------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold one duration/sample into timer ``name``."""
        stat = self.timers.get(name)
        if stat is None:
            stat = TimerStat()
            self.timers[name] = stat
        stat.add(value)

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> FixedBucketHistogram:
        """Get (or create with ``bounds``) the histogram named ``name``.

        ``bounds`` only matters at creation; an existing histogram keeps
        its ladder (re-registration with different bounds is ignored, the
        same way a counter's first increment fixes its identity).
        """
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = FixedBucketHistogram(
                DEFAULT_LATENCY_BOUNDS if bounds is None else bounds
            )
            self.histograms[name] = histogram
        return histogram

    def hist(
        self,
        name: str,
        value: float,
        bounds: Optional[Iterable[float]] = None,
    ) -> None:
        """Fold one observation into histogram ``name`` (creating it)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histogram(name, bounds)
        histogram.observe(value)

    def span(self, name: str) -> Span:
        """Return a context manager timing one (possibly nested) phase.

        Spans are pooled per name: the hot decision loop opens the same
        few names thousands of times per run, and recycling the instance
        keeps the per-span cost to dict lookups and two clock reads.  A
        name that is re-entered while still live (recursion) gets a fresh
        instance, so nesting stays correct.
        """
        pooled = self._span_pool.get(name)
        if pooled is not None and not pooled._active:
            return pooled
        pooled = Span(self, name)
        self._span_pool[name] = pooled
        return pooled

    # -- aggregation ----------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Return a picklable plain-dict copy of the current state."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {
                name: stat.as_dict() for name, stat in self.timers.items()
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in self.histograms.items()
            },
        }

    def merge(self, snap: Mapping[str, Mapping]) -> None:
        """Fold a :meth:`snapshot` payload into this registry.

        Counters add, gauges overwrite, timers combine — so merging the
        per-point snapshots of a worker pool reproduces the counters a
        serial run would have accumulated in place.
        """
        for name, value in snap.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            self.gauges[name] = value
        for name, data in snap.get("timers", {}).items():
            stat = self.timers.get(name)
            if stat is None:
                stat = TimerStat()
                self.timers[name] = stat
            count = int(data.get("count", 0))
            if not count:
                continue
            stat.count += count
            stat.total += data["total"]
            if data["min"] < stat.min:
                stat.min = data["min"]
            if data["max"] > stat.max:
                stat.max = data["max"]
        for name, data in snap.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = FixedBucketHistogram(data["bounds"])
                self.histograms[name] = histogram
            histogram.merge(data)

    def clear(self) -> None:
        """Drop every metric (the span stack survives: clears mid-span are
        allowed and currently open spans still record on exit)."""
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()
        self.histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, timers={len(self.timers)})"
        )


#: The process-local registry all module-level helpers write to.
_REGISTRY = MetricsRegistry()

#: Global enable flag — the *only* state the disabled hot path reads.
_ENABLED = False

#: The active trace log (an object with ``add_span(path, start, end)``),
#: installed by :func:`repro.obs.tracing.start_trace`.  ``None`` while
#: tracing is off, so a closing span pays one global read to find out.
_TRACE_SINK = None


def _set_trace_sink(sink) -> None:
    """Install (or clear, with ``None``) the span trace sink."""
    global _TRACE_SINK
    _TRACE_SINK = sink


def enable() -> None:
    """Turn telemetry recording on for this process."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn telemetry recording off (the near-zero-cost default)."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return _ENABLED


def registry() -> MetricsRegistry:
    """The process-local registry (for tests and exporters)."""
    return _REGISTRY


def span(name: str):
    """Time a phase: ``with span("kmb"): ...`` — no-op when disabled."""
    if not _ENABLED:
        return NULL_SPAN
    return _REGISTRY.span(name)


def inc(name: str, amount: float = 1.0) -> None:
    """Bump a counter — no-op when disabled."""
    if not _ENABLED:
        return
    counters = _REGISTRY.counters
    counters[name] = counters.get(name, 0.0) + amount


def gauge(name: str, value: float) -> None:
    """Set a gauge — no-op when disabled."""
    if not _ENABLED:
        return
    _REGISTRY.gauges[name] = value


def observe(name: str, value: float) -> None:
    """Record one timer observation — no-op when disabled."""
    if not _ENABLED:
        return
    _REGISTRY.observe(name, value)


def hist(
    name: str, value: float, bounds: Optional[Iterable[float]] = None
) -> None:
    """Fold one observation into a fixed-bucket histogram — no-op when
    disabled.  ``bounds`` only applies if the histogram does not exist yet
    (see :meth:`MetricsRegistry.histogram`)."""
    if not _ENABLED:
        return
    _REGISTRY.hist(name, value, bounds)


def snapshot() -> Dict[str, Dict]:
    """Snapshot the process-local registry."""
    return _REGISTRY.snapshot()


def merge(snap: Mapping[str, Mapping]) -> None:
    """Merge a worker snapshot into the process-local registry."""
    _REGISTRY.merge(snap)


def reset() -> None:
    """Clear the process-local registry."""
    _REGISTRY.clear()


def counters() -> Dict[str, float]:
    """A copy of the current counter values."""
    return dict(_REGISTRY.counters)


def counters_since(before: Optional[Mapping[str, float]]) -> Dict[str, float]:
    """Counter deltas accumulated since a :func:`counters` baseline.

    Returns only the counters that *grew*; with ``before=None`` (telemetry
    was disabled when the baseline would have been taken) returns ``{}``.
    Deltas are floored at zero: a counter that appears only in the
    ``before`` baseline (or shrank below it) — e.g. because the registry
    was :func:`reset` between the two readings — contributes nothing
    instead of a negative delta or a ``KeyError``.
    """
    if before is None:
        return {}
    delta: Dict[str, float] = {}
    for name, value in _REGISTRY.counters.items():
        changed = value - before.get(name, 0.0)
        if changed > 0:
            delta[name] = changed
    return delta
