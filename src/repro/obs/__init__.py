"""Observability: solver-wide counters, phase spans, and exporters.

The standing telemetry harness every perf/robustness change reports
against (see ``docs/OBSERVABILITY.md`` for the metric catalogue, the span
hierarchy, the overhead contract, and the exporter formats).

Usage from instrumented code (hot-path contract: import the helpers once
at module top, call them unconditionally — they no-op while disabled)::

    from repro.obs import inc as _obs_inc, span as _obs_span

    with _obs_span("kmb"):
        _obs_inc("kmb.calls")
        ...

Usage from drivers::

    from repro import obs

    obs.enable()
    ...run experiments...
    payload = obs.snapshot()
"""

from repro.obs.dashboard import DashboardState, render, sparkline, watch
from repro.obs.emitter import (
    JsonlSink,
    PrometheusSink,
    SnapshotEmitter,
    sum_deltas,
)
from repro.obs.export import (
    parse_prometheus,
    render_phase_table,
    to_chrome_trace,
    to_json,
    to_prometheus,
    write_chrome_trace,
    write_json,
    write_prometheus,
)
from repro.obs.registry import (
    NULL_SPAN,
    MetricsRegistry,
    Span,
    TimerStat,
    counters,
    counters_since,
    disable,
    enable,
    enabled,
    gauge,
    hist,
    inc,
    merge,
    observe,
    registry,
    reset,
    snapshot,
    span,
)
from repro.obs.tracing import (
    TraceLog,
    active_trace,
    current_request,
    request_scope,
    start_trace,
    stop_trace,
    trace_instant,
)
from repro.obs.window import (
    DEFAULT_COST_BOUNDS,
    DEFAULT_LATENCY_BOUNDS,
    EmaRate,
    FixedBucketHistogram,
    SlidingWindowCounter,
)

__all__ = [
    "DEFAULT_COST_BOUNDS",
    "DEFAULT_LATENCY_BOUNDS",
    "DashboardState",
    "EmaRate",
    "FixedBucketHistogram",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_SPAN",
    "PrometheusSink",
    "SlidingWindowCounter",
    "SnapshotEmitter",
    "Span",
    "TimerStat",
    "TraceLog",
    "active_trace",
    "counters",
    "counters_since",
    "current_request",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "hist",
    "inc",
    "merge",
    "observe",
    "parse_prometheus",
    "registry",
    "render",
    "render_phase_table",
    "request_scope",
    "reset",
    "snapshot",
    "span",
    "sparkline",
    "start_trace",
    "stop_trace",
    "sum_deltas",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
    "trace_instant",
    "watch",
    "write_chrome_trace",
    "write_json",
    "write_prometheus",
]
