"""Observability: solver-wide counters, phase spans, and exporters.

The standing telemetry harness every perf/robustness change reports
against (see ``docs/OBSERVABILITY.md`` for the metric catalogue, the span
hierarchy, the overhead contract, and the exporter formats).

Usage from instrumented code (hot-path contract: import the helpers once
at module top, call them unconditionally — they no-op while disabled)::

    from repro.obs import inc as _obs_inc, span as _obs_span

    with _obs_span("kmb"):
        _obs_inc("kmb.calls")
        ...

Usage from drivers::

    from repro import obs

    obs.enable()
    ...run experiments...
    payload = obs.snapshot()
"""

from repro.obs.export import (
    parse_prometheus,
    render_phase_table,
    to_json,
    to_prometheus,
    write_json,
    write_prometheus,
)
from repro.obs.registry import (
    NULL_SPAN,
    MetricsRegistry,
    Span,
    TimerStat,
    counters,
    counters_since,
    disable,
    enable,
    enabled,
    gauge,
    inc,
    merge,
    observe,
    registry,
    reset,
    snapshot,
    span,
)

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "TimerStat",
    "counters",
    "counters_since",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "inc",
    "merge",
    "observe",
    "parse_prometheus",
    "registry",
    "render_phase_table",
    "reset",
    "snapshot",
    "span",
    "to_json",
    "to_prometheus",
    "write_json",
    "write_prometheus",
]
