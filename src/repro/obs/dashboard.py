"""Live ASCII dashboard over the emitter's delta-snapshot stream.

``repro watch run.jsonl`` (or any online experiment's ``--dashboard``
flag) renders a small terminal panel from the same JSONL payloads the
:class:`repro.obs.emitter.SnapshotEmitter` writes — no second telemetry
path, no extra instrumentation cost: the dashboard is a pure consumer.

:class:`DashboardState` folds delta payloads exactly the way
:func:`repro.obs.emitter.sum_deltas` does (histograms through
:meth:`FixedBucketHistogram.merge
<repro.obs.window.FixedBucketHistogram.merge>`, since delta payloads
carry additive bucket counts plus cumulative min/max), so everything on
screen — rolling admission rate, cumulative cost, p50/p90/p99 admission
latency, cache hit ratios — is derived state, reproducible from the
stream alone.  :func:`render` draws one frame; :func:`watch` tails a
JSONL file and redraws per payload.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, Mapping, Optional, TextIO

from repro.obs.window import FixedBucketHistogram

__all__ = [
    "DashboardState",
    "render",
    "sparkline",
    "watch",
]

#: Eight-level bar glyphs for the trend sparkline.
_SPARK = "▁▂▃▄▅▆▇█"

#: Histogram names the latency / cost panels read (engine names).
_LATENCY_HIST = "engine.admission_seconds"
_COST_HIST = "engine.tree_cost"


def sparkline(values: Iterable[float]) -> str:
    """Render ``values`` as a fixed-alphabet unicode sparkline."""
    series = [float(v) for v in values]
    if not series:
        return ""
    low = min(series)
    span = max(series) - low
    if span <= 0:
        return _SPARK[0] * len(series)
    scale = (len(_SPARK) - 1) / span
    return "".join(_SPARK[int((v - low) * scale)] for v in series)


def _ratio(hits: float, misses: float) -> Optional[float]:
    total = hits + misses
    return hits / total if total else None


def _seconds(value: float) -> str:
    """Human latency label: µs/ms/s, three significant digits."""
    if value < 0.001:
        return f"{value * 1e6:.3g}µs"
    if value < 1.0:
        return f"{value * 1e3:.3g}ms"
    return f"{value:.3g}s"


class DashboardState:
    """Derived state folded from an ordered stream of delta payloads."""

    __slots__ = (
        "counters",
        "gauges",
        "histograms",
        "rate_history",
        "last",
        "payloads",
    )

    def __init__(self, trend_width: int = 32) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, FixedBucketHistogram] = {}
        self.rate_history: Deque[float] = deque(maxlen=trend_width)
        self.last: Optional[Mapping[str, Any]] = None
        self.payloads = 0

    def consume(self, payload: Mapping[str, Any]) -> None:
        """Fold one emitter delta payload into the cumulative view."""
        for name, delta in payload.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + delta
        self.gauges.update(payload.get("gauges", {}))
        for name, data in payload.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = FixedBucketHistogram(data["bounds"])
                self.histograms[name] = histogram
            histogram.merge(data)
        derived = payload.get("derived", {})
        self.rate_history.append(derived.get("window_admission_rate", 0.0))
        self.last = payload
        self.payloads += 1

    # -- panel values ----------------------------------------------------
    @property
    def admission_rate(self) -> float:
        """Rolling admission rate from the latest payload's window."""
        return self.rate_history[-1] if self.rate_history else 0.0

    def cache_ratios(self) -> Dict[str, Optional[float]]:
        """Hit ratios of the shortest-path caches (None: no traffic)."""
        c = self.counters
        return {
            "spcache": _ratio(
                c.get("spcache.hits", 0.0), c.get("spcache.misses", 0.0)
            ),
            "spregistry": _ratio(
                c.get("spregistry.hits", 0.0),
                c.get("spregistry.misses", 0.0),
            ),
        }


def render(state: DashboardState) -> str:
    """Draw one dashboard frame from the current derived state."""
    last = state.last or {}
    header = (
        f"repro watch · seq {last.get('seq', '-')} "
        f"({last.get('reason', 'no payloads yet')}) · "
        f"requests {last.get('total_requests', 0)}"
    )
    lines = [header, "-" * len(header)]

    decisions = state.counters.get("online.decisions", 0.0)
    admitted = state.counters.get("online.admitted", 0.0)
    overall = admitted / decisions if decisions else 0.0
    lines.append(
        f"admission   window {state.admission_rate * 100:5.1f}%   "
        f"overall {overall * 100:5.1f}%   "
        f"admitted {int(admitted)}/{int(decisions)}"
    )

    latency = state.histograms.get(_LATENCY_HIST)
    if latency is not None and latency.count:
        p = latency.percentiles()
        lines.append(
            f"latency     p50 {_seconds(p['p50'])}   "
            f"p90 {_seconds(p['p90'])}   p99 {_seconds(p['p99'])}"
        )
    cost = state.histograms.get(_COST_HIST)
    if cost is not None and cost.count:
        p = cost.percentiles()
        lines.append(
            f"tree cost   p50 {p['p50']:.4g}   p99 {p['p99']:.4g}   "
            f"mean {cost.mean:.4g}   total {cost.sum:.6g}"
        )

    ratios = state.cache_ratios()
    cache_bits = [
        f"{name} {ratio * 100:.1f}%"
        for name, ratio in ratios.items()
        if ratio is not None
    ]
    if cache_bits:
        lines.append("cache hit   " + "   ".join(cache_bits))

    if state.rate_history:
        lines.append(
            f"rate trend  {sparkline(state.rate_history)}  "
            f"(last {len(state.rate_history)} windows)"
        )
    return "\n".join(lines)


def watch(
    path: str,
    follow: bool = False,
    out: Optional[TextIO] = None,
    poll_seconds: float = 0.5,
    max_frames: Optional[int] = None,
) -> DashboardState:
    """Tail an emitter JSONL file, redrawing the dashboard per payload.

    With ``follow=False`` the file is read once and the final frame
    printed; with ``follow=True`` the function keeps polling for new
    lines (Ctrl-C to stop) until a ``"final"`` or ``"exception"`` payload
    arrives.  ``max_frames`` bounds the redraw count for tests.  Returns
    the folded state so callers can assert on it.
    """
    stream = sys.stdout if out is None else out
    state = DashboardState()
    frames = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            while True:
                line = handle.readline()
                if not line:
                    if not follow:
                        break
                    time.sleep(poll_seconds)
                    continue
                line = line.strip()
                if not line:
                    continue
                state.consume(json.loads(line))
                stream.write(render(state) + "\n\n")
                stream.flush()
                frames += 1
                if max_frames is not None and frames >= max_frames:
                    break
                if follow and state.last is not None and state.last.get(
                    "reason"
                ) in ("final", "exception"):
                    break
    except KeyboardInterrupt:
        pass
    if frames == 0:
        stream.write(render(state) + "\n")
        stream.flush()
    return state
