"""The GEANT telemetry micro-benchmark behind ``repro bench``.

Runs the same batch as ``benchmarks/test_spcache.py`` — ``Appro_Multi``
over a seeded request set on the GÉANT topology — twice:

1. with telemetry **disabled**, timed best-of-``rounds``; this records the
   ``disabled_baseline_seconds`` that the CI overhead guard
   (``benchmarks/test_obs_overhead.py``) holds instrumented code to;
2. with telemetry **enabled**, once, to harvest the phase-timer hierarchy
   (auxiliary-graph build, enumeration, KMB, pruning, Dijkstra fills) and
   the counter totals.

The result lands in ``BENCH_obs.json`` — the artifact that seeds the bench
trajectory for future perf PRs.  Run it from the CLI::

    python -m repro.cli bench [--output BENCH_obs.json] [--requests 40]
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro import obs

#: Defaults mirror benchmarks/test_spcache.py so the artifacts compare.
DEFAULT_REQUESTS = 40
DEFAULT_ROUNDS = 3
DEFAULT_SEED = 20170605  # ICDCS 2017
TOPOLOGY = "GEANT"


def _batch(requests: int, seed: int):
    from repro.analysis.common import build_real_network, make_requests

    network = build_real_network(TOPOLOGY, seed)
    batch = make_requests(network.graph, requests, 0.2, seed + 1)
    return network, batch


def measure_disabled_seconds(
    requests: int = DEFAULT_REQUESTS,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = DEFAULT_SEED,
) -> float:
    """Best-of-``rounds`` batch wall time with telemetry disabled.

    This is the quantity the overhead contract bounds: the instrumented
    solver, with recording off, on a quiet machine.
    """
    from repro.core import appro_multi

    was_enabled = obs.enabled()
    obs.disable()
    try:
        network, batch = _batch(requests, seed)
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for request in batch:
                appro_multi(network, request, max_servers=3)
            best = min(best, time.perf_counter() - start)
        return best
    finally:
        if was_enabled:
            obs.enable()


def run_obs_benchmark(
    output_path: Optional[str] = "BENCH_obs.json",
    requests: int = DEFAULT_REQUESTS,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = DEFAULT_SEED,
) -> Dict:
    """Run both measurement passes and (optionally) write the artifact."""
    from repro.core import appro_multi

    disabled_seconds = measure_disabled_seconds(requests, rounds, seed)

    # Enabled pass on a fresh network (cold caches, like round 1 above) so
    # phase totals cover the whole batch including Dijkstra fills.
    network, batch = _batch(requests, seed)
    was_enabled = obs.enabled()
    obs.enable()
    saved = obs.snapshot()
    obs.reset()
    start = time.perf_counter()
    for request in batch:
        appro_multi(network, request, max_servers=3)
    enabled_seconds = time.perf_counter() - start
    snap = obs.snapshot()
    obs.reset()
    obs.merge(saved)  # restore whatever the caller had accumulated
    if not was_enabled:
        obs.disable()

    payload = {
        "topology": TOPOLOGY,
        "requests": requests,
        "max_servers": 3,
        "seed": seed,
        "rounds": rounds,
        "timing": "whole batch, seconds; baseline is best-of-rounds",
        "disabled_baseline_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "enabled_overhead_ratio": (
            enabled_seconds / disabled_seconds
            if disabled_seconds > 0
            else float("inf")
        ),
        "counters": snap["counters"],
        "phases": snap["timers"],
    }
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


def render_bench_summary(payload: Dict) -> List[str]:
    """Human-readable lines for the CLI to print after a bench run."""
    from repro.obs.export import render_phase_table

    lines = [
        f"topology: {payload['topology']}  requests: {payload['requests']}"
        f"  seed: {payload['seed']}",
        f"disabled baseline: {payload['disabled_baseline_seconds']:.4f}s"
        f"  (best of {payload['rounds']})",
        f"enabled run:       {payload['enabled_seconds']:.4f}s"
        f"  ({payload['enabled_overhead_ratio']:.3f}x baseline)",
        "",
        render_phase_table({"timers": payload["phases"]}),
    ]
    return lines
