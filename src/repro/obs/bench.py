"""The benchmark targets behind ``repro bench``.

Targets, selected with ``--target``:

``obs`` (default)
    Runs the same batch as ``benchmarks/test_spcache.py`` — ``Appro_Multi``
    over a seeded request set on the GÉANT topology — twice: once with
    telemetry **disabled**, timed best-of-``rounds`` (this records the
    ``disabled_baseline_seconds`` that the CI overhead guard
    ``benchmarks/test_obs_overhead.py`` holds instrumented code to), and
    once with telemetry **enabled** to harvest the phase-timer hierarchy
    and counter totals.  Writes ``BENCH_obs.json``.

``spcache``
    Cached vs uncached ``Appro_Multi`` on the GÉANT batch — the same
    comparison as ``benchmarks/test_spcache.py``, runnable from the CLI.
    Writes ``BENCH_spcache.json``.

``csr``
    The dict Dijkstra engine vs the compiled CSR engine
    (:mod:`repro.graph.csr`) on all-origins shortest-path sweeps: the
    GÉANT figure-series topology plus a 500-node Erdős–Rényi scaling
    case.  Rounds are interleaved (dict sweep, then CSR sweep, per round)
    so both engines sample the same machine noise; the minimum round per
    engine is reported.  Writes ``BENCH_csr.json``.

``stream-obs``
    The streaming-telemetry contract: an ``Online_CP`` arrival stream on
    GÉANT timed with telemetry disabled vs enabled-with-histograms plus a
    :class:`~repro.obs.emitter.SnapshotEmitter` flushing JSONL deltas.
    Merges a ``"stream"`` section into ``BENCH_obs.json``.

Run from the CLI::

    python -m repro.cli bench [--target obs|spcache|csr|appro|stream-obs]
        [--quick]
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro import obs

#: Defaults mirror benchmarks/test_spcache.py so the artifacts compare.
DEFAULT_REQUESTS = 40
DEFAULT_ROUNDS = 3
DEFAULT_SEED = 20170605  # ICDCS 2017
TOPOLOGY = "GEANT"


def _batch(requests: int, seed: int):
    from repro.analysis.common import build_real_network, make_requests

    network = build_real_network(TOPOLOGY, seed)
    batch = make_requests(network.graph, requests, 0.2, seed + 1)
    return network, batch


def measure_disabled_seconds(
    requests: int = DEFAULT_REQUESTS,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = DEFAULT_SEED,
) -> float:
    """Best-of-``rounds`` batch wall time with telemetry disabled.

    This is the quantity the overhead contract bounds: the instrumented
    solver, with recording off, on a quiet machine.
    """
    from repro.core import appro_multi

    was_enabled = obs.enabled()
    obs.disable()
    try:
        network, batch = _batch(requests, seed)
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for request in batch:
                appro_multi(network, request, max_servers=3)
            best = min(best, time.perf_counter() - start)
        return best
    finally:
        if was_enabled:
            obs.enable()


def run_obs_benchmark(
    output_path: Optional[str] = "BENCH_obs.json",
    requests: int = DEFAULT_REQUESTS,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = DEFAULT_SEED,
) -> Dict:
    """Run both measurement passes and (optionally) write the artifact."""
    from repro.core import appro_multi

    disabled_seconds = measure_disabled_seconds(requests, rounds, seed)

    # Enabled pass on a fresh network (cold caches, like round 1 above) so
    # phase totals cover the whole batch including Dijkstra fills.
    network, batch = _batch(requests, seed)
    was_enabled = obs.enabled()
    obs.enable()
    saved = obs.snapshot()
    obs.reset()
    start = time.perf_counter()
    for request in batch:
        appro_multi(network, request, max_servers=3)
    enabled_seconds = time.perf_counter() - start
    snap = obs.snapshot()
    obs.reset()
    obs.merge(saved)  # restore whatever the caller had accumulated
    if not was_enabled:
        obs.disable()

    payload = {
        "topology": TOPOLOGY,
        "requests": requests,
        "max_servers": 3,
        "seed": seed,
        "rounds": rounds,
        "timing": "whole batch, seconds; baseline is best-of-rounds",
        "disabled_baseline_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "enabled_overhead_ratio": (
            enabled_seconds / disabled_seconds
            if disabled_seconds > 0
            else float("inf")
        ),
        "counters": snap["counters"],
        "phases": snap["timers"],
    }
    if output_path:
        # Preserve the streaming section written by
        # ``run_stream_benchmark`` — both targets share this artifact.
        try:
            with open(output_path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = {}
        if "stream" in existing:
            payload["stream"] = existing["stream"]
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


def render_bench_summary(payload: Dict) -> List[str]:
    """Human-readable lines for the CLI to print after a bench run."""
    from repro.obs.export import render_phase_table

    lines = [
        f"topology: {payload['topology']}  requests: {payload['requests']}"
        f"  seed: {payload['seed']}",
        f"disabled baseline: {payload['disabled_baseline_seconds']:.4f}s"
        f"  (best of {payload['rounds']})",
        f"enabled run:       {payload['enabled_seconds']:.4f}s"
        f"  ({payload['enabled_overhead_ratio']:.3f}x baseline)",
        "",
        render_phase_table({"timers": payload["phases"]}),
    ]
    return lines


# --------------------------------------------------------------------------
# ``--target stream-obs``: Online_CP with histograms + emitter enabled
# --------------------------------------------------------------------------

#: Streaming defaults: a GÉANT ``Online_CP`` run long enough that the
#: per-request emitter tick dominates noise, flushed 10 times.
DEFAULT_STREAM_REQUESTS = 2000


def run_stream_benchmark(
    output_path: Optional[str] = "BENCH_obs.json",
    requests: int = DEFAULT_STREAM_REQUESTS,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
) -> Dict:
    """Streaming-telemetry overhead: emitter + histograms vs disabled.

    Times a GÉANT ``Online_CP`` arrival stream in ``rounds`` interleaved
    pairs: each round runs the stream once with telemetry disabled and no
    emitter (the baseline the 5% contract in
    ``benchmarks/test_obs_overhead.py`` extends to) and once with
    telemetry enabled, admission-latency/tree-cost histograms recording,
    and a :class:`~repro.obs.emitter.SnapshotEmitter` flushing JSONL
    deltas every ``requests // 10`` arrivals.  Admission counts must
    match between the passes (telemetry never steers a decision).

    Shared-runner timing noise easily exceeds the few-percent signal, so
    the headline ``overhead_ratio`` is the *median of per-round paired
    ratios*, with the in-round order alternating (disabled-first on even
    rounds, enabled-first on odd) so drift within a round penalizes both
    sides equally.  ``disabled_seconds``/``enabled_seconds`` report the
    per-side minima for scale.

    The result is merged into ``BENCH_obs.json`` under the ``"stream"``
    key (the batch-overhead numbers from ``--target obs`` are preserved).
    """
    import os
    import statistics
    import tempfile

    from repro.analysis.common import (
        build_real_network,
        calibrated_online_cp,
        make_requests,
    )
    from repro.obs.emitter import JsonlSink, SnapshotEmitter
    from repro.simulation.engine import run_online

    if quick:
        requests = min(requests, 400)
        rounds = min(rounds, 2)
    every = max(1, requests // 10)

    def _arrivals():
        network = build_real_network(TOPOLOGY, seed)
        batch = make_requests(network.graph, requests, 0.2, seed + 1)
        return calibrated_online_cp(network), batch

    was_enabled = obs.enabled()
    saved = obs.snapshot()

    def _run_disabled():
        obs.disable()
        algorithm, batch = _arrivals()
        start = time.perf_counter()
        stats = run_online(algorithm, batch)
        return time.perf_counter() - start, stats.admitted, None

    def _run_enabled():
        obs.enable()
        obs.reset()
        algorithm, batch = _arrivals()
        handle, path = tempfile.mkstemp(suffix=".jsonl")
        os.close(handle)
        try:
            emitter = SnapshotEmitter(
                every_requests=every, sinks=[JsonlSink(path)]
            )
            start = time.perf_counter()
            stats = run_online(algorithm, batch, emitter=emitter)
            emitter.finish()
            elapsed = time.perf_counter() - start
        finally:
            os.unlink(path)
        return elapsed, stats.admitted, emitter.seq

    # one untimed warm-up stream so import/alloc costs hit neither side
    _run_disabled()

    ratios = []
    disabled_best = enabled_best = float("inf")
    disabled_admitted = enabled_admitted = flushes = 0
    for index in range(rounds):
        sides = [_run_disabled, _run_enabled]
        if index % 2:
            sides.reverse()
        outcomes = {}
        for side in sides:
            outcomes[side] = side()
        disabled_seconds, disabled_admitted, _ = outcomes[_run_disabled]
        enabled_seconds, enabled_admitted, flushes = outcomes[_run_enabled]
        disabled_best = min(disabled_best, disabled_seconds)
        enabled_best = min(enabled_best, enabled_seconds)
        ratios.append(
            enabled_seconds / disabled_seconds
            if disabled_seconds > 0
            else float("inf")
        )
    obs.reset()
    obs.merge(saved)
    if was_enabled:
        obs.enable()
    else:
        obs.disable()

    stream = {
        "topology": TOPOLOGY,
        "requests": requests,
        "every_requests": every,
        "seed": seed,
        "rounds": rounds,
        "quick": quick,
        "timing": (
            "interleaved disabled/enabled Online_CP arrival-stream pairs; "
            "seconds are per-side minima, overhead_ratio the median of "
            "per-round paired ratios; enabled pass records histograms "
            "and flushes JSONL deltas"
        ),
        "disabled_seconds": disabled_best,
        "enabled_seconds": enabled_best,
        "round_ratios": ratios,
        "overhead_ratio": statistics.median(ratios),
        "flushes": flushes,
        "disabled_admitted": disabled_admitted,
        "enabled_admitted": enabled_admitted,
    }
    if output_path:
        payload: Dict = {}
        try:
            with open(output_path, "r", encoding="utf-8") as handle2:
                payload = json.load(handle2)
        except (OSError, ValueError):
            payload = {}
        payload["stream"] = stream
        with open(output_path, "w", encoding="utf-8") as handle2:
            json.dump(payload, handle2, indent=2, sort_keys=True)
            handle2.write("\n")
    return stream


def render_stream_summary(payload: Dict) -> List[str]:
    """Human-readable lines for the stream-obs bench payload."""
    return [
        f"stream {payload['topology']}: {payload['requests']} requests, "
        f"flush every {payload['every_requests']} "
        f"({payload['flushes']} flushes)",
        f"disabled: {payload['disabled_seconds']:.4f}s  "
        f"enabled+emitter: {payload['enabled_seconds']:.4f}s  "
        f"ratio {payload['overhead_ratio']:.3f}x",
        f"admitted: disabled {payload['disabled_admitted']} / "
        f"enabled {payload['enabled_admitted']} (must match)",
    ]


# --------------------------------------------------------------------------
# ``--target spcache``: cached vs uncached Appro_Multi (BENCH_spcache.json)
# --------------------------------------------------------------------------

#: Required speedup of the cached engine over the seed engine (matches
#: ``benchmarks/test_spcache.py``).
MIN_SPCACHE_SPEEDUP = 3.0


def run_spcache_benchmark(
    output_path: Optional[str] = "BENCH_spcache.json",
    requests: int = DEFAULT_REQUESTS,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
) -> Dict:
    """Time cached vs uncached ``Appro_Multi`` on the GÉANT batch.

    Same comparison and artifact shape as ``benchmarks/test_spcache.py``;
    ``quick`` shrinks the batch for CI smoke runs (the speedup is still
    reported, just noisier).
    """
    from repro.core import appro_multi, appro_multi_reference

    if quick:
        requests = min(requests, 12)
        rounds = min(rounds, 2)
    network, batch = _batch(requests, seed)

    def _time_engine(solver):
        best = float("inf")
        costs: List[float] = []
        for _ in range(rounds):
            round_costs = []
            start = time.perf_counter()
            for request in batch:
                tree = solver(network, request, max_servers=3)
                round_costs.append(tree.total_cost)
            best = min(best, time.perf_counter() - start)
            costs = round_costs
        return best, costs

    reference_time, reference_costs = _time_engine(appro_multi_reference)
    cached_time, cached_costs = _time_engine(appro_multi)
    mismatches = sum(
        1
        for a, b in zip(cached_costs, reference_costs)
        if abs(a - b) > 1e-9 * max(abs(a), abs(b), 1.0)
    )
    payload = {
        "topology": TOPOLOGY,
        "requests": requests,
        "max_servers": 3,
        "seed": seed,
        "rounds": rounds,
        "quick": quick,
        "timing": "best-of-rounds, whole batch, seconds",
        "reference_seconds": reference_time,
        "cached_seconds": cached_time,
        "speedup": (
            reference_time / cached_time if cached_time > 0 else float("inf")
        ),
        "min_speedup_required": MIN_SPCACHE_SPEEDUP,
        "cost_mismatches": mismatches,
    }
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


# --------------------------------------------------------------------------
# ``--target csr``: dict vs compiled-CSR Dijkstra sweeps (BENCH_csr.json)
# --------------------------------------------------------------------------

#: Required speedup of the CSR engine over the dict engine on each case.
MIN_CSR_SPEEDUP = 2.0

#: Sweep repetitions per timing round.  GEANT is small, so one sweep is
#: near timer resolution; 8 sweeps per round keeps each timed window
#: around 10–30 ms — long enough to time, short enough that a background
#: scheduling spike lands inside a single round and the best-of-rounds
#: minimum dodges it.
GEANT_REPS = 8

#: Origins swept per round on the ER500 case.  A full 500-origin sweep is
#: a ~1 s window on the dict engine — too exposed to interference for a
#: minimum estimator; 100 origins over the same 500-node graph keep the
#: scaling behavior and a ~200 ms window.
ER500_ORIGINS = 100

DEFAULT_CSR_ROUNDS = 12


def _dict_sweep(graph, origins):
    """One all-origins sweep on the dict engine (the benchmark baseline)."""
    from repro.graph import dijkstra

    return [dijkstra(graph, o) for o in origins]  # repro-lint: disable=RL001 — benchmark baseline must bypass the cache to time the raw engine


def _csr_sweep(csr, origins):
    """One all-origins sweep on the compiled CSR engine."""
    from repro.graph import dijkstra_many

    return dijkstra_many(csr, origins)  # repro-lint: disable=RL001 — benchmark measures the raw CSR kernel, not the cache


def _csr_case(name: str, graph, origins, reps: int, rounds: int) -> Dict:
    """Interleaved best-of-rounds timing of both engines on one topology.

    Per round: one timed dict sweep then one timed CSR sweep, so both
    engines sample the same machine noise; the minimum round per engine is
    the reported time.  The CSR view is compiled (and its hot mirror
    built) outside the timed region — that cost is once-per-epoch in
    production and is reported separately as ``compile_seconds``.
    """
    from repro.graph import compile_csr

    origins = list(origins)
    start = time.perf_counter()
    csr = compile_csr(graph)
    csr.engine()
    compile_seconds = time.perf_counter() - start

    dict_best = csr_best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            _dict_sweep(graph, origins)
        dict_best = min(dict_best, time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(reps):
            _csr_sweep(csr, origins)
        csr_best = min(csr_best, time.perf_counter() - start)

    # Identity outside the timed region: a fast wrong answer is no speedup.
    csr_trees = _csr_sweep(csr, origins)
    mismatches = sum(
        1
        for origin, dict_tree in zip(origins, _dict_sweep(graph, origins))
        if (
            dict_tree.distance != csr_trees[origin].distance  # repro-lint: disable=RL004 — the CSR contract is bit-identity, so exact equality is the point
            or dict_tree.parent != csr_trees[origin].parent
        )
    )
    return {
        "name": name,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "origins": len(origins),
        "reps": reps,
        "compile_seconds": compile_seconds,
        "dict_seconds": dict_best,
        "csr_seconds": csr_best,
        "speedup": dict_best / csr_best if csr_best > 0 else float("inf"),
        "tree_mismatches": mismatches,
    }


def run_csr_benchmark(
    output_path: Optional[str] = "BENCH_csr.json",
    rounds: int = DEFAULT_CSR_ROUNDS,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
) -> Dict:
    """Benchmark the CSR Dijkstra engine against the dict engine.

    Two cases: the GÉANT figure-series topology (all-origins sweep,
    repeated ``GEANT_REPS`` times per round) and a reweighted 500-node
    Erdős–Rényi graph (one all-origins sweep per round).  ``quick`` trims
    repetitions and the ER origin set for CI smoke runs.
    """
    import random

    from repro.analysis.common import build_real_network
    from repro.topology import erdos_renyi_graph

    if quick:
        rounds = min(rounds, 4)

    network = build_real_network(TOPOLOGY, seed)
    geant = network.graph
    geant_case = _csr_case(
        TOPOLOGY,
        geant,
        list(geant.nodes()),
        reps=5 if quick else GEANT_REPS,
        rounds=rounds,
    )

    er = erdos_renyi_graph(500, 0.02, seed=1)
    # Unit weights make every path a tie; reweight with a seeded RNG so the
    # scaling case exercises real priority-queue traffic.
    rng = random.Random(seed)
    for u, v, _ in list(er.edges()):
        er.add_edge(u, v, 0.5 + rng.random())
    er_origins = list(er.nodes())[: 40 if quick else ER500_ORIGINS]
    er_case = _csr_case("ER500", er, er_origins, reps=1, rounds=rounds)

    payload = {
        "timing": (
            "best-of-rounds, interleaved dict/CSR all-origins sweeps, "
            "seconds per case"
        ),
        "rounds": rounds,
        "seed": seed,
        "quick": quick,
        "min_speedup_required": MIN_CSR_SPEEDUP,
        "cases": [geant_case, er_case],
    }
    if output_path:
        # Preserve the end-to-end solver section written by
        # ``run_appro_benchmark`` — both targets share this artifact.
        try:
            with open(output_path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = {}
        if "appro" in existing:
            payload["appro"] = existing["appro"]
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


# --------------------------------------------------------------------------
# ``--target appro``: dict-path vs CSR-native Appro_Multi (BENCH_csr.json)
# --------------------------------------------------------------------------

#: Required end-to-end speedup of the CSR-native ``Appro_Multi`` core over
#: the dict path (``appro_multi_reference``: dict ``Graph`` auxiliary
#: construction, metric closure, KMB, and MST per combination).
MIN_APPRO_SPEEDUP = 5.0

DEFAULT_APPRO_ROUNDS = 8


def _trees_match(tree, reference) -> bool:
    """The differential harness's engine-identity contract, per tree.

    Structure must be exact — servers, server paths (dict order included),
    distribution edges in ``edges()`` order — while costs compare at
    relative 1e-12, matching ``tests/core/test_differential.py``: the seed
    reference engine accumulates edge weights in a different order than
    the memoized evaluators, so costs can differ in the last ulp.  (The
    CSR-native core is bit-exact against the *dict-backend* engine, dict
    insertion order included; the widened differential holds that.)
    """
    if (
        tree.servers != reference.servers
        or tuple(tree.server_paths.items())
        != tuple(reference.server_paths.items())
        # edge tuples, not floats: exact equality is the contract
        or tree.distribution_edges != reference.distribution_edges  # repro-lint: disable=RL004
    ):
        return False
    for a, b in (
        (tree.bandwidth_cost, reference.bandwidth_cost),
        (tree.compute_cost, reference.compute_cost),
    ):
        if abs(a - b) > 1e-12 * max(abs(a), abs(b), 1.0):
            return False
    return True


def run_appro_benchmark(
    output_path: Optional[str] = "BENCH_csr.json",
    requests: int = DEFAULT_REQUESTS,
    rounds: int = DEFAULT_APPRO_ROUNDS,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
) -> Dict:
    """End-to-end ``Appro_Multi``: dict path vs the CSR-native core.

    The dict path is :func:`repro.core.appro_multi_reference` under the
    ``dict`` backend — dict ``Graph`` auxiliary construction, metric
    closure, KMB, and MST on every server combination, exactly the seed
    engine.  The CSR-native side is :func:`repro.core.appro_multi` under
    the ``csr`` backend: one epoch-stamped compilation per request context,
    the flat combination sweep, and dict decode only for the winner.

    Rounds are interleaved (dict batch, then CSR batch, per round) so both
    engines sample the same machine noise; each round rebuilds the network
    so both sides run cold caches.  Tree identity is checked outside the
    timed region, field for field including dict insertion order.

    The result is merged into ``BENCH_csr.json`` under the ``"appro"`` key
    (the sweep cases under ``"cases"`` are preserved).
    """
    from repro.graph.backend import graph_backend, set_graph_backend

    from repro.core import appro_multi, appro_multi_reference

    if quick:
        requests = min(requests, 12)
        rounds = min(rounds, 3)

    previous = graph_backend()
    dict_best = csr_best = float("inf")
    try:
        for _ in range(rounds):
            set_graph_backend("dict")
            network, batch = _batch(requests, seed)
            start = time.perf_counter()
            for request in batch:
                appro_multi_reference(network, request, max_servers=3)
            dict_best = min(dict_best, time.perf_counter() - start)

            set_graph_backend("csr")
            network, batch = _batch(requests, seed)
            start = time.perf_counter()
            for request in batch:
                appro_multi(network, request, max_servers=3)
            csr_best = min(csr_best, time.perf_counter() - start)

        # Identity outside the timed region: a fast wrong tree is no
        # speedup.  Compare the CSR-native decode against the dict path.
        set_graph_backend("dict")
        network, batch = _batch(requests, seed)
        dict_trees = [
            appro_multi_reference(network, request, max_servers=3)
            for request in batch
        ]
        set_graph_backend("csr")
        network, batch = _batch(requests, seed)
        mismatches = sum(
            1
            for request, reference in zip(batch, dict_trees)
            if not _trees_match(
                appro_multi(network, request, max_servers=3), reference
            )
        )
    finally:
        set_graph_backend(previous)

    appro = {
        "topology": TOPOLOGY,
        "requests": requests,
        "max_servers": 3,
        "seed": seed,
        "rounds": rounds,
        "quick": quick,
        "timing": (
            "best-of-rounds, interleaved dict-path/CSR-native batches, "
            "cold caches per round, seconds per batch"
        ),
        "dict_seconds": dict_best,
        "csr_seconds": csr_best,
        "dict_ms_per_request": dict_best / requests * 1e3,
        "csr_ms_per_request": csr_best / requests * 1e3,
        "speedup": dict_best / csr_best if csr_best > 0 else float("inf"),
        "min_speedup_required": MIN_APPRO_SPEEDUP,
        "tree_mismatches": mismatches,
    }
    if output_path:
        payload: Dict = {}
        try:
            with open(output_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {}
        payload["appro"] = appro
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return appro


def render_speedup_summary(payload: Dict) -> List[str]:
    """Human-readable lines for the spcache / csr bench payloads."""
    lines: List[str] = []
    if "cases" in payload:  # csr target
        for case in payload["cases"]:
            lines.append(
                f"{case['name']}: dict {case['dict_seconds']:.4f}s  "
                f"csr {case['csr_seconds']:.4f}s  "
                f"speedup {case['speedup']:.2f}x  "
                f"(need >= {payload['min_speedup_required']}x, "
                f"mismatches {case['tree_mismatches']})"
            )
    elif "tree_mismatches" in payload:  # appro target
        lines.append(
            f"Appro_Multi {payload['topology']}: "
            f"dict path {payload['dict_ms_per_request']:.3f} ms/req  "
            f"csr-native {payload['csr_ms_per_request']:.3f} ms/req  "
            f"speedup {payload['speedup']:.2f}x  "
            f"(need >= {payload['min_speedup_required']}x, "
            f"mismatches {payload['tree_mismatches']})"
        )
    else:  # spcache target
        lines.append(
            f"reference {payload['reference_seconds']:.4f}s  "
            f"cached {payload['cached_seconds']:.4f}s  "
            f"speedup {payload['speedup']:.2f}x  "
            f"(need >= {payload['min_speedup_required']}x, "
            f"cost mismatches {payload['cost_mismatches']})"
        )
    return lines
