"""Exporters for metrics snapshots: JSON, Prometheus text, ASCII table.

Three consumers, three formats, one input — the plain-dict payload of
:meth:`repro.obs.registry.MetricsRegistry.snapshot`:

- :func:`to_json` / :func:`write_json` — the archival format; loads back
  with ``json.loads`` into exactly the snapshot structure.
- :func:`to_prometheus` / :func:`write_prometheus` — the scrape format:
  counters become ``repro_<name>_total``, gauges ``repro_<name>``, timers
  a ``summary`` pair ``_seconds_count``/``_seconds_sum`` plus
  ``_seconds_min``/``_seconds_max`` gauges, and fixed-bucket histograms a
  ``# TYPE ... histogram`` family: cumulative ``_bucket{le="..."}`` lines
  ending in ``le="+Inf"``, ``_count``/``_sum``, and ``{quantile="..."}``
  p50/p90/p99 estimate lines.  Values print with ``repr`` so they parse
  back bit-identically (:func:`parse_prometheus` is the round-trip used
  by the test suite; labelled samples key as ``name{labels}`` verbatim).
- :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON object for a :class:`repro.obs.tracing.TraceLog`,
  loadable in ``chrome://tracing`` or Perfetto (request umbrella spans
  nest their phase spans by time containment on one track).
- :func:`render_phase_table` — a terminal phase breakdown in the style of
  :mod:`repro.analysis.ascii_plot`: one row per span path, indented by
  nesting depth, with call counts, total/mean seconds, and the share of
  the parent span's time.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.obs.window import FixedBucketHistogram

__all__ = [
    "parse_prometheus",
    "render_phase_table",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
    "write_chrome_trace",
    "write_json",
    "write_prometheus",
]

#: Characters Prometheus metric names may not contain.
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: One sample line: ``name{optional labels} value``.
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$"
)


def _metric_name(name: str, suffix: str = "") -> str:
    """Map a dotted registry name onto a legal Prometheus metric name."""
    return "repro_" + _SANITIZE.sub("_", name) + suffix


def to_json(snapshot: Mapping[str, Mapping]) -> str:
    """Serialize a snapshot as stable, human-diffable JSON."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def write_json(snapshot: Mapping[str, Mapping], path: str) -> None:
    """Write :func:`to_json` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(snapshot))


def to_prometheus(snapshot: Mapping[str, Mapping]) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][name]
        metric = _metric_name(name, "_total")
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value!r}")
    for name in sorted(snapshot.get("gauges", {})):
        value = snapshot["gauges"][name]
        metric = _metric_name(name)
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value!r}")
    for name in sorted(snapshot.get("timers", {})):
        stat = snapshot["timers"][name]
        metric = _metric_name(name, "_seconds")
        lines.append(f"# HELP {metric} repro span {name}")
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {stat['count']!r}")
        lines.append(f"{metric}_sum {stat['total']!r}")
        lines.append(f"# TYPE {metric}_min gauge")
        lines.append(f"{metric}_min {stat['min']!r}")
        lines.append(f"# TYPE {metric}_max gauge")
        lines.append(f"{metric}_max {stat['max']!r}")
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        metric = _metric_name(name)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} histogram")
        running = 0
        for bound, bucket in zip(data["bounds"], data["counts"]):
            running += int(bucket)
            lines.append(f'{metric}_bucket{{le="{bound!r}"}} {running!r}')
        running += int(data["counts"][len(data["bounds"])])
        lines.append(f'{metric}_bucket{{le="+Inf"}} {running!r}')
        lines.append(f"{metric}_count {data['count']!r}")
        lines.append(f"{metric}_sum {data['sum']!r}")
        estimator = FixedBucketHistogram(data["bounds"])
        estimator.merge(data)
        for q, value in (
            (0.5, estimator.quantile(0.5)),
            (0.9, estimator.quantile(0.9)),
            (0.99, estimator.quantile(0.99)),
        ):
            lines.append(f'{metric}{{quantile="{q!r}"}} {value!r}')
    return "\n".join(lines) + "\n"


def write_prometheus(snapshot: Mapping[str, Mapping], path: str) -> None:
    """Write :func:`to_prometheus` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus(snapshot))


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{metric_name: value}``.

    Labelled samples — histogram ``_bucket{le="..."}`` lines and
    ``{quantile="..."}`` estimate lines — key as ``name{labels}`` with the
    label block verbatim, so a render → parse → render cycle is the
    identity.  (``+Inf`` bucket values parse fine: ``float("+Inf")`` is
    well-defined, though bucket *counts* are what follows the label.)
    Comment/``# TYPE`` lines are skipped; malformed sample lines raise
    ``ValueError`` — which is what makes this the exporter's validity
    check, not just its inverse.
    """
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"invalid Prometheus sample line: {line!r}")
        key = match.group(1) + (match.group(2) or "")
        values[key] = float(match.group(3))
    return values


def to_chrome_trace(
    log: Union[Any, Sequence[Mapping[str, Any]]],
) -> Dict[str, Any]:
    """Build the Chrome ``trace_event`` JSON object for a trace log.

    Accepts a :class:`repro.obs.tracing.TraceLog` (anything with a
    ``chrome_events()`` method) or an already-built event list.  The
    result loads directly in ``chrome://tracing`` / Perfetto: request
    umbrella spans and their phase spans share one pid/tid track and nest
    by time containment.
    """
    events = getattr(log, "chrome_events", None)
    return {
        "traceEvents": list(events() if events is not None else log),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    log: Union[Any, Sequence[Mapping[str, Any]]], path: str
) -> None:
    """Write :func:`to_chrome_trace` output as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(log), handle)
        handle.write("\n")


def _compact(value: float) -> str:
    """Short numeric label (mirrors ``analysis.ascii_plot._compact``)."""
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.3g}"


def _phase_rows(
    timers: Mapping[str, Mapping[str, float]],
) -> List[Tuple[str, int, Mapping[str, float], float]]:
    """Depth-first rows ``(path, depth, stat, share-of-parent %)``."""
    paths = sorted(timers)
    rows: List[Tuple[str, int, Mapping[str, float], float]] = []

    def walk(prefix: str, depth: int, parent_total: float) -> None:
        for path in paths:
            head, _, tail = path.rpartition(".")
            if head != prefix:
                continue
            stat = timers[path]
            share = (
                100.0 * stat["total"] / parent_total
                if parent_total > 0
                else 100.0
            )
            rows.append((tail or path, depth, stat, share))
            walk(path, depth + 1, stat["total"])

    walk("", 0, sum(
        stat["total"] for path, stat in timers.items() if "." not in path
    ))
    return rows


def render_phase_table(snapshot: Mapping[str, Mapping]) -> str:
    """Render the span hierarchy as an aligned ASCII phase table.

    Child spans indent under their parent; the ``%`` column is each span's
    share of its parent's total (top-level spans share 100% between them).
    """
    timers = snapshot.get("timers", {})
    if not timers:
        return "phase breakdown: (no spans recorded)"
    rows = _phase_rows(timers)
    header = ("phase", "calls", "total s", "mean s", "%")
    body = [
        (
            "  " * depth + name,
            _compact(stat["count"]),
            f"{stat['total']:.4f}",
            f"{stat['total'] / stat['count']:.6f}" if stat["count"] else "0",
            f"{share:.1f}",
        )
        for name, depth, stat, share in rows
    ]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in body))
        for i in range(len(header))
    ]
    lines = ["phase breakdown (wall seconds):"]
    lines.append(
        "  "
        + header[0].ljust(widths[0])
        + "".join("  " + header[i].rjust(widths[i]) for i in range(1, 5))
    )
    lines.append("  " + "-" * (sum(widths) + 2 * 4))
    for row in body:
        lines.append(
            "  "
            + row[0].ljust(widths[0])
            + "".join("  " + row[i].rjust(widths[i]) for i in range(1, 5))
        )
    return "\n".join(lines)
