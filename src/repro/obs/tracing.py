"""Per-request trace spans: a bounded, exportable run timeline.

Aggregates (counters, histograms, phase timers) answer "how much"; a
causality question — *why did request 4821 take 40 ms?* — needs the raw
timeline.  This module captures one when asked:

- :func:`start_trace` installs a :class:`TraceLog` as the registry's span
  sink: from then on every closing :class:`repro.obs.registry.Span`
  appends a ``(path, start, end, request_id)`` record, at the cost of one
  ``None`` check per span while tracing is off.
- :func:`request_scope` threads the request id: the simulation engine (and
  the solvers/repair strategies, for direct invocations) wraps each
  request's work in ``with request_scope(rid):`` so the spans and instant
  events recorded inside carry that id, and the scope itself becomes a
  ``request <rid>`` umbrella span in the exported timeline.
- :func:`trace_instant` marks point events — admissions, rejections,
  failures, emitter flushes — that interleave with the spans.

The log is **bounded**: past ``max_events`` records new events are counted
in :attr:`TraceLog.dropped` and discarded (keeping the earliest window, so
nesting stays self-consistent).  Export goes through
:func:`repro.obs.export.to_chrome_trace`, producing Chrome ``trace_event``
JSON that loads directly in ``chrome://tracing`` or Perfetto with the
request umbrellas nesting their phase spans.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.obs.registry import NULL_SPAN, _set_trace_sink

__all__ = [
    "TraceLog",
    "active_trace",
    "current_request",
    "request_scope",
    "start_trace",
    "stop_trace",
    "trace_instant",
]

#: Default event capacity: ~4 spans/request keeps a 50k-request run whole.
DEFAULT_MAX_EVENTS = 200_000


class TraceLog:
    """A bounded in-memory timeline of spans and instant events.

    Spans arrive from two producers: closing registry spans (via the
    sink hook) and closing :func:`request_scope` umbrellas.  All
    timestamps are ``time.perf_counter()`` readings; export rebases them
    onto the log's ``t0`` so a trace starts at zero.
    """

    __slots__ = ("max_events", "spans", "instants", "dropped", "t0", "_stack")

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        #: ``(path, start, end, request_id)`` per completed span.
        self.spans: List[Tuple[str, float, float, Optional[Hashable]]] = []
        #: ``(name, ts, request_id, args)`` per point event.
        self.instants: List[
            Tuple[str, float, Optional[Hashable], Dict[str, Any]]
        ] = []
        self.dropped = 0
        self.t0 = time.perf_counter()
        self._stack: List[Hashable] = []

    # -- recording ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    def _full(self) -> bool:
        if len(self) >= self.max_events:
            self.dropped += 1
            return True
        return False

    def add_span(self, path: str, start: float, end: float) -> None:
        """Record one completed phase span (the registry sink hook)."""
        if self._full():
            return
        request_id = self._stack[-1] if self._stack else None
        self.spans.append((path, start, end, request_id))

    def add_request_span(
        self, request_id: Hashable, start: float, end: float
    ) -> None:
        """Record the umbrella span for one request scope."""
        if self._full():
            return
        self.spans.append((f"request {request_id}", start, end, request_id))

    def add_instant(self, name: str, **args: Any) -> None:
        """Record a point event, stamped now, under the active request."""
        if self._full():
            return
        request_id = self._stack[-1] if self._stack else None
        self.instants.append(
            (name, time.perf_counter(), request_id, args)
        )

    def current_request(self) -> Optional[Hashable]:
        """The innermost active request id (``None`` outside any scope)."""
        return self._stack[-1] if self._stack else None

    # -- export ---------------------------------------------------------
    def chrome_events(self) -> List[Dict[str, Any]]:
        """The timeline as Chrome ``trace_event`` records.

        Complete (``"ph": "X"``) events on one pid/tid, rebased to ``t0``
        in microseconds, sorted by start time with longer events first on
        ties — the order Perfetto needs to nest same-track events by
        containment — plus thread-scoped instant (``"ph": "i"``) events.
        """
        events: List[Dict[str, Any]] = []
        for path, start, end, request_id in self.spans:
            record: Dict[str, Any] = {
                "name": path,
                "cat": "repro",
                "ph": "X",
                "ts": (start - self.t0) * 1e6,
                "dur": max(end - start, 0.0) * 1e6,
                "pid": 1,
                "tid": 1,
            }
            if request_id is not None:
                record["args"] = {"request_id": str(request_id)}
            events.append(record)
        for name, ts, request_id, args in self.instants:
            payload = {str(k): v for k, v in args.items()}
            if request_id is not None:
                payload.setdefault("request_id", str(request_id))
            events.append(
                {
                    "name": name,
                    "cat": "repro",
                    "ph": "i",
                    "s": "t",
                    "ts": (ts - self.t0) * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "args": payload,
                }
            )
        events.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
        return events

    def __repr__(self) -> str:
        return (
            f"TraceLog(spans={len(self.spans)}, "
            f"instants={len(self.instants)}, dropped={self.dropped})"
        )


class _RequestScope:
    """Context manager pushing one request id onto the active trace."""

    __slots__ = ("_log", "_request_id", "_start")

    def __init__(self, log: TraceLog, request_id: Hashable) -> None:
        self._log = log
        self._request_id = request_id
        self._start = 0.0

    def __enter__(self) -> "_RequestScope":
        self._log._stack.append(self._request_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter()
        self._log._stack.pop()
        self._log.add_request_span(self._request_id, self._start, end)
        return False


#: The active trace log; ``None`` while tracing is off.
_ACTIVE: Optional[TraceLog] = None


def start_trace(max_events: int = DEFAULT_MAX_EVENTS) -> TraceLog:
    """Begin capturing a timeline; returns the (bounded) live log."""
    global _ACTIVE
    _ACTIVE = TraceLog(max_events)
    _set_trace_sink(_ACTIVE)
    return _ACTIVE


def stop_trace() -> Optional[TraceLog]:
    """Stop capturing; returns the finished log (``None`` if never started)."""
    global _ACTIVE
    log = _ACTIVE
    _ACTIVE = None
    _set_trace_sink(None)
    return log


def active_trace() -> Optional[TraceLog]:
    """The live trace log, or ``None``."""
    return _ACTIVE


def request_scope(request_id: Hashable):
    """Scope all spans/instants recorded inside to ``request_id``.

    A shared no-op context manager is returned while tracing is off, so
    engine loops call this unconditionally at one ``None`` check per
    request.
    """
    log = _ACTIVE
    if log is None:
        return NULL_SPAN
    return _RequestScope(log, request_id)


def trace_instant(name: str, **args: Any) -> None:
    """Mark a point event on the timeline — no-op while tracing is off."""
    log = _ACTIVE
    if log is not None:
        log.add_instant(name, **args)


def current_request() -> Optional[Hashable]:
    """The request id the active scope carries (``None`` if none)."""
    log = _ACTIVE
    return log.current_request() if log is not None else None
