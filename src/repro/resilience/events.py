"""Failure and recovery event streams for the resilience simulations.

Real SDNs lose links and servers while requests are in flight.  This module
models those incidents as timestamped :class:`FailureEvent` records that
interleave with the workload's arrival/departure stream through the shared
``sort_key()`` ordering of :mod:`repro.workload.arrivals`:

- at equal times, **recoveries** apply first (capacity that comes back is
  usable immediately), then **failures**, then departures, then arrivals —
  so a simultaneous arrival always sees the post-incident network;
- ties within a rank are broken by the element's identity, making every
  interleaving total and reproducible across runs and worker processes.

Two generators cover the experiments: :func:`deterministic_schedule` for
hand-written incident scripts (tests, what-if analyses) and
:func:`exponential_failures` for seeded alternating up/down renewal
processes (exponential time-to-failure and time-to-repair per element), the
standard availability model for long-running failure studies.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.graph.graph import edge_key
from repro.network.sdn import SDNetwork
from repro.workload.arrivals import event_tiebreak

Node = Hashable

#: Sort ranks slotting failure events ahead of the workload's
#: departure (0) / arrival (1) ranks at equal times.
RECOVERY_RANK = -2
FAILURE_RANK = -1


class ElementKind(enum.Enum):
    """Which kind of network element an event concerns."""

    LINK = "link"
    SERVER = "server"


@dataclass(frozen=True)
class FailureEvent:
    """One link/server failure or recovery at a point in simulated time.

    Attributes:
        time: when the incident happens (same clock as request events).
        element: whether ``target`` names a link or a server.
        target: canonical ``(u, v)`` edge key for links, the node for
            servers.
        up: ``True`` for a recovery, ``False`` for a failure.
    """

    time: float
    element: ElementKind
    target: object
    up: bool

    def sort_key(self) -> tuple:
        """Total ordering key compatible with ``RequestEvent.sort_key``."""
        rank = RECOVERY_RANK if self.up else FAILURE_RANK
        return (self.time, rank, event_tiebreak((self.element.value,
                                                 repr(self.target))))

    def describe(self) -> str:
        """Return a compact human-readable summary."""
        verb = "recovers" if self.up else "fails"
        return f"t={self.time:.3f}: {self.element.value} {self.target!r} {verb}"


def link_failure(time: float, u: Node, v: Node) -> FailureEvent:
    """A link going down at ``time``."""
    return FailureEvent(time, ElementKind.LINK, edge_key(u, v), up=False)


def link_recovery(time: float, u: Node, v: Node) -> FailureEvent:
    """A link coming back up at ``time``."""
    return FailureEvent(time, ElementKind.LINK, edge_key(u, v), up=True)


def server_failure(time: float, node: Node) -> FailureEvent:
    """A server going down at ``time`` (its switch keeps forwarding)."""
    return FailureEvent(time, ElementKind.SERVER, node, up=False)


def server_recovery(time: float, node: Node) -> FailureEvent:
    """A server coming back up at ``time``."""
    return FailureEvent(time, ElementKind.SERVER, node, up=True)


def deterministic_schedule(
    events: Iterable[FailureEvent],
) -> List[FailureEvent]:
    """Validate and time-order a hand-written incident script.

    Raises:
        SimulationError: if any event has a negative time, or the script
            fails an element that is already down (or recovers one that is
            already up) — a scripting mistake that would silently desync
            the intended scenario from the simulated one.
    """
    ordered = sorted(events, key=FailureEvent.sort_key)
    state = {}
    for event in ordered:
        if event.time < 0:
            raise SimulationError(f"negative event time: {event.describe()}")
        key = (event.element, repr(event.target))
        if state.get(key, True) == event.up:
            # transitions must alternate: a failure needs an up element,
            # a recovery needs a down one
            word = "up" if event.up else "down"
            raise SimulationError(
                f"{event.describe()}: element is already {word}"
            )
        state[key] = event.up
    return ordered


def exponential_failures(
    network: SDNetwork,
    *,
    mean_time_to_failure: float,
    mean_time_to_repair: float,
    horizon: float,
    seed: int = 0,
    links: bool = True,
    servers: bool = False,
    fraction: float = 1.0,
) -> List[FailureEvent]:
    """Seeded exponential up/down renewal processes over network elements.

    Each selected element alternates ``up → down → up → …`` with
    exponentially distributed sojourn times (mean ``mean_time_to_failure``
    up, ``mean_time_to_repair`` down), truncated at ``horizon``.  Elements
    are processed in a stable sorted order and all randomness comes from
    ``seed``, so the stream is a pure function of the arguments.

    Args:
        network: the network whose links/servers can fail.
        mean_time_to_failure: mean up-time before a failure (``> 0``).
        mean_time_to_repair: mean down-time before recovery (``> 0``).
        horizon: generate events strictly before this time (``> 0``).
        seed: RNG seed.
        links: include link failures.
        servers: include server failures.
        fraction: fraction of eligible elements subjected to the process
            (``0 < fraction <= 1``); a seeded sample keeps failure volumes
            tunable independently of network size.

    Returns:
        The merged, time-ordered failure/recovery event list.  Every
        failure that recovers before the horizon is paired with its
        recovery; failures whose repair would land past the horizon stay
        down for the rest of the run.
    """
    if mean_time_to_failure <= 0:
        raise SimulationError(
            f"mean_time_to_failure must be positive: {mean_time_to_failure}"
        )
    if mean_time_to_repair <= 0:
        raise SimulationError(
            f"mean_time_to_repair must be positive: {mean_time_to_repair}"
        )
    if horizon <= 0:
        raise SimulationError(f"horizon must be positive: {horizon}")
    if not 0.0 < fraction <= 1.0:
        raise SimulationError(f"fraction must be in (0, 1]: {fraction}")

    targets: List[Tuple[ElementKind, object]] = []
    if links:
        link_keys = sorted((link.endpoints for link in network.links()),
                           key=repr)
        targets.extend((ElementKind.LINK, key) for key in link_keys)
    if servers:
        targets.extend(
            (ElementKind.SERVER, node) for node in network.server_nodes
        )

    rng = random.Random(seed)
    if fraction < 1.0:
        count = max(1, round(fraction * len(targets))) if targets else 0
        targets = rng.sample(targets, min(count, len(targets)))
        targets.sort(key=repr)

    events: List[FailureEvent] = []
    for element, target in targets:
        clock = rng.expovariate(1.0 / mean_time_to_failure)
        while clock < horizon:
            events.append(FailureEvent(clock, element, target, up=False))
            repair = clock + rng.expovariate(1.0 / mean_time_to_repair)
            if repair >= horizon:
                break
            events.append(FailureEvent(repair, element, target, up=True))
            clock = repair + rng.expovariate(1.0 / mean_time_to_failure)
    events.sort(key=FailureEvent.sort_key)
    return events


def apply_event(network: SDNetwork, event: FailureEvent) -> bool:
    """Apply one failure/recovery to the network's element state.

    Returns whether the element actually changed state (re-failing a dead
    link is a no-op, so overlapping schedules compose safely).  Every real
    transition bumps the network epoch, invalidating all residual-derived
    shortest-path caches at once.
    """
    if event.element is ElementKind.LINK:
        u, v = event.target  # type: ignore[misc]
        if event.up:
            return network.recover_link(u, v)
        return network.fail_link(u, v)
    if event.up:
        return network.recover_server(event.target)
    return network.fail_server(event.target)


def horizon_of(*streams: Iterable) -> float:
    """Return the latest event time across streams (0.0 when all empty)."""
    latest = 0.0
    for stream in streams:
        for event in stream:
            if event.time > latest:
                latest = event.time
    return latest


__all__ = [
    "ElementKind",
    "FailureEvent",
    "FAILURE_RANK",
    "RECOVERY_RANK",
    "apply_event",
    "deterministic_schedule",
    "exponential_failures",
    "horizon_of",
    "link_failure",
    "link_recovery",
    "server_failure",
    "server_recovery",
]
