"""Tree-repair strategies for failure-disrupted multicast requests.

When a failure breaks an installed pseudo-multicast tree, the operator has
three escalating options, each implemented here behind the common
:class:`RepairStrategy` protocol:

- :class:`DropAffected` — tear the request down and give up.  The baseline
  every repair scheme must beat on disruption.
- :class:`FullReadmit` — tear down, then re-run ``Appro_Multi_Cap`` on the
  post-failure residual network and reinstall from scratch.  Always finds a
  tree when one exists, but reprograms (and re-bills) the entire tree.
- :class:`SubtreeGraft` — keep the surviving subtree in place and reconnect
  only the severed destinations via cheapest residual paths, falling back
  to full readmission when the service chain itself is severed or the graft
  cannot be allocated.  Only the *new* reservations are programmed.

Repair cost counts the resources a strategy (re)programs: a full
readmission is charged the whole new tree's operational cost, a graft only
the bandwidth cost of its added link traversals.  This matches what an SDN
controller would actually push to the data plane and is what the resilience
experiment compares across strategies.

Ownership: an admitted request's reservations initially live inside the
online algorithm (``via_algorithm=True``).  A repair that rebuilds or
mutates the tree takes them over — the algorithm ``forget``s the request,
and the surviving + grafted reservations are re-homed into a single adopted
:class:`~repro.network.allocation.AllocationTransaction` so a later
departure releases exactly once.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, replace
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.admission import try_allocate
from repro.core.appro_multi import DEFAULT_MAX_SERVERS, appro_multi_cap
from repro.core.online_base import OnlineAlgorithm
from repro.core.pseudo_tree import PseudoMulticastTree
from repro.exceptions import CapacityExceededError, InfeasibleRequestError
from repro.graph.graph import edge_key
from repro.graph.shortest_paths import dijkstra
from repro.network.allocation import AllocationTransaction
from repro.network.controller import Controller, TableCapacityExceededError
from repro.network.sdn import SDNetwork
from repro.obs import (
    inc as _obs_inc,
    span as _obs_span,
    trace_instant as _obs_instant,
)
from repro.resilience.impact import ImpactReport, processed_reachable
from repro.workload.request import MulticastRequest

Node = Hashable
EdgeKey = Tuple[Node, Node]


@dataclass
class ActiveRequest:
    """One admitted request's live state, as the resilience engine tracks it.

    Attributes:
        request: the admitted request.
        tree: the currently installed pseudo-multicast tree.
        transaction: the committed transaction holding its reservations.
        via_algorithm: whether the online algorithm still owns the
            transaction (initial admission) or the engine does (the request
            has been repaired and re-homed at least once).
    """

    request: MulticastRequest
    tree: PseudoMulticastTree
    transaction: AllocationTransaction
    via_algorithm: bool

    @property
    def request_id(self) -> Hashable:
        """The request's identity."""
        return self.request.request_id


class RepairAction(enum.Enum):
    """What a repair strategy ended up doing for one broken request."""

    DROPPED = "dropped"
    READMITTED = "readmitted"
    GRAFTED = "grafted"


@dataclass(frozen=True)
class RepairResult:
    """Outcome of repairing one broken request.

    Attributes:
        request_id: the request that was repaired (or dropped).
        action: what happened.
        repair_cost: cost of the resources the repair (re)programmed —
            the full new tree cost for a readmission, the added bandwidth
            cost for a graft, 0 for a drop.
        active: the request's new live state (``None`` when dropped).
    """

    request_id: Hashable
    action: RepairAction
    repair_cost: float
    active: Optional[ActiveRequest]


@dataclass
class RepairContext:
    """Everything a repair strategy may touch.

    Attributes:
        network: the (post-failure) capacitated network.
        controller: the data plane being reprogrammed.
        algorithm: the online algorithm that owns unrepaired admissions
            (``None`` in controller-less unit tests; then every
            ``ActiveRequest`` must be engine-owned).
        max_servers: the ``K`` bound passed to ``Appro_Multi_Cap`` on
            readmission.
    """

    network: SDNetwork
    controller: Optional[Controller]
    algorithm: Optional[OnlineAlgorithm]
    max_servers: int = DEFAULT_MAX_SERVERS


class RepairStrategy(abc.ABC):
    """Protocol: given a broken request, restore service or drop it."""

    #: Short identifier used in metrics, telemetry, and CLI output.
    name: str = "abstract"

    @abc.abstractmethod
    def repair(
        self,
        context: RepairContext,
        active: ActiveRequest,
        impact: ImpactReport,
    ) -> RepairResult:
        """Repair one broken request; the result replaces ``active``."""

    # ------------------------------------------------------------------
    # shared mechanics
    # ------------------------------------------------------------------
    @staticmethod
    def _teardown(context: RepairContext, active: ActiveRequest) -> None:
        """Remove the request's data-plane state and release its resources."""
        if context.controller is not None:
            context.controller.uninstall(active.request_id)
        if active.via_algorithm:
            assert context.algorithm is not None
            context.algorithm.depart(active.request_id)
        else:
            active.transaction.release_all()

    @staticmethod
    def _readmit(
        context: RepairContext, request: MulticastRequest
    ) -> RepairResult:
        """Re-embed ``request`` from scratch on the residual network.

        Assumes the request holds no resources and no data-plane state.
        """
        network = context.network
        try:
            tree = appro_multi_cap(network, request, context.max_servers)
        except InfeasibleRequestError:
            _obs_inc("resilience.repair.infeasible")
            return RepairResult(
                request.request_id, RepairAction.DROPPED, 0.0, None
            )
        txn = try_allocate(network, tree)
        if txn is None:
            _obs_inc("resilience.repair.allocation_failed")
            return RepairResult(
                request.request_id, RepairAction.DROPPED, 0.0, None
            )
        if context.controller is not None:
            try:
                context.controller.install_tree(
                    request.request_id, tree.routing_hops(), list(tree.servers)
                )
            except TableCapacityExceededError:
                txn.release_all()
                _obs_inc("resilience.repair.table_capacity")
                return RepairResult(
                    request.request_id, RepairAction.DROPPED, 0.0, None
                )
        return RepairResult(
            request_id=request.request_id,
            action=RepairAction.READMITTED,
            repair_cost=tree.total_cost,
            active=ActiveRequest(
                request=request,
                tree=tree,
                transaction=txn,
                via_algorithm=False,
            ),
        )


class DropAffected(RepairStrategy):
    """Baseline: tear down every broken request and admit nothing back."""

    name = "drop"

    def repair(
        self,
        context: RepairContext,
        active: ActiveRequest,
        impact: ImpactReport,
    ) -> RepairResult:
        with _obs_span("repair_drop"):
            self._teardown(context, active)
            _obs_inc("resilience.repair.dropped")
        _obs_instant(
            "repair.outcome",
            action=RepairAction.DROPPED.value,
            request_id=str(active.request_id),
        )
        return RepairResult(
            active.request_id, RepairAction.DROPPED, 0.0, None
        )


class FullReadmit(RepairStrategy):
    """Tear down, re-run ``Appro_Multi_Cap``, reinstall from scratch."""

    name = "readmit"

    def repair(
        self,
        context: RepairContext,
        active: ActiveRequest,
        impact: ImpactReport,
    ) -> RepairResult:
        with _obs_span("repair_readmit"):
            self._teardown(context, active)
            result = self._readmit(context, active.request)
            if result.action is RepairAction.READMITTED:
                _obs_inc("resilience.repair.readmitted")
        _obs_instant(
            "repair.outcome",
            action=result.action.value,
            request_id=str(active.request_id),
        )
        return result


class SubtreeGraft(RepairStrategy):
    """Keep the surviving subtree; graft severed destinations back on.

    When only distribution edges failed (the service chain still runs and
    still receives the unprocessed stream), the strategy:

    1. keeps every source→server path, return path, and surviving
       distribution edge exactly as installed — their reservations are not
       touched, so the repair causes no churn on the working part;
    2. for each severed destination (cheapest-first by residual distance),
       finds the cheapest path in the post-failure residual graph from any
       node already receiving the processed stream, and adds its edges as
       new distribution edges (each graft extends the reachable set, so
       later orphans may attach to earlier grafts);
    3. allocates only the *increase* in per-link usage inside a fresh
       transaction, then re-homes the whole tree (survivors + grafts) into
       one adopted transaction and reprograms the controller.

    A severed chain, an unreachable orphan, or a failed allocation falls
    back to :class:`FullReadmit`'s teardown-and-readmit path; if that fails
    too, the request is dropped.
    """

    name = "graft"

    def repair(
        self,
        context: RepairContext,
        active: ActiveRequest,
        impact: ImpactReport,
    ) -> RepairResult:
        with _obs_span("repair_graft"):
            if impact.chain_severed:
                _obs_inc("resilience.repair.graft_chain_severed")
                self._teardown(context, active)
                result = self._readmit(context, active.request)
            else:
                grafted = self._try_graft(context, active, impact)
                if grafted is not None:
                    _obs_inc("resilience.repair.grafted")
                    result = grafted
                else:
                    _obs_inc("resilience.repair.graft_fallback")
                    self._teardown(context, active)
                    result = self._readmit(context, active.request)
        _obs_instant(
            "repair.outcome",
            action=result.action.value,
            request_id=str(active.request_id),
        )
        return result

    # ------------------------------------------------------------------
    # graft mechanics
    # ------------------------------------------------------------------
    def _try_graft(
        self,
        context: RepairContext,
        active: ActiveRequest,
        impact: ImpactReport,
    ) -> Optional[RepairResult]:
        """Attempt the incremental graft; ``None`` means fall back."""
        network = context.network
        tree = active.tree
        request = active.request
        down = set(network.failed_links())

        plan = self._plan_graft(network, tree, down,
                                impact.severed_destinations)
        if plan is None:
            return None
        new_edges, graft_cost = plan
        new_tree = self._rebuild_tree(network, tree, new_edges)

        # Allocate only the usage increase; the surviving reservations stay
        # exactly where they are.
        old_usage = tree.edge_usage()
        new_usage = new_tree.edge_usage()
        # `with` so any exception before commit() — a typed solver error,
        # not just the capacity check — rolls the delta back (RL011)
        with AllocationTransaction(network) as txn:
            try:
                for key in sorted(new_usage, key=repr):
                    delta = new_usage[key] - old_usage.get(key, 0)
                    if delta > 0:
                        txn.allocate_bandwidth(
                            key[0], key[1], delta * request.bandwidth
                        )
            except CapacityExceededError:
                return None
            txn.commit()

        # The graft is now booked.  Release the failed/stranded edges' usage
        # and transfer ownership: one adopted transaction holds exactly the
        # new tree's reservations.
        for key in sorted(old_usage, key=repr):
            delta = old_usage[key] - new_usage.get(key, 0)
            if delta > 0:
                network.release_bandwidth(
                    key[0], key[1], delta * request.bandwidth
                )
        if active.via_algorithm:
            assert context.algorithm is not None
            context.algorithm.forget(request.request_id)
        adopted = AllocationTransaction.adopt(
            network,
            bandwidth_ops=[
                (key[0], key[1], count * request.bandwidth)
                for key, count in sorted(new_usage.items(),
                                         key=lambda item: repr(item[0]))
            ],
            compute_ops=[
                (server, request.compute_demand)
                for server in new_tree.servers
            ],
        )

        if context.controller is not None:
            context.controller.uninstall(request.request_id)
            try:
                context.controller.install_tree(
                    request.request_id,
                    new_tree.routing_hops(),
                    list(new_tree.servers),
                )
            except TableCapacityExceededError:
                # The graft's switches no longer fit; undo everything and
                # let the caller fall back to a full readmission.
                adopted.release_all()
                _obs_inc("resilience.repair.table_capacity")
                return self._readmit(context, request)
        return RepairResult(
            request_id=request.request_id,
            action=RepairAction.GRAFTED,
            repair_cost=graft_cost,
            active=ActiveRequest(
                request=request,
                tree=new_tree,
                transaction=adopted,
                via_algorithm=False,
            ),
        )

    @staticmethod
    def _plan_graft(
        network: SDNetwork,
        tree: PseudoMulticastTree,
        down: Set[EdgeKey],
        orphans,
    ) -> Optional[Tuple[List[EdgeKey], float]]:
        """Choose graft paths for every orphan destination.

        Returns the added distribution edges and their bandwidth cost, or
        ``None`` if some orphan cannot be reached on the residual graph.
        """
        request = tree.request
        residual = network.residual_path_cache(
            min_bandwidth=request.bandwidth
        ).graph
        reachable = processed_reachable(tree, down)
        surviving_edges = {
            edge_key(u, v)
            for u, v in tree.distribution_edges
            if edge_key(u, v) not in down
            and u in reachable and v in reachable
        }
        added: List[EdgeKey] = []
        cost = 0.0
        for orphan in sorted(orphans, key=repr):
            if not residual.has_node(orphan):
                return None
            # Search outward from the orphan: the undirected shortest path
            # to the nearest already-served node, reversed, is the graft.
            # targets= early exit on a mid-repair residual snapshot: the
            # epoch is about to be bumped by the graft's re-allocations, so
            # a versioned cache entry would be built and thrown away.
            # repro-lint: disable=RL001
            sp = dijkstra(residual, orphan, targets=set(
                node for node in reachable if residual.has_node(node)
            ))
            best: Optional[Node] = None
            best_dist = float("inf")
            for node in reachable:
                dist = sp.distance.get(node)
                if dist is not None and dist < best_dist - 1e-12:
                    best = node
                    best_dist = dist
                elif (dist is not None
                      and abs(dist - best_dist) <= 1e-12
                      and (best is None or repr(node) < repr(best))):
                    best = node  # deterministic among cost ties
            if best is None:
                return None
            path = list(reversed(sp.path_to(best)))
            for u, v in zip(path, path[1:]):
                key = edge_key(u, v)
                if key not in surviving_edges and key not in set(added):
                    added.append(key)
                    cost += request.bandwidth * network.link_unit_cost(u, v)
            reachable.update(path)
        return added, cost

    @staticmethod
    def _rebuild_tree(
        network: SDNetwork,
        tree: PseudoMulticastTree,
        added: List[EdgeKey],
    ) -> PseudoMulticastTree:
        """The post-graft tree: survivors plus the planned graft edges."""
        down = set(network.failed_links())
        reachable = processed_reachable(tree, down)
        surviving = tuple(
            (u, v)
            for u, v in tree.distribution_edges
            if edge_key(u, v) not in down
            and u in reachable and v in reachable
        )
        distribution = surviving + tuple(added)
        rebuilt = replace(tree, distribution_edges=distribution)
        bandwidth_cost = sum(
            count * tree.request.bandwidth * network.link_unit_cost(u, v)
            for (u, v), count in rebuilt.edge_usage().items()
        )
        return replace(rebuilt, bandwidth_cost=bandwidth_cost)


#: The strategies the resilience experiment compares, in reporting order.
STRATEGIES = (DropAffected, FullReadmit, SubtreeGraft)


def strategy_by_name(name: str) -> RepairStrategy:
    """Instantiate a repair strategy from its short ``name``."""
    for cls in STRATEGIES:
        if cls.name == name:
            return cls()
    known = ", ".join(cls.name for cls in STRATEGIES)
    raise ValueError(f"unknown repair strategy {name!r} (known: {known})")


__all__ = [
    "ActiveRequest",
    "DropAffected",
    "FullReadmit",
    "RepairAction",
    "RepairContext",
    "RepairResult",
    "RepairStrategy",
    "STRATEGIES",
    "SubtreeGraft",
    "strategy_by_name",
]
