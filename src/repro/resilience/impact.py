"""Failure impact detection over installed pseudo-multicast trees.

Given the network's current failure state, this module answers two
questions for each installed request:

1. **Is it affected at all?**  A request is affected when a failed link
   lies on its tree (any source→server path, distribution edge, or return
   path) or a failed server hosts part of its chain.  The quick filter
   :func:`affected_request_ids` answers this straight from the SDN
   controller's flow-rule records (``tree_edges`` / ``servers``), the same
   state a real control plane would consult.
2. **How is it affected?**  :func:`classify_impact` separates *severed
   service chains* (a dead server, or a broken source→server / return
   path — the unprocessed stream no longer reaches a working chain) from
   *severed destinations* (the processed stream no longer reaches some
   terminals through the surviving distribution edges).  Repair strategies
   branch on this classification: a severed chain needs a full re-embed,
   severed destinations can often be re-attached with a cheap graft.

The module also hosts :func:`check_residual_consistency`, the invariant
auditor the resilience tests run after every repair: residuals in range and
the controller's table exactly matching the installed trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Set, Tuple

from repro.core.pseudo_tree import PseudoMulticastTree
from repro.graph.graph import edge_key
from repro.network.controller import Controller
from repro.network.sdn import SDNetwork

Node = Hashable
EdgeKey = Tuple[Node, Node]


@dataclass(frozen=True)
class ImpactReport:
    """How the current failure state hits one installed request.

    Attributes:
        request_id: the affected request.
        failed_tree_links: tree links that are currently down.
        failed_servers: used servers that are currently down.
        chain_severed: the service chain no longer receives the unprocessed
            stream — a used server is down, or a source→server or return
            path crosses a failed link.  Repairing this requires re-placing
            the chain (full readmission).
        severed_destinations: destinations the *processed* stream no longer
            reaches through surviving distribution edges (assuming the
            chain itself still works).
    """

    request_id: Hashable
    failed_tree_links: FrozenSet[EdgeKey]
    failed_servers: FrozenSet[Node]
    chain_severed: bool
    severed_destinations: FrozenSet[Node]

    @property
    def broken(self) -> bool:
        """Whether the failure actually disrupts service for this request."""
        return self.chain_severed or bool(self.severed_destinations)


def _path_crosses(path, down: Set[EdgeKey]) -> bool:
    return any(edge_key(u, v) in down for u, v in zip(path, path[1:]))


def processed_reachable(
    tree: PseudoMulticastTree, down_links: Set[EdgeKey]
) -> Set[Node]:
    """Nodes still receiving the processed stream after removing dead links.

    Injection points are the tree's servers (and every node of an intact
    return path); the flood expands over distribution edges that are not
    down.  Mirrors the reachability argument of
    :func:`repro.core.pseudo_tree.validate_pseudo_tree`, restricted to the
    surviving subgraph.
    """
    adjacency: Dict[Node, List[Node]] = {}
    for u, v in tree.distribution_edges:
        if edge_key(u, v) in down_links:
            continue
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)

    sources: Set[Node] = set(tree.servers)
    for path in tree.return_paths:
        if not _path_crosses(path, down_links):
            sources.update(path)
    reachable = set(sources)
    frontier = [node for node in sources if node in adjacency]
    while frontier:
        node = frontier.pop()
        for neighbor in adjacency.get(node, ()):
            if neighbor not in reachable:
                reachable.add(neighbor)
                frontier.append(neighbor)
    return reachable


def classify_impact(
    network: SDNetwork, tree: PseudoMulticastTree
) -> ImpactReport:
    """Classify how the network's current failures affect one tree."""
    down_links = set(network.failed_links())
    down_servers = {
        node for node in network.failed_servers() if node in tree.servers
    }
    usage = tree.edge_usage()
    failed_tree_links = frozenset(e for e in usage if e in down_links)

    chain_severed = bool(down_servers)
    if not chain_severed:
        for server, path in tree.server_paths.items():
            if _path_crosses(path, down_links):
                chain_severed = True
                break
    if not chain_severed:
        for path in tree.return_paths:
            if _path_crosses(path, down_links):
                chain_severed = True
                break

    if chain_severed:
        severed = frozenset(tree.request.destinations)
    else:
        reachable = processed_reachable(tree, down_links)
        severed = frozenset(
            d for d in tree.request.destinations if d not in reachable
        )
    return ImpactReport(
        request_id=tree.request.request_id,
        failed_tree_links=failed_tree_links,
        failed_servers=frozenset(down_servers),
        chain_severed=chain_severed,
        severed_destinations=severed,
    )


def affected_request_ids(
    controller: Controller, network: SDNetwork
) -> List[Hashable]:
    """Installed requests touching any currently failed link or server.

    Reads the controller's per-request flow-rule records — the data-plane
    ground truth — and returns ids in installation order (stable across
    runs, so repair sequences are deterministic).
    """
    down_links = set(network.failed_links())
    down_servers = set(network.failed_servers())
    affected = []
    for request_id in controller.installed_requests:
        record = controller.installed_record(request_id)
        if record.tree_edges & down_links or record.servers & down_servers:
            affected.append(request_id)
    return affected


def check_residual_consistency(
    network: SDNetwork,
    controller: Controller,
    active_trees: Iterable[PseudoMulticastTree],
) -> None:
    """Audit the network/controller invariants the resilience engine keeps.

    Raises ``AssertionError`` when violated:

    1. every link/server residual lies in ``[0, capacity]`` (within float
       epsilon);
    2. the controller's installed set is exactly the active tree set;
    3. each installed record's links/servers match its tree;
    4. total table occupancy equals the sum of per-request rule counts.
    """
    for link in network.links():
        if not (-1e-6 <= link.residual <= link.capacity + 1e-6):
            raise AssertionError(
                f"link {link.endpoints} residual out of range: "
                f"{link.residual} not in [0, {link.capacity}]"
            )
    for server in network.servers():
        if not (-1e-6 <= server.residual <= server.capacity + 1e-6):
            raise AssertionError(
                f"server {server.node!r} residual out of range: "
                f"{server.residual} not in [0, {server.capacity}]"
            )

    trees = {tree.request.request_id: tree for tree in active_trees}
    installed = set(controller.installed_requests)
    if installed != set(trees):
        raise AssertionError(
            f"controller/table mismatch: installed={sorted(map(repr, installed))} "
            f"active={sorted(map(repr, trees))}"
        )
    expected_rules = 0
    for request_id, tree in trees.items():
        record = controller.installed_record(request_id)
        if record.tree_edges != set(tree.touched_links()):
            raise AssertionError(
                f"request {request_id!r}: controller edges do not match tree"
            )
        if record.servers != set(tree.servers):
            raise AssertionError(
                f"request {request_id!r}: controller servers do not match tree"
            )
        expected_rules += len(record.rules)
    if controller.total_rules() != expected_rules:
        raise AssertionError(
            f"table occupancy {controller.total_rules()} != "
            f"sum of per-request rules {expected_rules}"
        )


__all__ = [
    "ImpactReport",
    "affected_request_ids",
    "check_residual_consistency",
    "classify_impact",
    "processed_reachable",
]
