"""Failure injection and multicast tree repair (``repro.resilience``).

Extends the online simulations with link/server failures and compares
strategies for repairing the pseudo-multicast trees they break:

- :mod:`repro.resilience.events` — seeded failure/recovery event streams
  that interleave with the workload's arrivals and departures;
- :mod:`repro.resilience.impact` — which installed requests a failure
  breaks, and how (severed destinations vs. severed service chains);
- :mod:`repro.resilience.repair` — ``DropAffected`` / ``FullReadmit`` /
  ``SubtreeGraft`` repair strategies over the residual network.

The simulation driver lives in
:func:`repro.simulation.engine.run_online_with_failures`; the GEANT
experiment comparing the strategies is ``repro.analysis.resilience``
(CLI: ``python -m repro.cli resilience``).  See ``docs/RESILIENCE.md``.
"""

from repro.resilience.events import (
    ElementKind,
    FailureEvent,
    apply_event,
    deterministic_schedule,
    exponential_failures,
    link_failure,
    link_recovery,
    server_failure,
    server_recovery,
)
from repro.resilience.impact import (
    ImpactReport,
    affected_request_ids,
    check_residual_consistency,
    classify_impact,
    processed_reachable,
)
from repro.resilience.repair import (
    STRATEGIES,
    ActiveRequest,
    DropAffected,
    FullReadmit,
    RepairAction,
    RepairContext,
    RepairResult,
    RepairStrategy,
    SubtreeGraft,
    strategy_by_name,
)

__all__ = [
    "ActiveRequest",
    "DropAffected",
    "ElementKind",
    "FailureEvent",
    "FullReadmit",
    "ImpactReport",
    "RepairAction",
    "RepairContext",
    "RepairResult",
    "RepairStrategy",
    "STRATEGIES",
    "SubtreeGraft",
    "affected_request_ids",
    "apply_event",
    "check_residual_consistency",
    "classify_impact",
    "deterministic_schedule",
    "exponential_failures",
    "link_failure",
    "link_recovery",
    "processed_reachable",
    "server_failure",
    "server_recovery",
    "strategy_by_name",
]
