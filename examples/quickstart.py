#!/usr/bin/env python3
"""Quickstart: solve one NFV-enabled multicast request end to end.

Builds a 50-switch GT-ITM-style SDN, generates a request with the paper's
parameter ranges, solves it with the 2K-approximation ``Appro_Multi``,
compares against the single-server baseline, and installs the resulting
pseudo-multicast tree on a simulated SDN controller.

Run:  python examples/quickstart.py
"""

from repro import (
    Controller,
    alg_one_server,
    appro_multi,
    build_sdn,
    generate_workload,
    gt_itm_flat,
    validate_pseudo_tree,
)


def main() -> None:
    # 1. topology + provisioning (10% of switches get servers, paper ranges)
    graph = gt_itm_flat(50, seed=7)
    network = build_sdn(graph, seed=7)
    print(f"network: {network}")
    print(f"servers at switches: {network.server_nodes}")

    # 2. a multicast request: source, destinations, bandwidth, service chain
    request = generate_workload(graph, count=1, dmax_ratio=0.15, seed=11)[0]
    print(f"\nrequest: {request.describe()}")
    print(f"chain compute demand: {request.compute_demand:.0f} MHz")

    # 3. the paper's approximation algorithm (K = 3 servers max)
    tree = appro_multi(network, request, max_servers=3)
    validate_pseudo_tree(network, tree)  # structural guarantees hold
    print(f"\n{tree.describe()}")

    # 4. the state-of-the-art single-server baseline for comparison
    baseline = alg_one_server(network, request)
    saving = 100.0 * (1.0 - tree.total_cost / baseline.total_cost)
    print(f"\nAlg_One_Server cost: {baseline.total_cost:.3f}")
    print(f"Appro_Multi cost:    {tree.total_cost:.3f}  ({saving:.1f}% cheaper)")

    # 5. program the data plane
    controller = Controller()
    record = controller.install_tree(
        request.request_id, tree.routing_hops(), list(tree.servers)
    )
    print(f"\ninstalled {len(record.rules)} flow rules "
          f"across {len({r.switch for r in record.rules})} switches")
    busiest = max(record.rules, key=lambda r: len(r.out_ports))
    print(f"busiest switch {busiest.switch!r} replicates to "
          f"{len(busiest.out_ports)} ports")


if __name__ == "__main__":
    main()
