#!/usr/bin/env python3
"""Online request admission on an ISP backbone, with churn.

Replays a 300-request arrival sequence (plus Poisson departures) against the
AS1755 (Ebone) topology twice — once with the paper's congestion-priced
``Online_CP`` and once with the load-oblivious ``SP`` heuristic — and prints
the admission race, the rejection breakdown, and the final network state.

Run:  python examples/online_admission_isp.py
"""

from repro import (
    OnlineCP,
    SPOnline,
    build_sdn,
    generate_workload,
    rocketfuel_graph,
    rocketfuel_servers,
    run_online_with_departures,
)
from repro.core import ExponentialCostModel
from repro.workload import poisson_process

REQUESTS = 400
ARRIVAL_RATE = 4.0  # requests per time unit
MEAN_HOLDING = 400.0  # long-lived sessions: nearly all overlap


def run(name, algorithm, events):
    stats = run_online_with_departures(algorithm, events)
    print(f"{name}:")
    print(f"  admitted {stats.admitted}/{stats.processed} "
          f"({stats.acceptance_ratio:.1%})")
    if stats.reject_reasons:
        breakdown = ", ".join(
            f"{reason.value}={count}"
            for reason, count in sorted(
                stats.reject_reasons.items(), key=lambda kv: -kv[1]
            )
        )
        print(f"  rejections: {breakdown}")
    print(f"  final link utilization:   {stats.final_link_utilization:.2%}")
    print(f"  final server utilization: {stats.final_server_utilization:.2%}")
    milestones = stats.admitted_timeline[49::50]
    print(f"  admitted after every 50 arrivals: {milestones}\n")
    return stats


def make_cp(graph, servers):
    return OnlineCP(
        build_sdn(graph, server_nodes=servers, seed=17),
        cost_model=ExponentialCostModel(alpha=8.0, beta=8.0),
    )


def make_sp(graph, servers):
    return SPOnline(build_sdn(graph, server_nodes=servers, seed=17))


def main() -> None:
    from repro.workload import one_by_one

    graph = rocketfuel_graph(1755).copy()
    servers = rocketfuel_servers(1755)
    requests = generate_workload(graph, REQUESTS, seed=17)
    print(
        f"AS1755 (Ebone): {graph.num_nodes} POPs, {graph.num_edges} links, "
        f"{len(servers)} NFV locations; {REQUESTS} requests\n"
    )

    print("--- scenario 1: persistent sessions (nothing ever departs) ---\n")
    persistent = one_by_one(requests)
    cp_stats = run(
        "Online_CP (exponential congestion pricing)",
        make_cp(graph, servers), persistent,
    )
    sp_stats = run("SP (uniform link weights)", make_sp(graph, servers),
                   persistent)
    print(
        f"Online_CP admitted {cp_stats.admitted - sp_stats.admitted:+d} "
        f"requests vs SP ({cp_stats.admitted} vs {sp_stats.admitted})\n"
    )

    print("--- scenario 2: churn (Poisson arrivals, finite sessions) ---\n")
    churn = poisson_process(
        requests, arrival_rate=ARRIVAL_RATE, mean_holding_time=MEAN_HOLDING,
        seed=18,
    )
    cp_churn = run(
        "Online_CP (exponential congestion pricing)",
        make_cp(graph, servers), churn,
    )
    sp_churn = run("SP (uniform link weights)", make_sp(graph, servers), churn)
    print(
        f"with churn: Online_CP {cp_churn.admitted} vs SP "
        f"{sp_churn.admitted} — departures relieve pressure, so the gap "
        f"narrows relative to persistent sessions"
    )


if __name__ == "__main__":
    main()
