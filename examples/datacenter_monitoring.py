#!/usr/bin/env python3
"""System-monitoring fan-out in a transit–stub data-center fabric.

The paper's introduction lists "system monitoring in data centers" as a
multicast workload: telemetry from each rack head must reach a set of
collector nodes after passing an IDS + proxy chain.  This example builds a
two-level GT-ITM transit–stub fabric, admits one monitoring request per stub
domain with the capacitated solver ``Appro_Multi_Cap`` (resources are
committed as we go), and prints a capacity-planning report.

Run:  python examples/datacenter_monitoring.py
"""

import random

from repro import (
    appro_multi_cap,
    build_sdn,
    run_sequential_capacitated,
)
from repro.exceptions import InfeasibleRequestError
from repro.nfv import FunctionType, ServiceChain
from repro.topology import transit_stub_graph
from repro.workload import MulticastRequest

MONITORING_CHAIN = ServiceChain.of(FunctionType.IDS, FunctionType.PROXY)


def build_monitoring_requests(graph, collectors, rng):
    """One telemetry stream per stub domain toward the collector set."""
    stub_nodes = sorted(
        str(n) for n in graph.nodes() if str(n).startswith("s")
    )
    domains = sorted({name.rsplit(".", 1)[0] for name in stub_nodes})
    requests = []
    for index, domain in enumerate(domains, start=1):
        members = [n for n in stub_nodes if n.startswith(domain + ".")]
        source = rng.choice(members)
        destinations = [c for c in collectors if c != source]
        requests.append(
            MulticastRequest.create(
                index, source, destinations,
                bandwidth=rng.uniform(80.0, 160.0),
                chain=MONITORING_CHAIN,
            )
        )
    return requests


def main() -> None:
    rng = random.Random(29)
    graph = transit_stub_graph(
        transit_nodes=4, stubs_per_transit=3, stub_size=4, seed=29
    )
    # collectors sit on the transit core; servers on every transit node
    transit = sorted(str(n) for n in graph.nodes() if str(n).startswith("t"))
    network = build_sdn(graph, server_nodes=transit, seed=29)
    collectors = transit[:3]
    print(
        f"fabric: {network} "
        f"({len(transit)} transit nodes, collectors {collectors})\n"
    )

    requests = build_monitoring_requests(graph, collectors, rng)
    stats = run_sequential_capacitated(
        lambda net, req: appro_multi_cap(net, req, max_servers=2),
        network,
        requests,
    )

    print(f"monitoring streams admitted: {stats.solved}/{len(requests)}")
    print(f"streams without resources:   {stats.infeasible}")
    print(f"mean stream cost:            {stats.mean_cost:.2f}")
    print(f"mean servers per stream:     {stats.mean_servers_used:.2f}")
    print(f"mean solve time:             {1000 * stats.mean_runtime:.2f} ms")
    print(f"\ncapacity after admission:")
    print(f"  link utilization:   {network.mean_link_utilization():.2%}")
    print(f"  server utilization: {network.mean_server_utilization():.2%}")
    for server in sorted(network.server_nodes):
        state = network.server(server)
        bar = "#" * int(30 * state.utilization)
        print(f"  {server:>4} [{bar:<30}] {state.utilization:.1%}")


if __name__ == "__main__":
    main()
