#!/usr/bin/env python3
"""Delay-SLA multicast on GÉANT (the delay-constrained extension).

An interactive-conferencing operator needs every participant to receive the
mixed stream within a latency budget.  This example compares, on the real
GÉANT backbone, the unconstrained ``Appro_Multi`` solution against the
delay-aware solver at progressively tighter SLAs, showing the cost of
latency guarantees — and registers the chain VMs in the placement
inventory.

Run:  python examples/delay_sla_geant.py
"""

from repro import appro_multi, build_sdn, geant_graph, geant_servers
from repro.core import delay_aware_multicast
from repro.exceptions import InfeasibleRequestError
from repro.network import VMRegistry
from repro.nfv import FunctionType, ServiceChain
from repro.workload import MulticastRequest

#: Conference bridges: source city and the participant sites.
CONFERENCE = MulticastRequest.create(
    request_id=1,
    source="Frankfurt",
    destinations=["Lisbon", "Helsinki", "Athens", "Dublin", "Bucharest"],
    bandwidth=150.0,
    chain=ServiceChain.of(FunctionType.FIREWALL, FunctionType.PROXY),
)

#: SLAs to try, in milliseconds of worst-case one-way delay.
SLAS = [40.0, 25.0, 18.0, 12.0, 8.0]


def main() -> None:
    network = build_sdn(geant_graph(), server_nodes=geant_servers(), seed=5)
    registry = VMRegistry()
    print(f"GÉANT: {network}")
    print(f"request: {CONFERENCE.describe()}\n")

    unconstrained = appro_multi(network, CONFERENCE, max_servers=1)
    free_delay = max(
        network.path_delay(unconstrained.server_paths[server])
        for server in unconstrained.servers
    )
    print(
        f"unconstrained Appro_Multi: cost {unconstrained.total_cost:.2f}, "
        f"server {unconstrained.servers[0]!r} "
        f"(source leg delay {free_delay:.1f} ms, no per-destination bound)\n"
    )

    print(f"{'SLA (ms)':>9} | {'cost':>8} | {'worst delay':>11} | server")
    print("-" * 48)
    previous_cost = None
    for sla in SLAS:
        try:
            solution = delay_aware_multicast(network, CONFERENCE, sla)
        except InfeasibleRequestError:
            print(f"{sla:>9g} | {'—':>8} | {'infeasible':>11} |")
            continue
        marker = ""
        if previous_cost is not None and solution.tree.total_cost > previous_cost:
            marker = "  <- paying for latency"
        print(
            f"{sla:>9g} | {solution.tree.total_cost:>8.2f} | "
            f"{solution.worst_delay_ms:>9.1f}ms | "
            f"{solution.tree.servers[0]!r}{marker}"
        )
        previous_cost = solution.tree.total_cost

    # place the tightest feasible configuration in the VM inventory
    for sla in SLAS:
        try:
            chosen = delay_aware_multicast(network, CONFERENCE, sla)
        except InfeasibleRequestError:
            break
        final = chosen
    registry.place(final.tree)
    print("\nVM inventory after placement:")
    print(registry.placement_report())
    print("\nper-destination delays (tightest feasible SLA):")
    for destination, delay in sorted(final.per_destination_delay.items()):
        print(f"  {destination:>10}: {delay:5.1f} ms")


if __name__ == "__main__":
    main()
