#!/usr/bin/env python3
"""Live video distribution over GÉANT with security service chains.

The paper's motivating workload: a streaming operator multicasts live
channels from European origin POPs to national research networks.  Every
stream must traverse a service chain (firewall → IDS for the premium feeds,
NAT → load balancer for the rest) before delivery.

This example provisions the real 40-POP GÉANT backbone with the paper's
nine server locations, places a handful of channels with ``Appro_Multi``,
and reports where the chains were instantiated and what each channel costs.

Run:  python examples/video_streaming_geant.py
"""

from repro import (
    Controller,
    appro_multi,
    build_sdn,
    geant_graph,
    geant_servers,
    validate_pseudo_tree,
)
from repro.core import try_allocate
from repro.nfv import FunctionType, ServiceChain
from repro.workload import MulticastRequest

PREMIUM_CHAIN = ServiceChain.of(FunctionType.FIREWALL, FunctionType.IDS)
STANDARD_CHAIN = ServiceChain.of(FunctionType.NAT, FunctionType.LOAD_BALANCER)

#: (name, origin POP, subscriber POPs, Mbps, chain)
CHANNELS = [
    ("news-hd", "London",
     ["Athens", "Helsinki", "Lisbon", "Riga", "Zagreb"], 180.0,
     PREMIUM_CHAIN),
    ("sports-hd", "Amsterdam",
     ["Madrid", "Bucharest", "Oslo", "Dublin"], 200.0, PREMIUM_CHAIN),
    ("music", "Paris",
     ["Vienna", "Stockholm", "Sofia"], 90.0, STANDARD_CHAIN),
    ("culture", "Milan",
     ["Brussels", "Tallinn", "Nicosia", "Reykjavik"], 60.0, STANDARD_CHAIN),
    ("tech-talks", "Frankfurt",
     ["Kiev", "Istanbul", "Luxembourg"], 120.0, STANDARD_CHAIN),
]


def main() -> None:
    network = build_sdn(geant_graph(), server_nodes=geant_servers(), seed=3)
    controller = Controller()
    print(f"GÉANT: {network}  |  NFV POPs: {', '.join(geant_servers())}\n")

    total_cost = 0.0
    for index, (name, origin, subscribers, rate, chain) in enumerate(
        CHANNELS, start=1
    ):
        request = MulticastRequest.create(
            index, origin, subscribers, rate, chain
        )
        tree = appro_multi(network, request, max_servers=3)
        validate_pseudo_tree(network, tree)

        transaction = try_allocate(network, tree)
        if transaction is None:
            print(f"{name}: REJECTED (insufficient capacity)")
            continue
        controller.install_tree(
            request.request_id, tree.routing_hops(), list(tree.servers)
        )
        total_cost += tree.total_cost
        print(
            f"{name:>10}: {origin} -> {len(subscribers)} POPs @{rate:g} Mbps, "
            f"chain {chain.describe()}"
        )
        print(
            f"{'':>12}chains at {sorted(tree.servers)}, "
            f"cost {tree.total_cost:.2f} "
            f"(bandwidth {tree.bandwidth_cost:.2f} / "
            f"compute {tree.compute_cost:.2f}), "
            f"{len(tree.touched_links())} links"
        )

    print(f"\ntotal operational cost: {total_cost:.2f}")
    print(f"installed flow rules:   {controller.total_rules()}")
    print(f"mean link utilization:  {network.mean_link_utilization():.2%}")
    print(f"mean server load:       {network.mean_server_utilization():.2%}")
    hot = max(
        network.links(), key=lambda link: link.utilization
    )
    print(f"hottest link:           {hot.endpoints} at {hot.utilization:.2%}")


if __name__ == "__main__":
    main()
