"""Unit tests for the pseudo-multicast tree structure."""

import pytest

from repro.core import PseudoMulticastTree, operational_cost, validate_pseudo_tree
from repro.exceptions import ReproError
from repro.graph import Graph, edge_key
from repro.network import build_sdn
from repro.nfv import FunctionType, ServiceChain
from repro.workload import MulticastRequest


@pytest.fixture
def line_network():
    """s - a - v - d1, with a - d2 hanging off; v is the server."""
    graph = Graph.from_edges(
        [
            ("s", "a", 2.0),
            ("a", "v", 2.0),
            ("v", "d1", 2.0),
            ("a", "d2", 2.0),
        ]
    )
    return build_sdn(graph, server_nodes=["v"], seed=0, link_cost_scale=1.0)


@pytest.fixture
def line_request():
    chain = ServiceChain.of(FunctionType.NAT)
    return MulticastRequest.create(1, "s", ["d1", "d2"], 10.0, chain)


def build_tree(network, request):
    """Hand-built pseudo tree: s→a→v processed, back to a, then to d1/d2."""
    return PseudoMulticastTree(
        request=request,
        servers=("v",),
        server_paths={"v": ("s", "a", "v")},
        distribution_edges=(("v", "d1"), ("a", "d2")),
        return_paths=(("v", "a"),),
        bandwidth_cost=0.0,  # filled by tests that need it
        compute_cost=0.0,
    )


class TestStructure:
    def test_requires_server(self, line_request):
        with pytest.raises(ReproError):
            PseudoMulticastTree(
                request=line_request,
                servers=(),
                server_paths={},
                distribution_edges=(),
                return_paths=(),
                bandwidth_cost=0.0,
                compute_cost=0.0,
            )

    def test_requires_paths_for_all_servers(self, line_request):
        with pytest.raises(ReproError):
            PseudoMulticastTree(
                request=line_request,
                servers=("v",),
                server_paths={},
                distribution_edges=(),
                return_paths=(),
                bandwidth_cost=0.0,
                compute_cost=0.0,
            )

    def test_total_cost(self, line_network, line_request):
        tree = PseudoMulticastTree(
            request=line_request,
            servers=("v",),
            server_paths={"v": ("s", "a", "v")},
            distribution_edges=(("v", "d1"),),
            return_paths=(),
            bandwidth_cost=3.5,
            compute_cost=1.5,
        )
        assert tree.total_cost == pytest.approx(5.0)
        assert tree.num_servers == 1


class TestEdgeUsage:
    def test_multiplicities(self, line_network, line_request):
        tree = build_tree(line_network, line_request)
        usage = tree.edge_usage()
        # (a,v) carries unprocessed down AND processed back: 2
        assert usage[edge_key("a", "v")] == 2
        assert usage[edge_key("s", "a")] == 1
        assert usage[edge_key("v", "d1")] == 1
        assert usage[edge_key("a", "d2")] == 1

    def test_touched_links(self, line_network, line_request):
        tree = build_tree(line_network, line_request)
        assert len(tree.touched_links()) == 4


class TestRoutingHops:
    def test_hops_cover_all_usage(self, line_network, line_request):
        tree = build_tree(line_network, line_request)
        hops = tree.routing_hops()
        assert ("s", "a") in hops
        assert ("a", "v") in hops
        assert ("v", "a") in hops  # return path
        # distribution oriented away from injection points
        assert ("v", "d1") in hops
        assert ("a", "d2") in hops

    def test_describe_mentions_costs(self, line_network, line_request):
        tree = build_tree(line_network, line_request)
        assert "pseudo-multicast tree" in tree.describe()


class TestValidation:
    def test_valid_tree_passes(self, line_network, line_request):
        validate_pseudo_tree(line_network, build_tree(line_network, line_request))

    def test_rejects_non_server(self, line_network, line_request):
        tree = PseudoMulticastTree(
            request=line_request,
            servers=("a",),  # not a server switch
            server_paths={"a": ("s", "a")},
            distribution_edges=(("a", "v"), ("v", "d1"), ("a", "d2")),
            return_paths=(),
            bandwidth_cost=0.0,
            compute_cost=0.0,
        )
        with pytest.raises(AssertionError):
            validate_pseudo_tree(line_network, tree)

    def test_rejects_malformed_source_path(self, line_network, line_request):
        tree = PseudoMulticastTree(
            request=line_request,
            servers=("v",),
            server_paths={"v": ("a", "v")},  # does not start at the source
            distribution_edges=(("v", "d1"), ("a", "d2")),
            return_paths=(("v", "a"),),
            bandwidth_cost=0.0,
            compute_cost=0.0,
        )
        with pytest.raises(AssertionError):
            validate_pseudo_tree(line_network, tree)

    def test_rejects_unreached_destination(self, line_network, line_request):
        tree = PseudoMulticastTree(
            request=line_request,
            servers=("v",),
            server_paths={"v": ("s", "a", "v")},
            distribution_edges=(("v", "d1"),),  # d2 is not served
            return_paths=(),
            bandwidth_cost=0.0,
            compute_cost=0.0,
        )
        with pytest.raises(AssertionError):
            validate_pseudo_tree(line_network, tree)

    def test_rejects_missing_link(self, line_network, line_request):
        tree = PseudoMulticastTree(
            request=line_request,
            servers=("v",),
            server_paths={"v": ("s", "v")},  # no such link
            distribution_edges=(("v", "d1"), ("a", "d2"), ("a", "v")),
            return_paths=(),
            bandwidth_cost=0.0,
            compute_cost=0.0,
        )
        with pytest.raises(AssertionError):
            validate_pseudo_tree(line_network, tree)


class TestOperationalCost:
    def test_recomputation_from_first_principles(
        self, line_network, line_request
    ):
        tree = build_tree(line_network, line_request)
        # link unit costs are 2.0 * 1.0 (scale); usage: s-a:1, a-v:2,
        # v-d1:1, a-d2:1 => 5 traversals * 2.0 cost * 10 Mbps = 100
        expected_bandwidth = 5 * 2.0 * 10.0
        server_cost = line_network.chain_cost("v", line_request.compute_demand)
        assert operational_cost(line_network, tree) == pytest.approx(
            expected_bandwidth + server_cost
        )
