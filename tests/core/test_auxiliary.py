"""Unit tests for the auxiliary-graph machinery of Appro_Multi."""

import math

import pytest

from repro.core import (
    VIRTUAL_SOURCE,
    build_context,
    evaluate_combination,
    explicit_auxiliary_graph,
    iter_combinations,
    scale_graph,
)
from repro.exceptions import InfeasibleRequestError
from repro.graph import Graph, kmb_steiner_tree, steiner_tree_cost
from repro.network import build_sdn
from repro.topology import waxman_graph
from repro.workload import generate_workload


def make_context(network, request):
    chain_cost = {
        v: network.chain_cost(v, request.compute_demand)
        for v in network.server_nodes
    }
    return build_context(
        graph=network.graph,
        source=request.source,
        destinations=sorted(request.destinations, key=repr),
        servers=network.server_nodes,
        chain_cost=chain_cost,
        bandwidth=request.bandwidth,
    )


class TestScaleGraph:
    def test_scaling(self, triangle):
        scaled = scale_graph(triangle, 10.0)
        assert scaled.weight("a", "b") == pytest.approx(10.0)
        assert scaled.num_nodes == triangle.num_nodes
        # original untouched
        assert triangle.weight("a", "b") == 1.0


class TestBuildContext:
    def test_virtual_weights(self):
        graph = Graph.from_edges(
            [("s", "m", 1.0), ("m", "v", 1.0), ("m", "d", 2.0)]
        )
        network = build_sdn(
            graph, server_nodes=["v"], seed=0, link_cost_scale=1.0
        )
        from repro.nfv import FunctionType, ServiceChain
        from repro.workload import MulticastRequest

        request = MulticastRequest.create(
            1, "s", ["d"], 10.0, ServiceChain.of(FunctionType.NAT)
        )
        ctx = make_context(network, request)
        chain_cost = network.chain_cost("v", request.compute_demand)
        # sp(s→v) = (1+1) * 10 bandwidth * ... weights are unit costs * b
        expected = (graph.weight("s", "m") + graph.weight("m", "v")) * 10.0
        assert ctx.virtual_weight["v"] == pytest.approx(expected + chain_cost)
        assert "v" not in ctx.adjacent_servers  # v is 2 hops from s

    def test_unreachable_destination_raises(self):
        graph = Graph.from_edges([("s", "v", 1.0)])
        graph.add_node("island")
        network = build_sdn(graph, server_nodes=["v"], seed=0)
        from repro.nfv import FunctionType, ServiceChain
        from repro.workload import MulticastRequest

        request = MulticastRequest.create(
            1, "s", ["island"], 10.0, ServiceChain.of(FunctionType.NAT)
        )
        with pytest.raises(InfeasibleRequestError):
            make_context(network, request)

    def test_no_reachable_server_raises(self):
        graph = Graph.from_edges([("s", "d", 1.0), ("v", "x", 1.0)])
        network = build_sdn(graph, server_nodes=["v"], seed=0)
        from repro.nfv import FunctionType, ServiceChain
        from repro.workload import MulticastRequest

        request = MulticastRequest.create(
            1, "s", ["d"], 10.0, ServiceChain.of(FunctionType.NAT)
        )
        with pytest.raises(InfeasibleRequestError):
            make_context(network, request)


class TestIterCombinations:
    def test_counts_match_binomials(self):
        servers = list("abcde")
        combos = list(iter_combinations(servers, 3))
        expected = math.comb(5, 1) + math.comb(5, 2) + math.comb(5, 3)
        assert len(combos) == expected
        assert all(1 <= len(c) <= 3 for c in combos)
        assert len(set(combos)) == len(combos)

    def test_k_larger_than_pool(self):
        combos = list(iter_combinations(["a", "b"], 5))
        assert len(combos) == 3  # {a}, {b}, {a,b}


class TestExplicitAuxiliaryGraph:
    def test_structure(self):
        graph = Graph.from_edges(
            [("s", "v1", 1.0), ("s", "m", 1.0), ("m", "v2", 1.0), ("m", "d", 1.0)]
        )
        network = build_sdn(
            graph, server_nodes=["v1", "v2"], seed=0, link_cost_scale=1.0
        )
        from repro.nfv import FunctionType, ServiceChain
        from repro.workload import MulticastRequest

        request = MulticastRequest.create(
            1, "s", ["d"], 1.0, ServiceChain.of(FunctionType.NAT)
        )
        ctx = make_context(network, request)
        aux = explicit_auxiliary_graph(ctx, ("v1", "v2"))
        assert aux.has_edge(VIRTUAL_SOURCE, "v1")
        assert aux.has_edge(VIRTUAL_SOURCE, "v2")
        # zero-cost rule: v1 is adjacent to the source and in the combination
        assert aux.weight("s", "v1") == 0.0
        # non-member edges are unchanged
        assert aux.weight("s", "m") == pytest.approx(1.0)

    def test_zero_rule_only_for_members(self):
        graph = Graph.from_edges(
            [("s", "v1", 1.0), ("s", "v2", 1.0), ("v1", "d", 1.0), ("v2", "d", 1.0)]
        )
        network = build_sdn(
            graph, server_nodes=["v1", "v2"], seed=0, link_cost_scale=1.0
        )
        from repro.nfv import FunctionType, ServiceChain
        from repro.workload import MulticastRequest

        request = MulticastRequest.create(
            1, "s", ["d"], 1.0, ServiceChain.of(FunctionType.NAT)
        )
        ctx = make_context(network, request)
        aux = explicit_auxiliary_graph(ctx, ("v1",))
        assert aux.weight("s", "v1") == 0.0
        assert aux.weight("s", "v2") == pytest.approx(1.0)


class TestFastEvaluatorMatchesTextbookKMB:
    """The analytic closure must reproduce KMB on the explicit graph."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        graph, _ = waxman_graph(22, alpha=0.4, beta=0.4, seed=seed)
        network = build_sdn(graph, seed=seed, server_fraction=0.25)
        request = generate_workload(
            graph, 1, dmax_ratio=0.25, seed=seed + 70
        )[0]
        ctx = make_context(network, request)
        terminals = [VIRTUAL_SOURCE] + list(ctx.destinations)
        for combination in iter_combinations(ctx.candidate_servers, 2):
            fast = evaluate_combination(ctx, combination)
            aux = explicit_auxiliary_graph(ctx, combination)
            reference = kmb_steiner_tree(aux, terminals)
            assert fast is not None
            assert fast.cost == pytest.approx(
                steiner_tree_cost(reference), rel=1e-9
            )

    def test_used_servers_subset_of_combination(self):
        graph, _ = waxman_graph(20, alpha=0.5, beta=0.5, seed=3)
        network = build_sdn(graph, seed=3, server_fraction=0.25)
        request = generate_workload(graph, 1, dmax_ratio=0.2, seed=77)[0]
        ctx = make_context(network, request)
        for combination in iter_combinations(ctx.candidate_servers, 3):
            solution = evaluate_combination(ctx, combination)
            if solution is not None:
                assert set(solution.used_servers) <= set(combination)
                assert solution.tree.has_node(VIRTUAL_SOURCE)


class TestVirtualSourcePickling:
    """The sentinel must keep its ``is`` identity across process boundaries
    (regression: the parallel runner pickles solutions containing it)."""

    def test_round_trip_preserves_identity(self):
        import pickle

        for protocol in range(pickle.HIGHEST_PROTOCOL + 1):
            clone = pickle.loads(pickle.dumps(VIRTUAL_SOURCE, protocol))
            assert clone is VIRTUAL_SOURCE

    def test_round_trip_inside_containers(self):
        import pickle

        payload = {"tree": [VIRTUAL_SOURCE, "a"], "root": VIRTUAL_SOURCE}
        clone = pickle.loads(pickle.dumps(payload))
        assert clone["root"] is VIRTUAL_SOURCE
        assert clone["tree"][0] is VIRTUAL_SOURCE

    def test_copy_module_preserves_identity(self):
        import copy

        assert copy.copy(VIRTUAL_SOURCE) is VIRTUAL_SOURCE
        assert copy.deepcopy([VIRTUAL_SOURCE])[0] is VIRTUAL_SOURCE
