"""Property net over the CSR-compiled auxiliary graph ``G_k^i``.

The CSR-native core never materializes the auxiliary graph — it keeps the
substrate in one epoch-stamped compiled view and swaps only the virtual
source's edge block across the combination sweep (see
:class:`repro.core.AuxiliaryCSR`).  These tests pin that representation to
the paper's definition on *tie-heavy* random instances (weights drawn from
{1, 2}, so shortest paths, closure edges, and MSTs are saturated with
ties — exactly where a tie-break divergence between the flat core and the
dict pipeline would surface):

1. **Construction identity** — for a random server subset, the decoded
   compiled auxiliary graph (virtual row included) is node-for-node,
   edge-for-edge, and weight-for-weight identical to the dict-built
   ``G_k^i`` of :func:`explicit_auxiliary_graph`.  Weights are compared
   with exact float equality: both sides must compute the very same
   ``unit · b_k`` products.
2. **Workspace isolation** — one evaluator's scratch arrays are reused
   across the whole sweep; evaluating A → B → A must return bit-identical
   trees for A both times (dict insertion order included), equal to a
   clean-room evaluator that never saw B.

Shrunk hypothesis failures name a tiny instance, so a tie-break regression
is replayable in isolation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    VIRTUAL_SOURCE,
    CSRCombinationEvaluator,
    build_context,
    explicit_auxiliary_graph,
    iter_combinations,
)
from repro.exceptions import InfeasibleRequestError
from repro.graph import Graph, edge_key, graph_backend, set_graph_backend
from repro.network import build_sdn
from repro.nfv import ServiceChain, all_function_types
from repro.workload import MulticastRequest

#: Two distinct weights only: maximally tie-heavy while keeping the
#: auxiliary distances non-trivial.
TIE_WEIGHTS = (1.0, 2.0)


@st.composite
def tie_heavy_instances(draw):
    """A connected tie-heavy topology plus a well-formed request on it."""
    n = draw(st.integers(6, 14))
    seed = draw(st.integers(0, 10_000))
    graph = Graph()
    for node in range(n):
        graph.add_node(node)
    # spanning path guarantees connectivity ...
    for u in range(n - 1):
        graph.add_edge(u, u + 1, draw(st.sampled_from(TIE_WEIGHTS)))
    # ... extra chords create alternative equal-cost routes
    extras = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.sampled_from(TIE_WEIGHTS),
            ),
            max_size=2 * n,
        )
    )
    for u, v, w in extras:
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, w)

    network = build_sdn(graph, seed=seed, server_fraction=0.4)
    nodes = sorted(graph.nodes())
    source = draw(st.sampled_from(nodes))
    others = [x for x in nodes if x != source]
    count = draw(st.integers(1, min(4, len(others))))
    destinations = draw(
        st.lists(
            st.sampled_from(others), min_size=count, max_size=count,
            unique=True,
        )
    )
    bandwidth = draw(st.sampled_from((0.5, 1.0, 2.0)))
    kinds = draw(
        st.lists(
            st.sampled_from(all_function_types()), min_size=1, max_size=2,
            unique=True,
        )
    )
    request = MulticastRequest.create(
        1, source, destinations, bandwidth, ServiceChain.of(*kinds)
    )
    return network, request


def build_csr_context(network, request):
    """The exact context construction the solvers use, cache-backed."""
    chain_cost = {
        v: network.chain_cost(v, request.compute_demand)
        for v in network.server_nodes
    }
    return build_context(
        graph=network.graph,
        source=request.source,
        destinations=sorted(request.destinations, key=repr),
        servers=network.server_nodes,
        chain_cost=chain_cost,
        bandwidth=request.bandwidth,
        cache=network.path_cache(),
    )


def canonical_edges(graph):
    """``{canonical edge key: weight}`` — order-free, weight-exact."""
    return {edge_key(u, v): w for u, v, w in graph.edges()}


def tree_fingerprint(solution):
    """Every observable field of a solution, insertion order included."""
    if solution is None:
        return None
    tree = solution.tree
    return (
        solution.combination,
        solution.used_servers,
        solution.cost,
        tuple(tree.nodes()),
        tuple(tree.edges()),
    )


@settings(max_examples=40, deadline=None)
@given(tie_heavy_instances(), st.data())
def test_compiled_auxiliary_graph_matches_explicit_construction(
    instance, data
):
    network, request = instance
    saved = graph_backend()
    set_graph_backend("csr")
    try:
        try:
            ctx = build_csr_context(network, request)
        except InfeasibleRequestError:
            return
        assert ctx.flat is not None, (
            "cache-backed context under the csr backend must carry the "
            "flat workspace"
        )
        evaluator = CSRCombinationEvaluator(ctx)
        servers = list(ctx.candidate_servers)
        size = data.draw(st.integers(1, len(servers)))
        combination = tuple(
            data.draw(
                st.lists(
                    st.sampled_from(servers), min_size=size, max_size=size,
                    unique=True,
                )
            )
        )

        member_nodes, members, zero = evaluator._ids(combination)
        assert member_nodes == combination  # all candidates are reachable
        aux = ctx.flat.aux
        aux.set_combination(members, zero)

        compiled = aux.to_graph()
        explicit = explicit_auxiliary_graph(ctx, combination)
        assert set(compiled.nodes()) == set(explicit.nodes())
        assert canonical_edges(compiled) == canonical_edges(explicit)

        # the virtual row is the combination's entire mutable surface:
        # same servers, and the very same scaled-weight float objects the
        # dict context holds
        index = ctx.flat.index
        nodes = ctx.flat.nodes
        assert aux.virtual_index == ctx.flat.csr.num_nodes
        assert [nodes[v] for v, _ in aux.virtual_row()] == list(combination)
        for v, weight in aux.virtual_row():
            assert weight == explicit.weight(VIRTUAL_SOURCE, nodes[v])
        for node in combination:
            assert (
                aux.virtual_weight[index[node]]
                is ctx.virtual_weight[node]
            )
    finally:
        set_graph_backend(saved)


@settings(max_examples=25, deadline=None)
@given(tie_heavy_instances(), st.data())
def test_workspace_reuse_never_leaks_between_combinations(instance, data):
    network, request = instance
    saved = graph_backend()
    set_graph_backend("csr")
    try:
        try:
            ctx = build_csr_context(network, request)
        except InfeasibleRequestError:
            return
        limit = min(2, len(ctx.candidate_servers))
        combos = list(iter_combinations(ctx.candidate_servers, limit))
        if len(combos) < 2:
            return
        a = data.draw(st.sampled_from(combos))
        b = data.draw(st.sampled_from([c for c in combos if c != a]))

        # clean room: an evaluator whose history is exactly [A]
        clean = tree_fingerprint(
            CSRCombinationEvaluator(build_csr_context(network, request))
            .evaluate(a)
        )

        evaluator = CSRCombinationEvaluator(ctx)
        first = tree_fingerprint(evaluator.evaluate(a))
        evaluator.evaluate(b)
        again = tree_fingerprint(evaluator.evaluate(a))

        assert first == clean
        assert again == clean

        # the shared AuxiliaryCSR view itself round-trips A -> B -> A
        ids_a = evaluator._ids(a)
        ids_b = evaluator._ids(b)
        aux = ctx.flat.aux
        aux.set_combination(ids_a[1], ids_a[2])
        snapshot = canonical_edges(aux.to_graph())
        aux.set_combination(ids_b[1], ids_b[2])
        aux.set_combination(ids_a[1], ids_a[2])
        assert canonical_edges(aux.to_graph()) == snapshot
    finally:
        set_graph_backend(saved)
