"""Unit tests for the online cost models (Eqs. 1 and 2)."""

import math

import pytest

from repro.core import (
    ExponentialCostModel,
    LinearCostModel,
    UtilizationCostModel,
)
from repro.core.cost_model import TIE_BREAK_SCALE


def first_edge(network):
    return next(iter(network.graph.edges()))[:2]


class TestExponentialModel:
    def test_idle_network_weights_are_zero(self, small_network):
        model = ExponentialCostModel.for_network(small_network)
        u, v = first_edge(small_network)
        assert model.edge_weight(small_network, u, v) == pytest.approx(0.0)
        server = small_network.server_nodes[0]
        assert model.node_weight(small_network, server) == pytest.approx(0.0)

    def test_equation_two(self, small_network):
        """w_e(k) = β^{1 − B_e(k)/B_e} − 1 with β = 2|V|."""
        model = ExponentialCostModel.for_network(small_network)
        u, v = first_edge(small_network)
        link = small_network.link(u, v)
        small_network.allocate_bandwidth(u, v, 0.5 * link.capacity)
        beta = 2 * small_network.num_nodes
        expected = beta**0.5 - 1
        assert model.edge_weight(small_network, u, v) == pytest.approx(expected)

    def test_equation_one(self, small_network):
        """c_v(k) = C_v(α^{1 − C_v(k)/C_v} − 1)."""
        model = ExponentialCostModel.for_network(small_network)
        server = small_network.server_nodes[0]
        state = small_network.server(server)
        small_network.allocate_compute(server, 0.25 * state.capacity)
        alpha = 2 * small_network.num_nodes
        expected_weight = alpha**0.25 - 1
        assert model.node_weight(small_network, server) == pytest.approx(
            expected_weight
        )
        assert model.node_cost(small_network, server) == pytest.approx(
            state.capacity * expected_weight
        )

    def test_cost_increases_with_load(self, small_network):
        model = ExponentialCostModel.for_network(small_network)
        u, v = first_edge(small_network)
        weights = []
        for _ in range(4):
            weights.append(model.edge_weight(small_network, u, v))
            small_network.allocate_bandwidth(
                u, v, 0.2 * small_network.link(u, v).capacity
            )
        assert weights == sorted(weights)
        # convexity: the exponential knee accelerates
        assert weights[3] - weights[2] > weights[1] - weights[0]

    def test_custom_bases(self, small_network):
        model = ExponentialCostModel(alpha=4.0, beta=9.0)
        assert model.alpha(small_network) == 4.0
        assert model.beta(small_network) == 9.0

    def test_invalid_bases(self):
        with pytest.raises(ValueError):
            ExponentialCostModel(alpha=1.0)
        with pytest.raises(ValueError):
            ExponentialCostModel(beta=0.5)


class TestWeightGraph:
    def test_prunes_thin_links(self, small_network):
        model = ExponentialCostModel.for_network(small_network)
        u, v = first_edge(small_network)
        capacity = small_network.link(u, v).capacity
        small_network.allocate_bandwidth(u, v, capacity - 10.0)
        weighted = model.weight_graph(small_network, min_residual_bandwidth=50.0)
        assert not weighted.has_edge(u, v)
        assert weighted.num_nodes == small_network.num_nodes

    def test_tie_break_prefers_cheap_links(self, small_network):
        model = ExponentialCostModel.for_network(small_network)
        weighted = model.weight_graph(small_network)
        for u, v, w in weighted.edges():
            expected = TIE_BREAK_SCALE * small_network.link_unit_cost(u, v)
            assert w == pytest.approx(expected)
            assert w > 0.0  # strictly positive => deterministic Steiner trees


class TestLinearModels:
    def test_static_linear_ignores_load(self, small_network):
        model = LinearCostModel()
        u, v = first_edge(small_network)
        before = model.edge_weight(small_network, u, v)
        small_network.allocate_bandwidth(
            u, v, 0.9 * small_network.link(u, v).capacity
        )
        assert model.edge_weight(small_network, u, v) == pytest.approx(before)

    def test_utilization_model_tracks_load(self, small_network):
        model = UtilizationCostModel()
        u, v = first_edge(small_network)
        assert model.edge_weight(small_network, u, v) == 0.0
        small_network.allocate_bandwidth(
            u, v, 0.5 * small_network.link(u, v).capacity
        )
        assert model.edge_weight(small_network, u, v) == pytest.approx(0.5)
        server = small_network.server_nodes[0]
        small_network.allocate_compute(
            server, 0.3 * small_network.server(server).capacity
        )
        assert model.node_weight(small_network, server) == pytest.approx(0.3)
